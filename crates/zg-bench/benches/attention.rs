//! Attention-stack microbenchmarks: full forward, KV-cache decode step,
//! and a transformer-block forward+backward.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{Attention, CausalLm, LayerKvCache, ModelConfig, RopeCache};
use zg_tensor::Tensor;

fn bench_attention_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let attn = Attention::new(64, 4, 2, 128, &mut rng);
    let rope = RopeCache::new(16, 256, 10_000.0);
    let mut group = c.benchmark_group("attention_forward");
    for &t in &[32usize, 96, 192] {
        let x = Tensor::randn([4, t, 64], 0.0, 1.0, &mut rng);
        group.bench_function(format!("b4_t{t}_d64"), |b| {
            b.iter(|| black_box(attn.forward(&x, &rope, 0, None)))
        });
    }
    group.finish();
}

fn bench_kv_cache_decode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let attn = Attention::new(64, 4, 2, 128, &mut rng);
    let rope = RopeCache::new(16, 512, 10_000.0);
    c.bench_function("kv_decode_step_after_96", |b| {
        b.iter_batched(
            || {
                let mut cache = LayerKvCache::default();
                let prefill = Tensor::randn([1, 96, 64], 0.0, 1.0, &mut rng);
                attn.forward(&prefill, &rope, 0, Some(&mut cache));
                cache
            },
            |mut cache| {
                let x = Tensor::ones([1, 1, 64]);
                black_box(attn.forward(&x, &rope, 96, Some(&mut cache)))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_lm_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = ModelConfig::mistral_miniature(500);
    let lm = CausalLm::new(cfg, &mut rng);
    c.bench_function("causal_lm_forward_b2_t64", |b| {
        let tokens: Vec<u32> = (0..128).map(|i| (i % 400) as u32).collect();
        b.iter(|| black_box(lm.forward(&tokens, 2, 64)))
    });
}

criterion_group!(
    benches,
    bench_attention_forward,
    bench_kv_cache_decode,
    bench_lm_step
);
criterion_main!(benches);
