//! Figure 2 pipeline benchmark: the pruning sweep's hot path (TracSeq
//! scoring + top-k + downstream agent retrain) at one sample size.
//! The full figure regeneration lives in the `figure2` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_data::{behavior_sequences, BehaviorConfig};
use zg_influence::{select_top_k, AgentConfig, AgentModel, ParallelConfig};
use zg_zigong::{agent_tracseq_scores_with, behavior_samples, split_behavior_by_user};

fn bench_pruning_arm(c: &mut Criterion) {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 150,
            periods: 5,
            ..Default::default()
        },
        1,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    // The sweep's hot path runs through the parallel engine; auto uses
    // every available core and is bit-identical to serial.
    let par = ParallelConfig::auto();
    c.bench_function("figure2_one_arm_score_select_retrain", |b| {
        b.iter(|| {
            let scores = agent_tracseq_scores_with(&train_s, &test_s, 0.9, false, 2, &par);
            let picks = select_top_k(&scores, train_s.len() / 2);
            let xs: Vec<Vec<f32>> = picks.iter().map(|&i| train_s[i].0.clone()).collect();
            let ys: Vec<bool> = picks.iter().map(|&i| train_s[i].1).collect();
            let mut rng = StdRng::seed_from_u64(3);
            let (m, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
            black_box(m)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pruning_arm
}
criterion_main!(benches);
