//! Influence-machinery benchmarks: TracSeq scoring throughput through
//! the parallel engine (serial / multi-worker / sketched), the agent
//! pipeline, and LM per-sample gradient extraction.
//!
//! Unlike the other benches this one has a custom `main`: after the
//! timed runs it derives speedup ratios and writes them (with the
//! machine's available parallelism, for context) to
//! `results/influence_parallel.json`.

use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use zg_data::{behavior_sequences, BehaviorConfig};
use zg_influence::{
    influence_scores_with, lm_sample_gradient, CheckpointGrads, ParallelConfig, Sketcher,
    TracConfig, DEFAULT_SKETCH_SEED,
};
use zg_lora::{attach, LoraConfig};
use zg_model::{CausalLm, ModelConfig};
use zg_zigong::{agent_tracseq_scores_with, behavior_samples, split_behavior_by_user};

const SKETCH_DIM: usize = 256;

/// Seeded synthetic gradients sized like a LoRA-subspace problem:
/// 3 checkpoints × (600 train + 40 test) × p=4096.
fn synth_grads() -> Vec<CheckpointGrads> {
    let mut rng = StdRng::seed_from_u64(17);
    let (n_train, n_test, p) = (600usize, 40usize, 4096usize);
    (0..3)
        .map(|t| CheckpointGrads {
            eta: 0.1,
            time: t as u32,
            train: (0..n_train)
                .map(|_| (0..p).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect(),
            test: (0..n_test)
                .map(|_| (0..p).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect(),
        })
        .collect()
}

fn bench_scoring_engine(c: &mut Criterion) {
    let cks = synth_grads();
    let cfg = TracConfig {
        gamma: 0.9,
        current_time: 2,
        decay_samples: false,
    };
    c.bench_function("influence_exact_serial", |b| {
        b.iter(|| {
            black_box(influence_scores_with(
                &cks,
                &cfg,
                None,
                &ParallelConfig::serial(),
            ))
        })
    });
    c.bench_function("influence_exact_workers8", |b| {
        let par = ParallelConfig::serial().with_workers(8);
        b.iter(|| black_box(influence_scores_with(&cks, &cfg, None, &par)))
    });
    c.bench_function("influence_sketch256_inclusive", |b| {
        // Projection + scoring, both inside the timed region.
        let par = ParallelConfig::serial().with_sketch(SKETCH_DIM);
        b.iter(|| black_box(influence_scores_with(&cks, &cfg, None, &par)))
    });
    c.bench_function("influence_sketch256_presketched", |b| {
        // The γ-sweep regime: gradients are projected once, then scored
        // many times (each sweep arm re-scores with a different decay).
        let sketched = Sketcher::new(SKETCH_DIM, DEFAULT_SKETCH_SEED).sketch_checkpoints(&cks);
        b.iter(|| {
            black_box(influence_scores_with(
                &sketched,
                &cfg,
                None,
                &ParallelConfig::serial(),
            ))
        })
    });
}

fn bench_agent_tracseq(c: &mut Criterion) {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 200,
            periods: 5,
            ..Default::default()
        },
        1,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    c.bench_function("agent_tracseq_800train_40test_serial", |b| {
        b.iter(|| {
            black_box(agent_tracseq_scores_with(
                &train_s,
                &test_s,
                0.9,
                false,
                2,
                &ParallelConfig::serial(),
            ))
        })
    });
    c.bench_function("agent_tracseq_800train_40test_auto", |b| {
        b.iter(|| {
            black_box(agent_tracseq_scores_with(
                &train_s,
                &test_s,
                0.9,
                false,
                2,
                &ParallelConfig::auto(),
            ))
        })
    });
}

fn bench_lm_gradient(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut cfg = ModelConfig::mistral_miniature(300);
    cfg.n_layers = 1;
    let mut lm = CausalLm::new(cfg, &mut rng);
    attach(&mut lm, &LoraConfig::default(), &mut rng);
    let sample = (
        (0..48).map(|i| (i % 250) as u32 + 4).collect::<Vec<u32>>(),
        (0..48)
            .map(|i| ((i + 1) % 250) as u32 + 4)
            .collect::<Vec<u32>>(),
    );
    c.bench_function("lm_sample_gradient_t48_lora", |b| {
        b.iter(|| black_box(lm_sample_gradient(&lm, &sample)))
    });
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_scoring_engine(&mut criterion);
    bench_agent_tracseq(&mut criterion);
    bench_lm_gradient(&mut criterion);
    write_results(&criterion);
}

/// Derive speedups from the recorded medians and persist the evidence.
fn write_results(criterion: &Criterion) {
    let median = |name: &str| -> Option<f64> {
        criterion
            .records()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    };
    let serial = median("influence_exact_serial");
    let speedup_over_serial = |name: &str| -> serde_json::Value {
        match (serial, median(name)) {
            (Some(s), Some(v)) if v > 0.0 => json!(s / v),
            _ => json!(null),
        }
    };
    let rows: Vec<serde_json::Value> = criterion
        .records()
        .iter()
        .map(|r| {
            json!({
                "name": r.name.clone(),
                "min_ns": r.min_ns,
                "median_ns": r.median_ns,
                "mean_ns": r.mean_ns,
                "samples": r.samples as f64,
            })
        })
        .collect();
    if rows.is_empty() {
        return; // filtered run; nothing representative to persist
    }
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let out = json!({
        "bench": "influence_parallel",
        "available_parallelism": available as f64,
        "sketch_dim": SKETCH_DIM as f64,
        "note": "speedups are measured wall-clock on this machine; thread \
                 speedup is bounded by available_parallelism, sketch speedup \
                 is algorithmic (p -> sketch_dim per dot)",
        "speedup_exact_workers8_vs_serial": speedup_over_serial("influence_exact_workers8"),
        "speedup_sketch_inclusive_vs_serial": speedup_over_serial("influence_sketch256_inclusive"),
        "speedup_sketch_presketched_vs_serial": speedup_over_serial("influence_sketch256_presketched"),
        "rows": rows,
    });
    // cargo runs benches with the package dir as CWD; anchor the artifact
    // at the workspace root.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = format!("{dir}/influence_parallel.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serialize results"),
    )
    .expect("write results JSON");
    println!("wrote {path}");
}
