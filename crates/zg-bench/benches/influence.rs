//! Influence-machinery benchmarks: TracSeq scoring throughput (agent
//! analytic gradients) and LM per-sample gradient extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_data::{behavior_sequences, BehaviorConfig};
use zg_influence::lm_sample_gradient;
use zg_lora::{attach, LoraConfig};
use zg_model::{CausalLm, ModelConfig};
use zg_zigong::{agent_tracseq_scores, behavior_samples, split_behavior_by_user};

fn bench_agent_tracseq(c: &mut Criterion) {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 200,
            periods: 5,
            ..Default::default()
        },
        1,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    c.bench_function("agent_tracseq_800train_40test", |b| {
        b.iter(|| black_box(agent_tracseq_scores(&train_s, &test_s, 0.9, false, 2)))
    });
}

fn bench_lm_gradient(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut cfg = ModelConfig::mistral_miniature(300);
    cfg.n_layers = 1;
    let mut lm = CausalLm::new(cfg, &mut rng);
    attach(&mut lm, &LoraConfig::default(), &mut rng);
    let sample = (
        (0..48).map(|i| (i % 250) as u32 + 4).collect::<Vec<u32>>(),
        (0..48).map(|i| ((i + 1) % 250) as u32 + 4).collect::<Vec<u32>>(),
    );
    c.bench_function("lm_sample_gradient_t48_lora", |b| {
        b.iter(|| black_box(lm_sample_gradient(&lm, &sample)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agent_tracseq, bench_lm_gradient
}
criterion_main!(benches);
