//! Table 2 harness benchmark: evaluation throughput per classifier class
//! (replay calibration, expert system, and the full evaluate loop).
//! The full table regeneration lives in the `table2` binary; this bench
//! tracks the cost of its hot inner loops.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zg_data::german;
use zg_zigong::{
    calibrate, eval_items, evaluate_classifier, LogisticExpert, OperatingPoint, ReplayBaseline,
};

fn bench_replay_calibration(c: &mut Criterion) {
    let op = OperatingPoint {
        acc: 0.545,
        f1: 0.513,
        miss: 0.0,
    };
    c.bench_function("replay_calibrate_grid", |b| {
        b.iter(|| black_box(calibrate(&op, 0.3)))
    });
}

fn bench_evaluate_loop(c: &mut Criterion) {
    let ds = german(600, 1);
    let (train, test) = ds.split(0.25);
    let items = eval_items(&ds, &test);
    c.bench_function("evaluate_expert_150_items", |b| {
        b.iter_batched(
            || LogisticExpert::fit(&train, 2),
            |mut expert| black_box(evaluate_classifier(&mut expert, &items)),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("evaluate_replay_150_items", |b| {
        b.iter_batched(
            || {
                ReplayBaseline::new(
                    "GPT4",
                    OperatingPoint {
                        acc: 0.545,
                        f1: 0.513,
                        miss: 0.0,
                    },
                    ds.positive_rate(),
                    3,
                )
            },
            |mut replay| black_box(evaluate_classifier(&mut replay, &items)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replay_calibration, bench_evaluate_loop
}
criterion_main!(benches);
