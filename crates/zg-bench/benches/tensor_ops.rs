//! Microbenchmarks of the autograd engine: matmul, elementwise chains,
//! softmax, and a full backward sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zg_tensor::{available_threads, gemm_naive, gemm_tiled, gemm_with_threads, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn([n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([n, n], 0.0, 1.0, &mut rng);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    // Batched with broadcast weight (the transformer linear shape).
    let x = Tensor::randn([8, 64, 64], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([64, 64], 0.0, 1.0, &mut rng);
    group.bench_function("batched_8x64x64_by_64x64", |bench| {
        bench.iter(|| black_box(x.matmul(&w)))
    });
    group.finish();
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("gemm_kernel");
    let threads = available_threads();
    for &n in &[64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen::<f32>() - 0.5).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen::<f32>() - 0.5).collect();
        group.bench_function(format!("naive_{n}"), |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                gemm_naive(false, false, n, n, n, &a, &b, &mut out);
                black_box(out)
            })
        });
        group.bench_function(format!("tiled_{n}"), |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                gemm_tiled(false, false, n, n, n, &a, &b, &mut out);
                black_box(out)
            })
        });
        group.bench_function(format!("threaded{threads}_{n}"), |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                gemm_with_threads(false, false, n, n, n, &a, &b, &mut out, threads);
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_elementwise_and_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn([64, 256], 0.0, 1.0, &mut rng);
    let y = Tensor::randn([64, 256], 0.0, 1.0, &mut rng);
    c.bench_function("ewise_add_mul_silu_64x256", |b| {
        b.iter(|| black_box(x.add(&y).mul(&x).silu()))
    });
    c.bench_function("softmax_64x256", |b| b.iter(|| black_box(x.softmax())));
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("forward_backward_mlp_64", |b| {
        let w1 = Tensor::randn([64, 128], 0.0, 0.1, &mut rng);
        w1.set_requires_grad(true);
        let w2 = Tensor::randn([128, 64], 0.0, 0.1, &mut rng);
        w2.set_requires_grad(true);
        let x = Tensor::randn([16, 64], 0.0, 1.0, &mut rng);
        b.iter(|| {
            let loss = x.matmul(&w1).silu().matmul(&w2).square().mean();
            loss.backward();
            w1.zero_grad();
            w2.zero_grad();
            black_box(loss.item())
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm_kernels,
    bench_elementwise_and_softmax,
    bench_backward
);
criterion_main!(benches);
