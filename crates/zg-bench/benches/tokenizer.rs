//! Tokenizer throughput: BPE training, encoding, and decoding over the
//! financial-credit instruction corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zg_data::german;
use zg_instruct::render_classification;
use zg_tokenizer::BpeTokenizer;

fn corpus() -> Vec<String> {
    let ds = german(200, 1);
    ds.records
        .iter()
        .map(|r| render_classification(&ds, r).full_text())
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let texts = corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    c.bench_function("bpe_train_200docs_vocab500", |b| {
        b.iter(|| black_box(BpeTokenizer::train(&refs, 500)))
    });
}

fn bench_encode_decode(c: &mut Criterion) {
    let texts = corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let tok = BpeTokenizer::train(&refs, 600);
    let doc = &texts[0];
    c.bench_function("bpe_encode_one_prompt", |b| {
        b.iter(|| black_box(tok.encode(doc)))
    });
    let ids = tok.encode(doc);
    c.bench_function("bpe_decode_one_prompt", |b| {
        b.iter(|| black_box(tok.decode(&ids)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train, bench_encode_decode
}
criterion_main!(benches);
