//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - `gamma` — TracSeq time-decay factor γ sweep (γ=1 ⇒ vanilla TracIn).
//! - `mix`   — pruned-fraction sweep around the paper's 70/30 hybrid mix.
//! - `drift` — TracIn vs TracSeq on drifting vs stationary behavior data.
//! - `rank`  — LoRA rank sweep on the SFT task.
//!
//! Run all with `cargo run -p zg-bench --release --bin ablations`, or a
//! single study by name: `… --bin ablations -- gamma`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_bench::{cell, quick_mode, write_result};
use zg_data::{behavior_sequences, BehaviorConfig, Record};
use zg_eval::roc_auc;
use zg_influence::{hybrid_mix, select_top_k, AgentConfig, AgentModel, MixConfig};
use zg_lora::LoraConfig;
use zg_zigong::{
    agent_tracseq_scores, behavior_samples, split_behavior_by_user, train_zigong, TrainOrder,
    ZiGongConfig,
};

const SEED: u64 = 20_250_706;

fn main() {
    let which = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "all".to_string());
    const KNOWN: [&str; 6] = ["all", "gamma", "mix", "drift", "rank", "forgetting"];
    if !KNOWN.contains(&which.as_str()) {
        eprintln!("error: unknown ablation {which:?} (expected one of {KNOWN:?})");
        std::process::exit(2);
    }
    let mut out = String::new();
    if which == "gamma" || which == "all" {
        out.push_str(&ablation_gamma());
    }
    if which == "mix" || which == "all" {
        out.push_str(&ablation_mix());
    }
    if which == "drift" || which == "all" {
        out.push_str(&ablation_drift());
    }
    if which == "rank" || which == "all" {
        out.push_str(&ablation_rank());
    }
    if which == "forgetting" || which == "all" {
        out.push_str(&ablation_forgetting());
    }
    print!("{out}");
    write_result(&format!("ablations_{which}.txt"), &out);
}

type DriftSetup = (Vec<(Vec<f32>, bool, u32)>, Vec<(Vec<f32>, bool)>, Vec<bool>);

fn drifting_setup(persistence: f32, seed: u64) -> DriftSetup {
    let ds = behavior_sequences(
        &BehaviorConfig {
            // Harder setting than Figure 2's (fewer users, more noise) so
            // the selector ablations have headroom below the AUC ceiling.
            n_users: if quick_mode() { 120 } else { 220 },
            periods: 6,
            persistence,
            noise_std: 0.9,
            positive_rate: 0.3,
        },
        seed,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    let test_labels: Vec<bool> = test.iter().map(|r| r.label).collect();
    (train_s, test_s, test_labels)
}

/// Train a fresh agent on the index subset; report test AUC.
fn downstream_auc(
    train_s: &[(Vec<f32>, bool, u32)],
    picks: &[usize],
    test_s: &[(Vec<f32>, bool)],
    seed: u64,
) -> f64 {
    let xs: Vec<Vec<f32>> = picks.iter().map(|&i| train_s[i].0.clone()).collect();
    let ys: Vec<bool> = picks.iter().map(|&i| train_s[i].1).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
    let probs: Vec<f64> = test_s
        .iter()
        .map(|(x, _)| m.predict_proba(x) as f64)
        .collect();
    let labels: Vec<bool> = test_s.iter().map(|(_, y)| *y).collect();
    roc_auc(&probs, &labels)
}

/// Ablation A: γ sweep. Expectation on drifting data: γ < 1 beats γ = 1
/// (TracIn), with a sweet spot strictly inside (0, 1).
fn ablation_gamma() -> String {
    let mut out = String::from("Ablation A: TracSeq time-decay factor γ (drifting data)\n");
    out.push_str("--------------------------------------------------------\n");
    out.push_str(&format!("{:<8}{:>12}\n", "gamma", "test AUC"));
    let (train_s, test_s, _) = drifting_setup(0.5, SEED);
    let k = train_s.len() / 2;
    for gamma in [0.5f32, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let scores = agent_tracseq_scores(&train_s, &test_s, gamma, false, SEED ^ 1);
        let picks = select_top_k(&scores, k);
        let auc = downstream_auc(&train_s, &picks, &test_s, SEED ^ 2);
        out.push_str(&format!("{gamma:<8}{:>12}\n", cell(auc)));
    }
    out.push('\n');
    out
}

/// Ablation B: hybrid mix ratio sweep. The paper fixes 30% pruned; sweep
/// the pruned fraction from pure-random to pure-pruned.
fn ablation_mix() -> String {
    let mut out = String::from("Ablation B: hybrid mix pruned-fraction (paper: 0.30)\n");
    out.push_str("------------------------------------------------------\n");
    out.push_str(&format!("{:<10}{:>12}\n", "pruned%", "test AUC"));
    let (train_s, test_s, _) = drifting_setup(0.55, SEED ^ 3);
    let scores = agent_tracseq_scores(&train_s, &test_s, 0.9, false, SEED ^ 4);
    let ranked = select_top_k(&scores, train_s.len());
    let total = train_s.len() / 2;
    for pruned_frac in [0.0f64, 0.1, 0.3, 0.5, 0.7, 1.0] {
        let mut rng = StdRng::seed_from_u64(SEED ^ 5);
        let picks = hybrid_mix(
            &MixConfig {
                pruned_fraction: pruned_frac,
                total,
            },
            &ranked,
            train_s.len(),
            &mut rng,
        );
        let auc = downstream_auc(&train_s, &picks, &test_s, SEED ^ 6);
        out.push_str(&format!(
            "{:<10}{:>12}\n",
            format!("{:.0}%", pruned_frac * 100.0),
            cell(auc)
        ));
    }
    out.push('\n');
    out
}

/// Ablation C: TracIn (γ=1) vs TracSeq (γ=0.7) on drifting vs stationary
/// data. Two views: downstream AUC of a model retrained on the top-half
/// selection, and the selection's concentration on the two most recent
/// periods — the mechanism the γ decay is supposed to produce. Under
/// drift TracSeq concentrates on recent data and matches or beats TracIn;
/// when stationary the two coincide (no recency signal to exploit).
fn ablation_drift() -> String {
    let mut out = String::from("Ablation C: TracIn vs TracSeq under drift\n");
    out.push_str("-------------------------------------------\n");
    out.push_str(&format!(
        "{:<22}{:>8}{:>12}{:>12}{:>14}{:>14}\n",
        "data", "method", "test AUC", "test Acc", "recent-share", "(k=20%)"
    ));
    for (label, persistence) in [
        ("drifting (rho=0.5)", 0.5f32),
        ("stationary (rho=1.0)", 1.0),
    ] {
        let (train_s, test_s, _) = drifting_setup(persistence, SEED ^ 7);
        let k = train_s.len() / 5;
        for (method, gamma, sample_decay) in [
            ("TracIn", 1.0f32, false),
            ("TracSeq", 0.7, false),
            ("TracSeq+s", 0.7, true), // strict reading: decay sample age too
        ] {
            let scores = agent_tracseq_scores(&train_s, &test_s, gamma, sample_decay, SEED ^ 8);
            let picks = select_top_k(&scores, k);
            let auc = downstream_auc(&train_s, &picks, &test_s, SEED ^ 9);
            let recent =
                picks.iter().filter(|&&i| train_s[i].2 >= 4).count() as f64 / picks.len() as f64;
            out.push_str(&format!(
                "{:<22}{:>8}{:>12}{:>12}{:>14}\n",
                label,
                method,
                cell(auc),
                "-",
                cell(recent)
            ));
        }
    }
    out.push('\n');
    out
}

/// Ablation E: knowledge forgetting — sequential SFT vs the paper's
/// hybrid replay mix (motivating claim of §1).
fn ablation_forgetting() -> String {
    use zg_data::{auditing_dataset, german};
    use zg_zigong::{run_forgetting_study, ForgettingSetup, ZiGongConfig};
    let mut out = String::from("Ablation E: knowledge forgetting (sequential vs hybrid replay)\n");
    out.push_str("----------------------------------------------------------------\n");
    let a = german(if quick_mode() { 160 } else { 400 }, SEED ^ 20);
    let b = auditing_dataset(if quick_mode() { 160 } else { 400 }, SEED ^ 21);
    let (train_a, test_a) = a.split(0.25);
    let (train_b, test_b) = b.split(0.25);
    let take = if quick_mode() { 48 } else { 160 };
    let mut cfg = ZiGongConfig::miniature(SEED ^ 22);
    cfg.vocab_size = 450;
    cfg.model.vocab_size = 450;
    cfg.train.max_seq_len = 96;
    cfg.train.epochs = if quick_mode() { 1 } else { 3 };
    cfg.train.pretrain_epochs = if quick_mode() { 2 } else { 5 };
    cfg.train.checkpoint_every = 0;
    let setup = ForgettingSetup {
        task_a: &a,
        train_a: train_a.into_iter().take(take).collect(),
        test_a: test_a.into_iter().take(60).collect(),
        task_b: &b,
        train_b: train_b.into_iter().take(take).collect(),
        test_b: test_b.into_iter().take(60).collect(),
        replay_fraction: 0.3,
        config: cfg,
    };
    let r = run_forgetting_study(&setup);
    out.push_str(&format!(
        "task A (German) acc after learning A : {}\n",
        cell(r.acc_a_initial)
    ));
    out.push_str(&format!(
        "  after sequential SFT on B          : {}  (forgot {})\n",
        cell(r.acc_a_sequential),
        cell(r.forgetting_sequential())
    ));
    out.push_str(&format!(
        "  after hybrid 70/30 replay SFT on B : {}  (forgot {})\n",
        cell(r.acc_a_hybrid),
        cell(r.forgetting_hybrid())
    ));
    out.push_str(&format!(
        "task B (Auditing) acc: sequential {} | hybrid {}\n\n",
        cell(r.acc_b_sequential),
        cell(r.acc_b_hybrid)
    ));
    out
}

/// Ablation D: LoRA rank sweep on a small SFT task (paper: r = 8).
fn ablation_rank() -> String {
    let mut out = String::from("Ablation D: LoRA rank (paper: r = 8)\n");
    out.push_str("--------------------------------------\n");
    out.push_str(&format!(
        "{:<8}{:>14}{:>16}\n",
        "rank", "final loss", "adapter params"
    ));
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: if quick_mode() { 40 } else { 80 },
            periods: 4,
            persistence: 0.6,
            noise_std: 0.4,
            positive_rate: 0.3,
        },
        SEED ^ 10,
    );
    let (train, _) = split_behavior_by_user(&ds, 0.2);
    let mut rng = StdRng::seed_from_u64(SEED ^ 11);
    let mut subset: Vec<&Record> = train.clone();
    subset.shuffle(&mut rng);
    subset.truncate(if quick_mode() { 48 } else { 120 });
    let examples: Vec<_> = subset
        .iter()
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    for rank in [1usize, 2, 4, 8, 16] {
        let mut cfg = ZiGongConfig::miniature(SEED ^ 12);
        cfg.vocab_size = 400;
        cfg.model.vocab_size = 400;
        cfg.train.max_seq_len = 128;
        cfg.train.epochs = if quick_mode() { 1 } else { 2 };
        cfg.train.checkpoint_every = 0;
        cfg.lora = LoraConfig {
            rank,
            alpha: 2.0 * rank as f32,
            ..Default::default()
        };
        let (model, report) = train_zigong(&examples, &cfg, TrainOrder::Shuffled, "rank-ablation");
        let params = zg_lora::lora_param_count(&model.lm);
        out.push_str(&format!(
            "{rank:<8}{:>14}{params:>16}\n",
            format!("{:.3}", report.final_loss())
        ));
    }
    out.push('\n');
    out
}
