//! Regenerates **Figure 2**: the impact of data pruning on model
//! performance across sample sizes, contrasting high-influence vs
//! low-influence vs random selection, with Accuracy and the KS statistic
//! (the paper's financial risk-control metric).
//!
//! Pipeline (per arm × fraction):
//! 1. Generate drifting behavior sequences; split users into train/test.
//! 2. Score every training record with **TracSeq** via the sequential
//!    agent model (checkpoints per period).
//! 3. Select `frac·N` records by the arm's rule.
//! 4. Fine-tune a fresh ZiGong miniature (LoRA SFT) on the rendered
//!    instructions — or the agent model with `--trainee agent` / `--quick`.
//! 5. Evaluate Acc and KS on unseen users at the current period.
//!
//! The paper's headline finding to reproduce: *half of the high-influence
//! samples beat the full original dataset*, and high-influence selection
//! dominates low-influence at every size.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_bench::{arg_value, cell, quick_mode, write_result};
use zg_data::{behavior_sequences, BehaviorConfig, Record};
use zg_eval::{ks_statistic, roc_auc};
use zg_influence::{select_bottom_k, select_top_k, AgentConfig, AgentModel};
use zg_instruct::render_classification;
use zg_zigong::{
    agent_tracseq_scores, behavior_samples, eval_items, evaluate_classifier,
    split_behavior_by_user, train_zigong, TrainOrder, ZiGongConfig,
};

#[derive(Clone, Copy, PartialEq)]
enum Trainee {
    Lm,
    Agent,
}

struct ArmResult {
    arm: &'static str,
    frac: f64,
    n: usize,
    acc: f64,
    f1: f64,
    ks: f64,
    auc: f64,
}

fn main() {
    let quick = quick_mode();
    let trainee = match arg_value("--trainee").as_deref() {
        Some("agent") => Trainee::Agent,
        Some("lm") => Trainee::Lm,
        Some(other) => {
            eprintln!("error: unknown --trainee {other:?} (expected \"lm\" or \"agent\")");
            std::process::exit(2);
        }
        None if quick => Trainee::Agent,
        None => Trainee::Lm,
    };
    let seed: u64 = arg_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_250_706);

    let cfg = BehaviorConfig {
        n_users: if quick { 120 } else { 160 },
        periods: 6,
        persistence: 0.55,
        noise_std: 0.45,
        positive_rate: 0.3,
    };
    let ds = behavior_sequences(&cfg, seed);
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    eprintln!(
        "Figure 2 pruning study: {} train records, {} test users, trainee={}",
        train.len(),
        test.len(),
        if trainee == Trainee::Lm {
            "LM (LoRA SFT)"
        } else {
            "agent model"
        }
    );

    // TracSeq scores over the full training pool (paper Eq. 1 + 2).
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    let scores = agent_tracseq_scores(&train_s, &test_s, 0.9, false, seed ^ 0xF16);

    let fractions = [0.10, 0.25, 0.50, 0.75, 1.00];
    let mut results: Vec<ArmResult> = Vec::new();
    let t0 = std::time::Instant::now();
    for &frac in &fractions {
        let k = ((train.len() as f64) * frac).round() as usize;
        let arms: Vec<(&'static str, Vec<usize>)> = vec![
            ("high-influence", select_top_k(&scores, k)),
            ("low-influence", select_bottom_k(&scores, k)),
            ("random", {
                let mut idx: Vec<usize> = (0..train.len()).collect();
                idx.shuffle(&mut StdRng::seed_from_u64(seed ^ (k as u64)));
                idx.truncate(k);
                idx
            }),
        ];
        for (arm, picks) in arms {
            if frac >= 1.0 && arm != "random" {
                continue; // at 100% all arms coincide; report once
            }
            let subset: Vec<&Record> = picks.iter().map(|&i| train[i]).collect();
            let (acc, f1, ks, auc) = match trainee {
                Trainee::Lm => eval_lm(&ds, &subset, &test, seed, quick),
                Trainee::Agent => eval_agent(&subset, &test, seed),
            };
            eprintln!(
                "  [{:>5.0}% | {:<14}] n={:<4} acc={:.3} f1={:.3} ks={:.3} auc={:.3} ({:.0}s)",
                frac * 100.0,
                arm,
                subset.len(),
                acc,
                f1,
                ks,
                auc,
                t0.elapsed().as_secs_f64()
            );
            results.push(ArmResult {
                arm: if frac >= 1.0 { "full dataset" } else { arm },
                frac,
                n: subset.len(),
                acc,
                f1,
                ks,
                auc,
            });
        }
    }

    // Render the two panels (Acc and KS) as text series.
    let mut out = String::new();
    out.push_str("Figure 2: impact of data pruning across sample sizes\n");
    out.push_str("=====================================================\n\n");
    out.push_str(&format!(
        "{:<16}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}\n",
        "arm", "frac", "n", "Acc", "F1", "KS", "AUC"
    ));
    for r in &results {
        out.push_str(&format!(
            "{:<16}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}\n",
            r.arm,
            format!("{:.0}%", r.frac * 100.0),
            r.n,
            cell(r.acc),
            cell(r.f1),
            cell(r.ks),
            cell(r.auc)
        ));
    }
    let full = results.iter().find(|r| r.frac >= 1.0).expect("full arm");
    let half_high = results
        .iter()
        .find(|r| r.arm == "high-influence" && (r.frac - 0.5).abs() < 1e-9)
        .expect("half high arm");
    out.push_str(&format!(
        "\nPaper claim check — 50% high-influence vs 100% full dataset:\n  Acc {} vs {} | KS {} vs {}  ({})\n",
        cell(half_high.acc),
        cell(full.acc),
        cell(half_high.ks),
        cell(full.ks),
        if half_high.acc >= full.acc || half_high.ks >= full.ks {
            "claim reproduced"
        } else {
            "claim NOT reproduced at this scale"
        }
    ));
    print!("\n{out}");
    write_result("figure2.txt", &out);
}

/// Train + evaluate the LM trainee on a record subset.
fn eval_lm(
    ds: &zg_data::Dataset,
    subset: &[&Record],
    test: &[&Record],
    seed: u64,
    quick: bool,
) -> (f64, f64, f64, f64) {
    let examples: Vec<_> = subset
        .iter()
        .map(|r| render_classification(ds, r))
        .collect();
    let mut cfg = ZiGongConfig::miniature(seed ^ subset.len() as u64);
    cfg.vocab_size = 420;
    cfg.model.vocab_size = 420;
    cfg.train.max_seq_len = 96;
    cfg.train.pretrain_epochs = if quick { 1 } else { 3 };
    cfg.train.epochs = if quick { 1 } else { 2 };
    cfg.train.checkpoint_every = 0;
    let (mut model, _) = train_zigong(&examples, &cfg, TrainOrder::Chronological, "trainee");
    let items = eval_items(ds, test);
    let r = evaluate_classifier(&mut model, &items);
    (r.eval.acc, r.eval.f1, r.ks, r.auc)
}

/// Train + evaluate the agent-model trainee on a record subset.
fn eval_agent(subset: &[&Record], test: &[&Record], seed: u64) -> (f64, f64, f64, f64) {
    let xs: Vec<Vec<f32>> = subset.iter().map(|r| r.numeric_features()).collect();
    let ys: Vec<bool> = subset.iter().map(|r| r.label).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA9E);
    let (m, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
    let probs: Vec<f64> = test
        .iter()
        .map(|r| m.predict_proba(&r.numeric_features()) as f64)
        .collect();
    let labels: Vec<bool> = test.iter().map(|r| r.label).collect();
    // Threshold at prior for Acc/F1.
    let prior = ys.iter().filter(|&&y| y).count() as f64 / ys.len() as f64;
    let mut sorted = probs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let thr = sorted[(((1.0 - prior) * sorted.len() as f64) as usize).min(sorted.len() - 1)];
    let preds: Vec<zg_eval::Prediction> = probs
        .iter()
        .map(|&p| zg_eval::Prediction::Label(p >= thr))
        .collect();
    let e = zg_eval::evaluate_binary(&preds, &labels);
    (
        e.acc,
        e.f1,
        ks_statistic(&probs, &labels),
        roc_auc(&probs, &labels),
    )
}
