//! Inference fast-path benchmark: measures each layer of the speedup
//! stack — tiled/SIMD GEMM microkernels, int8 quantized inference, KV
//! prefix-reused continuation scoring, chunked prefill decoding, and
//! parallel benchmark evaluation — against the historical
//! implementations, and writes `results/inference_fast.json`.
//!
//! Stages of the end-to-end comparison (a Table-2-style eval pass):
//!
//! 1. baseline: naive GEMM, full-forward continuation scoring,
//!    token-by-token prompt ingestion, serial items;
//! 2. +tiled GEMM (same scoring path);
//! 3. +KV prefix reuse and chunked prefill (serial items);
//! 4. +parallel item evaluation (all cores);
//! 5. +int8 quantized frozen weights (parallel).
//!
//! Exits non-zero if a perf gate fails: the SIMD kernel must clear a
//! minimum speedup over naive (2x at 256³ full, 1.2x at 128³ quick),
//! int8 decode must not lose to f32 SIMD decode, and the quantized
//! Table-2-style metrics must stay within `QUANT_ACC_TOL` /
//! `QUANT_KS_TOL` of the f32 run.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_bench::{quick_mode, write_result};
use zg_model::{CausalLm, ModelConfig};
use zg_tensor::{
    available_threads, gemm_naive, gemm_simd, gemm_tiled, gemm_with_threads, set_gemm_kernel,
    simd_available, GemmKernel, QuantizedMatrix,
};
use zg_tokenizer::Special;
use zg_zigong::{
    eval_items, evaluate_classifier, evaluate_zigong, train_tokenizer, CreditClassifier, EvalItem,
    ZiGongModel,
};

/// Deterministic pseudo-random buffer (xorshift; no RNG state shared
/// with the model builders).
fn mat(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Median seconds per call, adaptively repeated to ~0.2s of wall-clock.
fn time_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.2 / once) as usize).clamp(1, 10_000);
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / reps as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

fn gemm_section(quick: bool) -> serde_json::Value {
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(64, 64, 64), (128, 128, 128)]
    } else {
        &[
            (64, 64, 64),
            (128, 128, 128),
            (256, 256, 256),
            (128, 768, 64),
        ]
    };
    let threads = available_threads();
    let mut rows = Vec::new();
    for &(m, n, k) in shapes {
        let a = mat(1, m * k);
        let b = mat(2, k * n);
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * (m * n * k) as f64;
        let t_naive = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_naive(false, false, m, n, k, &a, &b, &mut c);
        });
        let t_tiled = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_tiled(false, false, m, n, k, &a, &b, &mut c);
        });
        let t_threaded = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_with_threads(false, false, m, n, k, &a, &b, &mut c, threads);
        });
        let t_simd = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_simd(false, false, m, n, k, &a, &b, &mut c);
        });
        // int8: weights quantized offline (outside the timer, like model
        // calibration); per-row activation quantization is part of the
        // measured per-call cost, as in the serving path.
        let qb = QuantizedMatrix::quantize(&b, k, n);
        let mut qc = vec![0.0f32; m * n];
        let t_quant = time_call(|| qb.matmul_into(&a, m, &mut qc));
        println!(
            "gemm {m}x{n}x{k}: naive {:.2} GF/s, tiled {:.2} GF/s ({:.2}x), simd {:.2} GF/s ({:.2}x), int8 {:.2} GF/s ({:.2}x), threaded({threads}) {:.2} GF/s",
            flops / t_naive / 1e9,
            flops / t_tiled / 1e9,
            t_naive / t_tiled,
            flops / t_simd / 1e9,
            t_naive / t_simd,
            flops / t_quant / 1e9,
            t_naive / t_quant,
            flops / t_threaded / 1e9,
        );
        rows.push(serde_json::json!({
            "m": m, "n": n, "k": k,
            "naive_gflops": flops / t_naive / 1e9,
            "tiled_gflops": flops / t_tiled / 1e9,
            "simd_gflops": flops / t_simd / 1e9,
            "quant_gflops": flops / t_quant / 1e9,
            "threaded_gflops": flops / t_threaded / 1e9,
            "tiled_speedup": t_naive / t_tiled,
            "simd_speedup": t_naive / t_simd,
            "quant_speedup": t_naive / t_quant,
            "threads": threads,
        }));
    }
    serde_json::Value::Array(rows)
}

/// The benchmark model: the Table 2 miniature geometry with a BPE
/// tokenizer trained to the Table 2 vocabulary target, and random
/// weights (inference cost does not depend on training).
fn bench_model(examples: &[zg_instruct::InstructExample]) -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let tokenizer = train_tokenizer(examples, 768);
    let cfg = ModelConfig::mistral_miniature(tokenizer.vocab_size());
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, tokenizer, 128, "bench")
}

fn greedy(logits: &[f32]) -> u32 {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i as u32)
        .expect("non-empty logits")
}

/// Historical decode: one cached step per *prompt* token (no chunked
/// prefill), then greedy sampling.
fn answer_old(m: &ZiGongModel, prompt: &str, max_new: usize) -> String {
    let ids = m.prompt_ids(prompt, max_new);
    let mut cache = m.lm.new_cache();
    let mut logits = Vec::new();
    for &t in &ids {
        logits = m.lm.step(t, &mut cache);
    }
    let mut out = Vec::new();
    for _ in 0..max_new {
        let next = greedy(&logits);
        if next == Special::Eos.id() {
            break;
        }
        out.push(next);
        logits = m.lm.step(next, &mut cache);
    }
    m.tokenizer.decode(&out)
}

/// The historical `score_continuation`, verbatim: one full forward over
/// `prompt ++ continuation` per candidate, with the log-softmax
/// materialized over the entire `[t, vocab]` grid.
fn score_continuation_legacy(lm: &CausalLm, prompt: &[u32], continuation: &[u32]) -> f32 {
    zg_tensor::no_grad(|| {
        let mut seq = prompt.to_vec();
        seq.extend_from_slice(continuation);
        let t = seq.len();
        let logits = lm.forward(&seq, 1, t);
        let logp = logits.reshape([t, lm.cfg.vocab_size]).log_softmax();
        let lp = logp.data();
        let v = lm.cfg.vocab_size;
        let mut total = 0.0f32;
        for (i, &tok) in continuation.iter().enumerate() {
            let pos = prompt.len() + i - 1; // logits at pos predict token pos+1
            total += lp[pos * v + tok as usize];
        }
        total
    })
}

/// Historical positive-class score: one full forward + full log-softmax
/// per candidate, no KV reuse.
fn score_old(m: &ZiGongModel, item: &EvalItem) -> f64 {
    let prompt = m.prompt_ids(&item.example.prompt, 8);
    let neg = m
        .tokenizer
        .encode(&format!(" {}", item.example.candidates[0]));
    let pos = m
        .tokenizer
        .encode(&format!(" {}", item.example.candidates[1]));
    let lp_neg = score_continuation_legacy(&m.lm, &prompt, &neg) as f64;
    let lp_pos = score_continuation_legacy(&m.lm, &prompt, &pos) as f64;
    let a = lp_pos / pos.len() as f64;
    let b = lp_neg / neg.len() as f64;
    let mx = a.max(b);
    let (ea, eb) = ((a - mx).exp(), (b - mx).exp());
    ea / (ea + eb)
}

/// The pre-fast-path evaluation loop as a [`CreditClassifier`], so both
/// eras run through the identical metric code.
struct OldPath<'a>(&'a ZiGongModel);

impl CreditClassifier for OldPath<'_> {
    fn name(&self) -> String {
        format!("{} (old path)", self.0.display_name)
    }
    fn answer(&mut self, item: &EvalItem) -> String {
        answer_old(self.0, &item.example.prompt, 6)
    }
    fn score(&mut self, item: &EvalItem) -> f64 {
        score_old(self.0, item)
    }
}

fn decode_section(m: &ZiGongModel, quick: bool) -> serde_json::Value {
    let prompt: Vec<u32> = std::iter::once(Special::Bos.id())
        .chain((0..63).map(|i| 32 + (i * 5) % 200))
        .collect();
    let new_tokens = if quick { 16 } else { 48 };
    let mut rng = StdRng::seed_from_u64(3);
    // Old: step-per-prompt-token ingestion, naive GEMM.
    set_gemm_kernel(GemmKernel::Naive);
    let t_old = time_call(|| {
        let mut cache = m.lm.new_cache();
        let mut logits = Vec::new();
        for &t in &prompt {
            logits = m.lm.step(t, &mut cache);
        }
        for _ in 0..new_tokens {
            let next = greedy(&logits);
            logits = m.lm.step(next, &mut cache);
        }
    });
    // New: chunked prefill + tiled/threaded GEMM.
    set_gemm_kernel(GemmKernel::Auto);
    let t_new = time_call(|| {
        let _ =
            m.lm.generate(&prompt, new_tokens, 0.0, Special::Eos.id(), &mut rng);
    });
    // f32 SIMD: the same decode pinned to the AVX2 kernel (falls back to
    // the portable path on non-x86 hosts).
    set_gemm_kernel(GemmKernel::Simd);
    let t_simd = time_call(|| {
        let _ =
            m.lm.generate(&prompt, new_tokens, 0.0, Special::Eos.id(), &mut rng);
    });
    // int8: quantize the frozen base weights in place (linear layers run
    // the quantized path; everything else stays on the SIMD kernel).
    let calibrated = m.set_quantized(true);
    assert!(calibrated > 0, "bench model must be frozen for int8 decode");
    let t_quant = time_call(|| {
        let _ =
            m.lm.generate(&prompt, new_tokens, 0.0, Special::Eos.id(), &mut rng);
    });
    m.set_quantized(false);
    set_gemm_kernel(GemmKernel::Auto);
    let total = (prompt.len() + new_tokens) as f64;
    println!(
        "decode ({} prompt + {new_tokens} new): old {:.1} tok/s, new {:.1} tok/s ({:.2}x), f32 simd {:.1} tok/s, int8 {:.1} tok/s ({:.2}x vs simd)",
        prompt.len(),
        total / t_old,
        total / t_new,
        t_old / t_new,
        total / t_simd,
        total / t_quant,
        t_simd / t_quant,
    );
    serde_json::json!({
        "prompt_tokens": prompt.len(),
        "new_tokens": new_tokens,
        "old_tok_per_s": total / t_old,
        "new_tok_per_s": total / t_new,
        "simd_tok_per_s": total / t_simd,
        "quant_tok_per_s": total / t_quant,
        "speedup": t_old / t_new,
        "quant_vs_simd_speedup": t_simd / t_quant,
        "quantized_layers": calibrated,
    })
}

fn scoring_section(m: &ZiGongModel, items: &[EvalItem<'_>]) -> serde_json::Value {
    let sample = &items[0];
    set_gemm_kernel(GemmKernel::Naive);
    let t_old = time_call(|| {
        let _ = score_old(m, sample);
    });
    set_gemm_kernel(GemmKernel::Auto);
    let t_new = time_call(|| {
        let _ = m.positive_probability(&sample.example);
    });
    println!(
        "continuation scoring: old {:.2} ms/item, new {:.2} ms/item ({:.2}x)",
        t_old * 1e3,
        t_new * 1e3,
        t_old / t_new
    );
    serde_json::json!({
        "candidates": 2,
        "old_ms_per_item": t_old * 1e3,
        "new_ms_per_item": t_new * 1e3,
        "speedup": t_old / t_new,
    })
}

fn table2_eval_section(m: &ZiGongModel, items: &[EvalItem<'_>]) -> serde_json::Value {
    let n = items.len() as f64;
    let mut stages = Vec::new();
    let mut push = |name: &str, secs: f64, base: f64, acc: f64| {
        println!(
            "eval stage [{name}]: {secs:.2}s ({:.1} ms/item, {:.2}x vs baseline)",
            secs / n * 1e3,
            base / secs
        );
        stages.push(serde_json::json!({
            "name": name,
            "seconds": secs,
            "ms_per_item": secs / n * 1e3,
            "speedup_vs_baseline": base / secs,
            "acc": acc,
        }));
    };
    // Each stage runs twice; keep the faster pass (rejects scheduler
    // noise, which at miniature scale can exceed the stage deltas).
    let run = |f: &mut dyn FnMut() -> f64| {
        let a = {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        };
        let t = Instant::now();
        let acc = f();
        (t.elapsed().as_secs_f64().min(a), acc)
    };

    // Warm up allocators and instruction caches before the first timing.
    set_gemm_kernel(GemmKernel::Naive);
    let _ = evaluate_classifier(&mut OldPath(m), &items[..2.min(items.len())]);

    let (t_base, acc_base) = run(&mut || evaluate_classifier(&mut OldPath(m), items).eval.acc);
    push(
        "naive gemm + full-forward scoring (serial)",
        t_base,
        t_base,
        acc_base,
    );

    set_gemm_kernel(GemmKernel::Auto);
    let (t_tiled, acc_tiled) = run(&mut || evaluate_classifier(&mut OldPath(m), items).eval.acc);
    push(
        "auto gemm (simd on avx2) + full-forward scoring (serial)",
        t_tiled,
        t_base,
        acc_tiled,
    );

    let (t_kv, acc_kv) = run(&mut || evaluate_zigong(m, items, 1).eval.acc);
    push("auto gemm + kv prefix reuse (serial)", t_kv, t_base, acc_kv);

    let workers = available_threads();
    let (t_par, _) = run(&mut || evaluate_zigong(m, items, 0).eval.acc);
    let baseline = {
        set_gemm_kernel(GemmKernel::Naive);
        let r = evaluate_classifier(&mut OldPath(m), items);
        set_gemm_kernel(GemmKernel::Auto);
        r
    };
    let par = evaluate_zigong(m, items, 0);
    push(
        "auto gemm + kv prefix reuse + parallel eval",
        t_par,
        t_base,
        par.eval.acc,
    );

    // Stage 5: int8 quantized frozen weights on the full parallel path.
    // Unlike stages 1-4 (bit-identical by contract), quantization *is*
    // lossy — the gate below bounds the Table-2-style metric drift.
    let quant_layers = m.set_quantized(true);
    let (t_quant, _) = run(&mut || evaluate_zigong(m, items, 0).eval.acc);
    let quant = evaluate_zigong(m, items, 0);
    m.set_quantized(false);
    push(
        "int8 quantized + kv prefix reuse + parallel eval",
        t_quant,
        t_base,
        quant.eval.acc,
    );

    let metrics_match = baseline.eval.acc == par.eval.acc
        && baseline.eval.f1 == par.eval.f1
        && baseline.eval.miss == par.eval.miss
        && (baseline.ks - par.ks).abs() < 1e-9
        && (baseline.auc - par.auc).abs() < 1e-9;
    if !metrics_match {
        println!("WARNING: fast-path metrics diverge from baseline");
    }
    let quant_acc_delta = (quant.eval.acc - par.eval.acc).abs();
    let quant_ks_delta = (quant.ks - par.ks).abs();
    let quant_auc_delta = (quant.auc - par.auc).abs();
    println!(
        "quantized metric drift: |Δacc| {quant_acc_delta:.4}, |ΔKS| {quant_ks_delta:.4}, |ΔAUC| {quant_auc_delta:.4} ({quant_layers} int8 layers)"
    );
    let quant_obj = serde_json::json!({
        "layers": quant_layers,
        "acc_delta": quant_acc_delta,
        "ks_delta": quant_ks_delta,
        "auc_delta": quant_auc_delta,
    });
    serde_json::json!({
        "items": items.len(),
        "workers": workers,
        "stages": stages,
        "end_to_end_speedup": t_base / t_par,
        "metrics_match": metrics_match,
        "quant": quant_obj,
    })
}

/// Allowed Table-2-style metric drift of the int8 path vs the f32 fast
/// path: `(acc, ks)` tolerances, laxer in quick mode where the item
/// count is tiny and one flipped item moves accuracy by ~0.17.
fn quant_metric_tolerance(quick: bool) -> (f64, f64) {
    if quick {
        (0.35, 0.5)
    } else {
        (0.1, 0.15)
    }
}

fn main() {
    let quick = quick_mode();
    println!(
        "== inference fast-path benchmark ({} threads available) ==",
        available_threads()
    );

    let gemm = gemm_section(quick);

    let ds = zg_data::german(if quick { 16 } else { 120 }, 0x1F);
    let (train, test) = ds.split(0.5);
    let train_examples: Vec<_> = train
        .iter()
        .take(60)
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    let model = bench_model(&train_examples);
    // Freeze the base: the deployed-model shape (LoRA training freezes
    // every base weight), and the precondition for int8 calibration.
    // Inference cost and f32 numbers are unaffected by gradient flags.
    for (_, p) in model.lm.params() {
        p.set_requires_grad(false);
    }
    let capped: Vec<_> = test
        .iter()
        .copied()
        .take(if quick { 6 } else { 32 })
        .collect();
    let items = eval_items(&ds, &capped);
    let mean_prompt_tokens = items
        .iter()
        .map(|it| model.prompt_ids(&it.example.prompt, 8).len())
        .sum::<usize>() as f64
        / items.len() as f64;
    println!(
        "eval items: {} (mean prompt length {mean_prompt_tokens:.1} tokens)",
        items.len()
    );

    let decode = decode_section(&model, quick);
    let scoring = scoring_section(&model, &items);
    let table2 = table2_eval_section(&model, &items);
    set_gemm_kernel(GemmKernel::Auto);

    let (acc_tol, ks_tol) = quant_metric_tolerance(quick);
    let gate_dim: usize = if quick { 128 } else { 256 };
    let simd_min_speedup: f64 = if quick { 1.2 } else { 2.0 };
    let quant_decode_min_ratio: f64 = if quick { 0.8 } else { 1.0 };
    let gates_obj = serde_json::json!({
        "simd_gate_shape": gate_dim,
        "simd_min_speedup": simd_min_speedup,
        "quant_decode_min_vs_simd": quant_decode_min_ratio,
        "quant_acc_tol": acc_tol,
        "quant_ks_tol": ks_tol,
    });
    let out = serde_json::to_string_pretty(&serde_json::json!({
        "host_threads": available_threads(),
        "simd_available": simd_available(),
        "gemm": gemm,
        "decode": decode,
        "scoring": scoring,
        "table2_eval": table2,
        "gates": gates_obj,
    }))
    .expect("benchmark serializes");
    write_result("inference_fast.json", &out);

    // ---- Perf + accuracy gates (mirrors serve_load: exit non-zero). ----
    let mut failed = false;
    if simd_available() {
        let row = gemm
            .as_array()
            .and_then(|rows| {
                let dim = gate_dim as i64;
                rows.iter()
                    .find(|r| r["m"] == dim && r["n"] == dim && r["k"] == dim)
            })
            .expect("gate shape measured");
        let simd_speedup = row["simd_speedup"].as_f64().unwrap_or(0.0);
        if simd_speedup < simd_min_speedup {
            println!(
                "FAIL: simd gemm at {gate_dim}^3 is {simd_speedup:.2}x naive (need >= {simd_min_speedup:.1}x)"
            );
            failed = true;
        }
        let quant_tok = table_f64(&decode, "quant_tok_per_s");
        let simd_tok = table_f64(&decode, "simd_tok_per_s");
        if quant_tok < simd_tok * quant_decode_min_ratio {
            println!(
                "FAIL: int8 decode {quant_tok:.1} tok/s does not clear f32 simd {simd_tok:.1} tok/s (need >= {quant_decode_min_ratio:.1}x)"
            );
            failed = true;
        }
    } else {
        println!("NOTE: no AVX2 on this host; SIMD/int8 perf gates skipped (portable fallback)");
    }
    let acc_delta = table_f64(&table2["quant"], "acc_delta");
    let ks_delta = table_f64(&table2["quant"], "ks_delta");
    if acc_delta > acc_tol || ks_delta > ks_tol {
        println!(
            "FAIL: quantized metric drift |Δacc| {acc_delta:.4} (tol {acc_tol}) / |ΔKS| {ks_delta:.4} (tol {ks_tol})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("inference_fast gates passed: simd speedup, int8 decode, quantized metric drift");
}

/// Pull a required f64 field out of a benchmark JSON section.
fn table_f64(section: &serde_json::Value, key: &str) -> f64 {
    section[key]
        .as_f64()
        .unwrap_or_else(|| panic!("benchmark section missing {key}"))
}
