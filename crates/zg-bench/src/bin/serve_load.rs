//! Serving load benchmark: drives the zg-serve continuous-batching
//! server with open-loop Poisson traffic (seeded), reports p50/p99
//! latency and sustained QPS, and gates on the server's two hard
//! invariants before writing `results/serve_load.json`:
//!
//! 1. **bitwise parity** — every served `(answer, p)` is exact-`f64`
//!    equal to the offline `ZiGongModel::evaluate_item` on the same
//!    item, prefix sharing and batching included;
//! 2. **simulation determinism** — two deterministic-clock runs with
//!    the same seed produce byte-identical zg-trace JSONL.
//!
//! Exits non-zero if either gate fails or p99 exceeds the sanity
//! ceiling, so CI can run `serve_load --quick` as a smoke test.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_bench::{quick_mode, write_result};
use zg_model::{CausalLm, ModelConfig};
use zg_serve::{
    drive, poisson_arrivals, EngineConfig, LatencyRecorder, Reply, Request, ServeConfig, Server,
    ZiGongEngine,
};
use zg_trace::{ManualClock, Tracer};
use zg_zigong::{eval_items, train_tokenizer, EvalItem, ZiGongModel};

const SEED: u64 = 0x5E4E;

/// The benchmark model: miniature geometry, trained BPE tokenizer, and
/// a prompt budget wide enough that rendered credit prompts fit
/// untruncated — so the load run exercises the shared-prefill +
/// prefix-pool path, not the truncation fallback.
fn bench_model(examples: &[zg_instruct::InstructExample]) -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let tokenizer = train_tokenizer(examples, 768);
    let mut cfg = ModelConfig::mistral_miniature(tokenizer.vocab_size());
    cfg.max_seq_len = 512;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, tokenizer, 512, "serve-bench")
}

fn score_request(items: &[EvalItem<'_>], i: usize) -> Request {
    let ex = &items[i % items.len()].example;
    Request::score(
        ex.prompt.clone(),
        ex.candidates[0].clone(),
        ex.candidates[1].clone(),
    )
}

fn main() {
    let quick = quick_mode();
    let (n_requests, rate, n_items) = if quick {
        (24, 40.0, 6)
    } else {
        (160, 80.0, 16)
    };
    let workers = zg_tensor::available_threads().clamp(1, 4);
    let p99_ceiling = 20.0;

    println!("== serve_load: continuous-batching server benchmark ==");
    println!("requests={n_requests} offered_rate={rate}/s workers={workers} seed={SEED:#x}");

    // Model + items (same recipe as the inference benchmark).
    let ds = zg_data::german(64, 0x2F);
    let (train, test) = ds.split(0.5);
    let train_examples: Vec<_> = train
        .iter()
        .take(40)
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    let mut model = bench_model(&train_examples);
    let capped: Vec<_> = test.iter().copied().take(n_items).collect();
    let items = eval_items(&ds, &capped);

    // Offline oracle, computed once per distinct item.
    let oracle: Vec<(String, f64)> = items.iter().map(|it| model.evaluate_item(it)).collect();

    // ---- Wall-clock load run (traced) ----
    let tracer = Tracer::with_clock(zg_trace::wall_clock());
    let guard = tracer.install("serve_load");
    let engine = ZiGongEngine::new(
        model.spec(),
        EngineConfig {
            workers,
            prefix_tokens: 24,
            // Sized to the distinct-item working set: requests cycle over
            // `n_items` prompts, and a smaller LRU pool would thrash.
            pool_capacity: n_items,
            ..EngineConfig::default()
        },
    );
    let cfg = ServeConfig {
        queue_capacity: n_requests,
        max_batch: 2 * workers.max(1),
        default_timeout: None,
    };
    let mut server = Server::new(engine, cfg, zg_trace::wall_clock());
    let arrivals = poisson_arrivals(SEED, rate, n_requests);

    let t0 = Instant::now();
    let mut submitted = 0usize;
    let mut completions = Vec::with_capacity(n_requests);
    while submitted < n_requests || server.queue_len() > 0 {
        let now = t0.elapsed().as_secs_f64();
        while submitted < n_requests && arrivals[submitted] <= now {
            server
                .submit(score_request(&items, submitted))
                .expect("queue sized to the full load");
            submitted += 1;
        }
        if server.queue_len() > 0 {
            completions.extend(server.tick());
        } else if submitted < n_requests {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    // Parity check: every reply must match the oracle bit-for-bit.
    let mut parity = true;
    let mut latencies = LatencyRecorder::new();
    let mut first_arrival = f64::INFINITY;
    let mut last_finish = f64::NEG_INFINITY;
    for c in &completions {
        latencies.record(c.latency());
        first_arrival = first_arrival.min(c.arrived);
        last_finish = last_finish.max(c.finished);
        let (want_answer, want_p) = &oracle[c.id as usize % items.len()];
        match &c.result {
            Ok(Reply::Scored { answer, p_positive }) => {
                if answer != want_answer || p_positive.to_bits() != want_p.to_bits() {
                    parity = false;
                    println!(
                        "PARITY FAIL req {}: served ({answer:?}, {p_positive}) vs offline ({want_answer:?}, {want_p})",
                        c.id
                    );
                }
            }
            other => {
                parity = false;
                println!("PARITY FAIL req {}: unexpected result {other:?}", c.id);
            }
        }
    }
    let complete = completions.len() == n_requests;
    let sustained_qps = completions.len() as f64 / (last_finish - first_arrival).max(1e-9);
    let summary = latencies.summary();
    let server_stats = server.stats();
    let (audit, prefix) = server.engine_mut().audit();
    let audit_clean = audit.is_ok();
    if let Err(e) = &audit {
        println!("LEAK AUDIT FAIL: {e}");
    }
    server.shutdown();
    drop(guard);
    let trace = tracer.finish();
    write_result("serve_trace.jsonl", &trace.to_jsonl());

    println!(
        "served {}/{n_requests} in {wall:.2}s wall: p50 {:.1} ms, p99 {:.1} ms, sustained {sustained_qps:.1} QPS",
        completions.len(),
        summary.p50 * 1e3,
        summary.p99 * 1e3,
    );
    println!(
        "prefix pool: {} hits / {} misses / {} inserts / {} evictions",
        prefix.hits, prefix.misses, prefix.inserts, prefix.evictions
    );

    // ---- Deterministic simulation gate: same seed, byte-identical trace ----
    let sim_requests = if quick { 8 } else { 24 };
    let sim_run = || {
        let clock = ManualClock::new();
        let sim_tracer = Tracer::with_clock(clock.clock());
        let sim_guard = sim_tracer.install("serve_sim");
        // Inline engine: the whole simulation runs on this thread under
        // the manual clock, so the trace is a pure function of the seed.
        let engine = ZiGongEngine::new(
            model.spec(),
            EngineConfig {
                workers: 1,
                prefix_tokens: 24,
                pool_capacity: 8,
                ..EngineConfig::default()
            },
        );
        let cfg = ServeConfig {
            queue_capacity: sim_requests,
            max_batch: 4,
            default_timeout: None,
        };
        let mut server = Server::new(engine, cfg, clock.clock());
        let traffic: Vec<(f64, Request)> = poisson_arrivals(SEED, 200.0, sim_requests)
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, score_request(&items, i)))
            .collect();
        let out = drive(&mut server, &clock, &traffic, 0.01);
        let completed = out.completions.len();
        server.shutdown();
        drop(sim_guard);
        (completed, sim_tracer.finish().to_jsonl())
    };
    let (sim_completed_a, trace_a) = sim_run();
    let (_, trace_b) = sim_run();
    let trace_deterministic = trace_a == trace_b;
    println!(
        "simulation: {sim_completed_a}/{sim_requests} served, trace {} bytes, deterministic: {trace_deterministic}",
        trace_a.len()
    );

    let p99_ok = summary.p99 <= p99_ceiling;
    // The vendored `json!` macro takes flat maps only; nest via values.
    let latency = serde_json::json!({
        "n": summary.n,
        "p50_s": summary.p50,
        "p99_s": summary.p99,
        "mean_s": summary.mean,
        "max_s": summary.max,
    });
    let server_obj = serde_json::json!({
        "admitted": server_stats.admitted,
        "completed": server_stats.completed,
        "rejected": server_stats.rejected,
        "timed_out": server_stats.timed_out,
        "batches": server_stats.batches,
    });
    let prefix_obj = serde_json::json!({
        "hits": prefix.hits,
        "misses": prefix.misses,
        "inserts": prefix.inserts,
        "evictions": prefix.evictions,
    });
    let sim_obj = serde_json::json!({
        "requests": sim_requests,
        "completed": sim_completed_a,
        "trace_bytes": trace_a.len(),
    });
    let out = serde_json::to_string_pretty(&serde_json::json!({
        "seed": SEED,
        "workers": workers,
        "requests": n_requests,
        "offered_rate_qps": rate,
        "wall_seconds": wall,
        "latency": latency,
        "sustained_qps": sustained_qps,
        "server": server_obj,
        "prefix_pool": prefix_obj,
        "bitwise_parity": parity && complete,
        "leak_audit_clean": audit_clean,
        "trace_deterministic": trace_deterministic,
        "p99_ceiling_s": p99_ceiling,
        "p99_within_ceiling": p99_ok,
        "sim": sim_obj,
    }))
    .expect("benchmark serializes");
    write_result("serve_load.json", &out);

    let mut failed = false;
    if !(parity && complete) {
        println!("FAIL: served results are not bit-identical to the offline evaluator");
        failed = true;
    }
    if !trace_deterministic {
        println!("FAIL: seeded simulation traces are not byte-identical");
        failed = true;
    }
    if !audit_clean {
        println!("FAIL: prefix-lease leak audit");
        failed = true;
    }
    if !p99_ok {
        println!(
            "FAIL: p99 {:.2}s exceeds the {p99_ceiling:.0}s sanity ceiling",
            summary.p99
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_load gates passed: parity, determinism, leak audit, p99 ceiling");
}
