//! Serving load benchmark: drives the zg-serve continuous-batching
//! server with open-loop Poisson traffic (seeded) over **mixed-template
//! scoring requests** — several prompt preambles crossed with distinct
//! borrower items, tagged with template keys so prefix-aware grouping
//! and replica affinity engage — and gates before writing
//! `results/serve_load.json`:
//!
//! 1. **bitwise parity** — every served `(answer, p)` is exact-`f64`
//!    equal to the offline `ZiGongModel::evaluate_item` on the same
//!    (template, item) combination, LCP prefix reuse and batching
//!    included — across the main run, a no-reuse baseline, and an
//!    eviction-pressure run;
//! 2. **prefix-hit-token rate** — the radix pool must serve at least
//!    half of all presented prompt tokens from cache;
//! 3. **latency** — p99 within an absolute ceiling, and no worse than
//!    the no-reuse baseline (pool budget 1) with 10% slack;
//! 4. **eviction pressure** — a budget far below the working set must
//!    evict while keeping parity and a clean leak audit;
//! 5. **simulation determinism** — two deterministic-clock runs with
//!    the same seed produce byte-identical zg-trace JSONL;
//! 6. **ops-plane overhead** — closed-loop wall time with the live ops
//!    plane enabled stays within 5% of the untraced run (best-of reps),
//!    with served scores bit-identical on vs off, written to
//!    `results/serve_ops.json`;
//! 7. **SLO-breach smoke** — an overloaded deterministic sim fires the
//!    deadline-miss burn-rate alert and dumps a complete,
//!    byte-reproducible post-mortem bundle.
//!
//! Exits non-zero if any gate fails, so CI can run `serve_load --quick`
//! as a smoke test.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_bench::{quick_mode, write_result};
use zg_model::{CausalLm, ModelConfig, PrefixStats};
use zg_serve::{
    drive, poisson_arrivals, poisson_traffic, EchoEngine, EngineConfig, LatencyRecorder,
    LatencySummary, OpsConfig, Reply, Request, ServeConfig, Server, ServerStats, Slo, SloObjective,
    TimedEngine, ZiGongEngine,
};
use zg_trace::{ManualClock, Tracer};
use zg_zigong::{eval_items, train_tokenizer, EvalItem, ZiGongModel, ANSWER_TOKENS, SCORE_RESERVE};

const SEED: u64 = 0x5E4E;

/// Prompt preambles standing in for distinct serving templates (e.g.
/// different product flows rendering the same borrower record). Quick
/// mode uses the first two, full mode all four.
const PREAMBLES: [&str; 4] = [
    "",
    "You are a senior credit officer. Review this application carefully.\n\n",
    "Branch escalation queue: a second opinion is requested on this applicant.\n\n",
    "Portfolio backfill re-score. Apply the current lending policy.\n\n",
];

/// One (template, item) combination with its offline oracle.
struct Combo {
    template: u64,
    prompt: String,
    negative: String,
    positive: String,
    oracle_answer: String,
    oracle_p: f64,
}

/// The benchmark model: miniature geometry, trained BPE tokenizer, and
/// a prompt budget wide enough that every preamble + rendered credit
/// prompt fits untruncated — so the load runs exercise the shared
/// prefill + radix-pool path, not the truncation fallback.
fn bench_model(examples: &[zg_instruct::InstructExample]) -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let tokenizer = train_tokenizer(examples, 768);
    let mut cfg = ModelConfig::mistral_miniature(tokenizer.vocab_size());
    cfg.max_seq_len = 768;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, tokenizer, 768, "serve-bench")
}

fn score_request(combos: &[Combo], i: usize) -> Request {
    let c = &combos[i % combos.len()];
    Request::score(c.prompt.clone(), c.negative.clone(), c.positive.clone())
        .with_template(c.template)
}

struct LoadOutcome {
    served: usize,
    wall: f64,
    sustained_qps: f64,
    summary: LatencySummary,
    parity: bool,
    complete: bool,
    audit_clean: bool,
    prefix: PrefixStats,
    server: ServerStats,
}

/// One wall-clock load run: open-loop Poisson arrivals over the combo
/// cycle, parity-checked against the oracle, leak-audited at the end.
fn run_load(
    model: &ZiGongModel,
    combos: &[Combo],
    workers: usize,
    pool_budget_tokens: usize,
    n_requests: usize,
    rate: f64,
) -> LoadOutcome {
    let engine = ZiGongEngine::new(
        model.spec(),
        EngineConfig {
            workers,
            pool_budget_tokens,
            ..EngineConfig::default()
        },
    );
    let max_batch = 2 * workers.max(1);
    let cfg = ServeConfig {
        queue_capacity: n_requests,
        max_batch,
        default_timeout: None,
        // Scan one extra batch deep for same-template pulls.
        reorder_window: 2 * max_batch,
    };
    let mut server = Server::new(engine, cfg, zg_trace::wall_clock());
    let arrivals = poisson_arrivals(SEED, rate, n_requests);

    let t0 = Instant::now();
    let mut submitted = 0usize;
    let mut completions = Vec::with_capacity(n_requests);
    while submitted < n_requests || server.queue_len() > 0 {
        let now = t0.elapsed().as_secs_f64();
        while submitted < n_requests && arrivals[submitted] <= now {
            server
                .submit(score_request(combos, submitted))
                .expect("queue sized to the full load");
            submitted += 1;
        }
        if server.queue_len() > 0 {
            completions.extend(server.tick());
        } else if submitted < n_requests {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    // Parity check: every reply must match its combo's oracle bit-for-bit.
    let mut parity = true;
    let mut latencies = LatencyRecorder::new();
    let mut first_arrival = f64::INFINITY;
    let mut last_finish = f64::NEG_INFINITY;
    for c in &completions {
        latencies.record(c.latency());
        first_arrival = first_arrival.min(c.arrived);
        last_finish = last_finish.max(c.finished);
        let combo = &combos[c.id as usize % combos.len()];
        match &c.result {
            Ok(Reply::Scored { answer, p_positive }) => {
                if answer != &combo.oracle_answer
                    || p_positive.to_bits() != combo.oracle_p.to_bits()
                {
                    parity = false;
                    println!(
                        "PARITY FAIL req {}: served ({answer:?}, {p_positive}) vs offline ({:?}, {})",
                        c.id, combo.oracle_answer, combo.oracle_p
                    );
                }
            }
            other => {
                parity = false;
                println!("PARITY FAIL req {}: unexpected result {other:?}", c.id);
            }
        }
    }
    let complete = completions.len() == n_requests;
    let sustained_qps = completions.len() as f64 / (last_finish - first_arrival).max(1e-9);
    let summary = latencies.summary();
    let server_stats = server.stats();
    let (audit, prefix) = server.engine_mut().audit();
    let audit_clean = audit.is_ok();
    if let Err(e) = &audit {
        println!("LEAK AUDIT FAIL: {e}");
    }
    server.shutdown();
    LoadOutcome {
        served: completions.len(),
        wall,
        sustained_qps,
        summary,
        parity,
        complete,
        audit_clean,
        prefix,
        server: server_stats,
    }
}

/// A representative ops-plane config for the overhead runs: windowed
/// series plus one latency SLO so the observed side pays the full
/// per-window evaluation cost, not just the recording cost.
fn ops_bench_config() -> OpsConfig {
    OpsConfig {
        slos: vec![Slo {
            name: "p99-latency".into(),
            objective: SloObjective::LatencyAbove(0.25),
            budget: 0.01,
            short_windows: 4,
            long_windows: 16,
            burn_threshold: 2.0,
        }],
        ..OpsConfig::default()
    }
}

/// One closed-loop wall-clock run for overhead measurement: the whole
/// load is submitted up front and ticked to completion, so the wall
/// time is pure serve work (no open-loop arrival waits diluting the
/// ops-plane cost). Returns the wall time and the served `(answer, p)`
/// pairs in request order.
fn timed_closed_loop(
    model: &ZiGongModel,
    combos: &[Combo],
    workers: usize,
    n_requests: usize,
    ops: bool,
) -> (f64, Vec<(String, f64)>) {
    let engine = ZiGongEngine::new(
        model.spec(),
        EngineConfig {
            workers,
            pool_budget_tokens: 1 << 16,
            ..EngineConfig::default()
        },
    );
    let max_batch = 2 * workers.max(1);
    let cfg = ServeConfig {
        queue_capacity: n_requests,
        max_batch,
        default_timeout: None,
        reorder_window: 2 * max_batch,
    };
    let mut server = Server::new(engine, cfg, zg_trace::wall_clock());
    if ops {
        server.enable_ops(ops_bench_config());
    }
    let t0 = Instant::now();
    for i in 0..n_requests {
        server
            .submit(score_request(combos, i))
            .expect("queue sized to the full load");
    }
    let done = server.run_until_idle();
    let wall = t0.elapsed().as_secs_f64();
    let mut scores = vec![(String::new(), 0.0); n_requests];
    for c in done {
        match c.result {
            Ok(Reply::Scored { answer, p_positive }) => {
                scores[c.id as usize] = (answer, p_positive);
            }
            other => panic!("closed-loop run produced unexpected result: {other:?}"),
        }
    }
    server.shutdown();
    (wall, scores)
}

struct SloSmoke {
    deadline_misses: u64,
    alerts: usize,
    postmortems: usize,
    deterministic: bool,
    postmortem: String,
    exposition: String,
}

/// Deterministic SLO-breach smoke on the manual clock: overload a timed
/// echo engine (one-request batches at 100 ms against 80 ms deadlines)
/// until the deadline-miss burn-rate alert fires, then rerun and check
/// the alert stream, post-mortem bundle, and exposition are
/// byte-identical.
fn ops_slo_smoke() -> SloSmoke {
    let run = || {
        let clock = ManualClock::new();
        let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), 0.1);
        let cfg = ServeConfig {
            queue_capacity: 64,
            max_batch: 1,
            default_timeout: Some(0.08),
            reorder_window: 0,
        };
        let mut server = Server::new(engine, cfg, clock.clock());
        server.enable_ops(OpsConfig {
            window_secs: 0.5,
            recorder_capacity: 32,
            expo_windows: 4,
            retain_windows: 16,
            slos: vec![Slo {
                name: "deadline-miss".into(),
                objective: SloObjective::DeadlineMiss,
                budget: 0.05,
                short_windows: 1,
                long_windows: 2,
                burn_threshold: 1.0,
            }],
        });
        let traffic = poisson_traffic(SEED, 60.0, 60, |i| Request::generate(format!("p{i}"), 1));
        let out = drive(&mut server, &clock, &traffic, 0.02);
        let now = clock.now();
        let ops = server.ops_mut().expect("ops enabled");
        ops.finish(now);
        let alerts = ops.alerts().len();
        let pms: Vec<String> = ops.take_postmortems().iter().map(|p| p.render()).collect();
        let expo = ops.exposition();
        server.shutdown();
        (out.stats.timed_out, alerts, pms, expo)
    };
    let (missed, alerts, pms, expo) = run();
    let (missed2, alerts2, pms2, expo2) = run();
    let deterministic = missed == missed2 && alerts == alerts2 && pms == pms2 && expo == expo2;
    SloSmoke {
        deadline_misses: missed,
        alerts,
        postmortems: pms.len(),
        deterministic,
        postmortem: pms.into_iter().next().unwrap_or_default(),
        exposition: expo,
    }
}

fn prefix_json(p: &PrefixStats) -> serde_json::Value {
    serde_json::json!({
        "hits": p.hits,
        "misses": p.misses,
        "hit_tokens": p.hit_tokens,
        "lookup_tokens": p.lookup_tokens,
        "hit_token_rate": p.hit_token_rate(),
        "inserts": p.inserts,
        "evictions": p.evictions,
        "resident_tokens": p.resident_tokens,
    })
}

fn load_json(o: &LoadOutcome, pool_budget_tokens: usize) -> serde_json::Value {
    let latency = serde_json::json!({
        "n": o.summary.n,
        "p50_s": o.summary.p50,
        "p99_s": o.summary.p99,
        "mean_s": o.summary.mean,
        "max_s": o.summary.max,
    });
    serde_json::json!({
        "pool_budget_tokens": pool_budget_tokens,
        "served": o.served,
        "wall_seconds": o.wall,
        "sustained_qps": o.sustained_qps,
        "latency": latency,
        "prefix_pool": prefix_json(&o.prefix),
        "bitwise_parity": o.parity && o.complete,
        "leak_audit_clean": o.audit_clean,
        "batches": o.server.batches,
    })
}

fn main() {
    let quick = quick_mode();
    let (n_requests, rate, n_items, n_templates) = if quick {
        (24, 40.0, 6, 2)
    } else {
        (160, 80.0, 8, 4)
    };
    let workers = zg_tensor::available_threads().clamp(1, 4);
    let p99_ceiling = if quick { 0.1 } else { 0.25 };
    let baseline_slack = 1.10;
    let min_hit_token_rate = 0.5;
    // Generous budget for the main run (holds the whole combo working
    // set), one token for the no-reuse baseline, and a squeeze far below
    // one template's prompts for the eviction-pressure run.
    let main_budget = 1 << 16;
    let pressure_budget = 768;

    println!("== serve_load: continuous-batching server benchmark ==");
    println!(
        "requests={n_requests} offered_rate={rate}/s workers={workers} \
         templates={n_templates} items={n_items} seed={SEED:#x}"
    );

    // Model + items (same recipe as the inference benchmark).
    let ds = zg_data::german(64, 0x2F);
    let (train, test) = ds.split(0.5);
    let train_examples: Vec<_> = train
        .iter()
        .take(40)
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    let mut model = bench_model(&train_examples);
    let capped: Vec<_> = test.iter().copied().take(n_items).collect();
    let items = eval_items(&ds, &capped);

    // Mixed-template combos with per-combo offline oracles.
    let mut combos = Vec::with_capacity(n_templates * items.len());
    for (t, pre) in PREAMBLES.iter().take(n_templates).enumerate() {
        for it in &items {
            let mut example = it.example.clone();
            example.prompt = format!("{pre}{}", example.prompt);
            let item = EvalItem {
                record: it.record,
                example,
            };
            // The shared prefill path must engage: both prompt budgets
            // see the identical untruncated token sequence.
            let p_ans = model.prompt_ids(&item.example.prompt, ANSWER_TOKENS);
            assert_eq!(
                p_ans,
                model.prompt_ids(&item.example.prompt, SCORE_RESERVE),
                "template {t}: prompt must fit untruncated (shared path)"
            );
            let (oracle_answer, oracle_p) = model.evaluate_item(&item);
            combos.push(Combo {
                template: t as u64,
                prompt: item.example.prompt,
                negative: item.example.candidates[0].clone(),
                positive: item.example.candidates[1].clone(),
                oracle_answer,
                oracle_p,
            });
        }
    }
    // Interleave templates across consecutive requests so grouping (not
    // accidental adjacency) is what reassembles same-template batches:
    // combo order is (item-major, template-minor).
    combos.sort_by_key(|c| c.prompt.len());

    // ---- Main radix-pool load run (traced) ----
    let tracer = Tracer::with_clock(zg_trace::wall_clock());
    let guard = tracer.install("serve_load");
    let main_run = run_load(&model, &combos, workers, main_budget, n_requests, rate);
    drop(guard);
    let trace = tracer.finish();
    write_result("serve_trace.jsonl", &trace.to_jsonl());
    println!(
        "radix: served {}/{n_requests} in {:.2}s wall: p50 {:.1} ms, p99 {:.1} ms, sustained {:.1} QPS",
        main_run.served,
        main_run.wall,
        main_run.summary.p50 * 1e3,
        main_run.summary.p99 * 1e3,
        main_run.sustained_qps,
    );
    println!(
        "radix pool: {} hits / {} misses / {} inserts / {} evictions, hit-token rate {:.1}% ({}/{} tokens)",
        main_run.prefix.hits,
        main_run.prefix.misses,
        main_run.prefix.inserts,
        main_run.prefix.evictions,
        100.0 * main_run.prefix.hit_token_rate(),
        main_run.prefix.hit_tokens,
        main_run.prefix.lookup_tokens,
    );

    // ---- No-reuse baseline: pool budget 1 token, everything prefills ----
    let baseline = run_load(&model, &combos, workers, 1, n_requests, rate);
    println!(
        "baseline (no reuse): p50 {:.1} ms, p99 {:.1} ms, hit-token rate {:.1}%",
        baseline.summary.p50 * 1e3,
        baseline.summary.p99 * 1e3,
        100.0 * baseline.prefix.hit_token_rate(),
    );

    // ---- Eviction pressure: budget far below the working set ----
    let pressure = run_load(&model, &combos, workers, pressure_budget, n_requests, rate);
    println!(
        "pressure (budget {pressure_budget}): p99 {:.1} ms, {} evictions, resident {} tokens, audit clean: {}",
        pressure.summary.p99 * 1e3,
        pressure.prefix.evictions,
        pressure.prefix.resident_tokens,
        pressure.audit_clean,
    );

    // ---- Deterministic simulation gate: same seed, byte-identical trace ----
    let sim_requests = if quick { 8 } else { 24 };
    let sim_run = || {
        let clock = ManualClock::new();
        let sim_tracer = Tracer::with_clock(clock.clock());
        let sim_guard = sim_tracer.install("serve_sim");
        // Inline engine: the whole simulation runs on this thread under
        // the manual clock, so the trace is a pure function of the seed.
        let engine = ZiGongEngine::new(
            model.spec(),
            EngineConfig {
                workers: 1,
                pool_budget_tokens: main_budget,
                ..EngineConfig::default()
            },
        );
        let cfg = ServeConfig {
            queue_capacity: sim_requests,
            max_batch: 4,
            default_timeout: None,
            reorder_window: 4,
        };
        let mut server = Server::new(engine, cfg, clock.clock());
        let traffic: Vec<(f64, Request)> = poisson_arrivals(SEED, 200.0, sim_requests)
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, score_request(&combos, i)))
            .collect();
        let out = drive(&mut server, &clock, &traffic, 0.01);
        let completed = out.completions.len();
        server.shutdown();
        drop(sim_guard);
        (completed, sim_tracer.finish().to_jsonl())
    };
    let (sim_completed_a, trace_a) = sim_run();
    let (_, trace_b) = sim_run();
    let trace_deterministic = trace_a == trace_b;
    println!(
        "simulation: {sim_completed_a}/{sim_requests} served, trace {} bytes, deterministic: {trace_deterministic}",
        trace_a.len()
    );

    // ---- Ops-plane stage: overhead gate + SLO-breach smoke ----
    println!("== serve_ops: live ops plane gates ==");
    let ops_reps = if quick { 2 } else { 3 };
    let ops_requests = if quick { 32 } else { 96 };
    let ops_overhead_ceiling = 0.05;
    let mut ops_wall_off = f64::INFINITY;
    let mut ops_wall_on = f64::INFINITY;
    let mut ops_parity = true;
    // Alternate untraced/observed reps so drift (cache warmth, CPU
    // frequency) hits both sides; gate on best-of to shed scheduler
    // noise, same as the tracer's own overhead benchmark.
    for _ in 0..ops_reps {
        let (w_off, s_off) = timed_closed_loop(&model, &combos, workers, ops_requests, false);
        let (w_on, s_on) = timed_closed_loop(&model, &combos, workers, ops_requests, true);
        ops_wall_off = ops_wall_off.min(w_off);
        ops_wall_on = ops_wall_on.min(w_on);
        ops_parity &= s_off
            .iter()
            .zip(&s_on)
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
    }
    let ops_overhead = (ops_wall_on - ops_wall_off) / ops_wall_off;
    let ops_overhead_ok = ops_overhead <= ops_overhead_ceiling;
    println!(
        "ops overhead: best-of-{ops_reps} untraced {:.1} ms vs observed {:.1} ms — {:+.2}% (ceiling {:.0}%), score parity: {ops_parity}",
        ops_wall_off * 1e3,
        ops_wall_on * 1e3,
        100.0 * ops_overhead,
        100.0 * ops_overhead_ceiling,
    );

    let smoke = ops_slo_smoke();
    println!(
        "ops SLO smoke: {} deadline misses, {} alerts, {} post-mortems, deterministic: {}",
        smoke.deadline_misses, smoke.alerts, smoke.postmortems, smoke.deterministic,
    );
    let smoke_ok = smoke.deadline_misses > 0
        && smoke.alerts > 0
        && smoke.postmortems == smoke.alerts
        && smoke.deterministic
        && smoke.postmortem.contains("post-mortem slo=deadline-miss")
        && smoke.postmortem.contains("## flight recorder")
        && smoke.postmortem.contains("\"outcome\":\"expired\"")
        && smoke.postmortem.contains("## exposition");
    write_result("serve_ops_postmortem.txt", &smoke.postmortem);
    write_result("serve_ops_expo.txt", &smoke.exposition);

    let smoke_obj = serde_json::json!({
        "deadline_misses": smoke.deadline_misses,
        "alerts": smoke.alerts,
        "postmortems": smoke.postmortems,
        "deterministic": smoke.deterministic,
        "bundle_complete": smoke_ok,
    });
    let ops_out = serde_json::to_string_pretty(&serde_json::json!({
        "seed": SEED,
        "workers": workers,
        "requests": ops_requests,
        "reps": ops_reps,
        "wall_untraced_s": ops_wall_off,
        "wall_observed_s": ops_wall_on,
        "overhead_frac": ops_overhead,
        "overhead_ceiling": ops_overhead_ceiling,
        "overhead_ok": ops_overhead_ok,
        "score_parity_on_vs_off": ops_parity,
        "slo_smoke": smoke_obj,
    }))
    .expect("benchmark serializes");
    write_result("serve_ops.json", &ops_out);

    let parity_all = [&main_run, &baseline, &pressure]
        .iter()
        .all(|r| r.parity && r.complete);
    let audits_clean = [&main_run, &baseline, &pressure]
        .iter()
        .all(|r| r.audit_clean);
    let hit_rate_ok = main_run.prefix.hit_token_rate() >= min_hit_token_rate;
    let p99_ok = main_run.summary.p99 <= p99_ceiling;
    let beats_baseline = main_run.summary.p99 <= baseline.summary.p99 * baseline_slack;
    let pressure_evicts = pressure.prefix.evictions > 0;

    let sim_obj = serde_json::json!({
        "requests": sim_requests,
        "completed": sim_completed_a,
        "trace_bytes": trace_a.len(),
    });
    let out = serde_json::to_string_pretty(&serde_json::json!({
        "seed": SEED,
        "workers": workers,
        "requests": n_requests,
        "offered_rate_qps": rate,
        "templates": n_templates,
        "items": n_items,
        "radix": load_json(&main_run, main_budget),
        "baseline_no_reuse": load_json(&baseline, 1),
        "eviction_pressure": load_json(&pressure, pressure_budget),
        "bitwise_parity": parity_all,
        "leak_audit_clean": audits_clean,
        "trace_deterministic": trace_deterministic,
        "min_hit_token_rate": min_hit_token_rate,
        "hit_token_rate_ok": hit_rate_ok,
        "p99_ceiling_s": p99_ceiling,
        "p99_within_ceiling": p99_ok,
        "baseline_slack": baseline_slack,
        "p99_beats_baseline": beats_baseline,
        "pressure_evictions_observed": pressure_evicts,
        "sim": sim_obj,
    }))
    .expect("benchmark serializes");
    write_result("serve_load.json", &out);

    let mut failed = false;
    if !parity_all {
        println!("FAIL: served results are not bit-identical to the offline evaluator");
        failed = true;
    }
    if !trace_deterministic {
        println!("FAIL: seeded simulation traces are not byte-identical");
        failed = true;
    }
    if !audits_clean {
        println!("FAIL: prefix-lease leak audit");
        failed = true;
    }
    if !hit_rate_ok {
        println!(
            "FAIL: prefix hit-token rate {:.1}% below the {:.0}% floor",
            100.0 * main_run.prefix.hit_token_rate(),
            100.0 * min_hit_token_rate
        );
        failed = true;
    }
    if !p99_ok {
        println!(
            "FAIL: p99 {:.3}s exceeds the {p99_ceiling:.3}s ceiling",
            main_run.summary.p99
        );
        failed = true;
    }
    if !beats_baseline {
        println!(
            "FAIL: radix p99 {:.3}s worse than no-reuse baseline {:.3}s (+{:.0}% slack)",
            main_run.summary.p99,
            baseline.summary.p99,
            100.0 * (baseline_slack - 1.0)
        );
        failed = true;
    }
    if !pressure_evicts {
        println!("FAIL: eviction-pressure run never evicted (budget {pressure_budget})");
        failed = true;
    }
    if !ops_parity {
        println!("FAIL: ops plane changed served scores (must be bit-transparent)");
        failed = true;
    }
    if !ops_overhead_ok {
        println!(
            "FAIL: ops-plane overhead {:.2}% exceeds the {:.0}% ceiling",
            100.0 * ops_overhead,
            100.0 * ops_overhead_ceiling
        );
        failed = true;
    }
    if !smoke_ok {
        println!(
            "FAIL: SLO-breach smoke (alert must fire with a complete, deterministic post-mortem)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "serve_load gates passed: parity, determinism, leak audit, hit rate, p99 ceiling, baseline, eviction pressure, ops overhead, SLO smoke"
    );
}
