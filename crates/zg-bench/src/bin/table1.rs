//! Regenerates **Table 1**: the instruction templates for every task type
//! evaluated in the financial-credit benchmark, rendered on a concrete
//! sample each.

use zg_bench::write_result;
use zg_data::{german, income_dataset, sentiment_dataset};
use zg_instruct::{render_classification, render_income, render_sentiment};

fn main() {
    let mut out = String::new();
    out.push_str("Table 1: Templates for the different tasks in financial credit\n");
    out.push_str("================================================================\n\n");

    out.push_str("-- Discriminative / Sentiment Analysis --\n");
    out.push_str("{sentence}\nQuestion: what is the sentiment? Answer: {good/neutral/bad}\n\n");
    let s = sentiment_dataset(1, 7);
    let ex = render_sentiment(&s[0], 0);
    out.push_str(&format!("Example:\n{} {}\n\n", ex.prompt, ex.answer));

    out.push_str("-- Discriminative / Classification --\n");
    out.push_str("{sentence}\nQuestion: {question}? Answer: {Yes/No}\n\n");
    let ds = german(3, 7);
    let ex = render_classification(&ds, &ds.records[0]);
    out.push_str(&format!(
        "Example (German credit scoring):\n{} {}\n\n",
        ex.prompt, ex.answer
    ));

    out.push_str("-- Generative / QA --\n");
    out.push_str("{user profile}\nQuestion: what is the user's expected income level, low, medium or high? Answer: {low/medium/high}\n\n");
    let recs = income_dataset(1, 7);
    let ex = render_income(&recs[0]);
    out.push_str(&format!("Example:\n{} {}\n", ex.prompt, ex.answer));

    print!("{out}");
    write_result("table1.txt", &out);
}
