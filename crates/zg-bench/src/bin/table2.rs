//! Regenerates **Table 2**: Acc / F1 / Miss of every model on the five
//! CALM-style datasets.
//!
//! Columns:
//! - External LLMs (ChatGPT … CALM): **calibrated replay** of the paper's
//!   published operating points on our synthetic test sets (DESIGN.md §2).
//! - Majority / Random / Expert-LR / Base zero-shot / SFT-random /
//!   ZiGong: **measured end-to-end** on this machine.
//!
//! `--quick` runs a smoke-scale version; `--seed N` changes the pipeline
//! seed.

use zg_bench::{arg_value, quick_mode, write_result};
use zg_zigong::{render_table2, run_table2, Table2Options, ZiGongConfig};

fn main() {
    let seed: u64 = arg_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_250_706);
    let mut opts = Table2Options {
        seed,
        train_cap: 200,
        test_cap: 100,
        config: {
            let mut cfg = ZiGongConfig::miniature(seed);
            // The headline run uses the slightly wider model variant.
            cfg.model = zg_model::ModelConfig::mistral_small(cfg.vocab_size);
            cfg
        },
        ..Default::default()
    };
    if quick_mode() {
        opts.train_cap = 60;
        opts.test_cap = 40;
        opts.config.train.epochs = 1;
        opts.config.train.pretrain_epochs = 2;
        opts.config.model = ZiGongConfig::miniature(seed).model;
        opts.config.vocab_size = 400;
        opts.config.model.vocab_size = 400;
    }
    eprintln!(
        "Running Table 2 benchmark (seed={seed}, train_cap={}, test_cap={}, quick={})…",
        opts.train_cap,
        opts.test_cap,
        quick_mode()
    );
    let t0 = std::time::Instant::now();
    let table = run_table2(&opts);
    let mut out = String::new();
    out.push_str("Table 2: LLMs and expert systems on the financial-credit benchmark\n");
    out.push_str("(replay = calibrated to the paper's published numbers; measured = run here)\n");
    out.push_str("===================================================================\n\n");
    out.push_str(&render_table2(&table));
    if let Some(report) = &table.train_report {
        out.push_str(&format!(
            "\nZiGong training: {} optimizer steps, first-step loss {:.3}, final loss {:.3}\n",
            report.steps,
            report.losses.first().copied().unwrap_or(f32::NAN),
            report.final_loss()
        ));
    }
    out.push_str(&format!(
        "\nWall time: {:.1}s\n",
        t0.elapsed().as_secs_f64()
    ));
    print!("{out}");
    write_result("table2.txt", &out);
    write_result("table2.json", &table.to_json());
}
