//! Regenerates **Table 3**: the ZiGong configuration — the paper's
//! published reference (Mistral 7B + LoRA) side by side with the CPU
//! miniature actually trained by this reproduction.

use zg_bench::write_result;
use zg_zigong::ZiGongConfig;

fn render(cfg: &ZiGongConfig, title: &str) -> String {
    let mut o = String::new();
    o.push_str(&format!("### {title}\n"));
    o.push_str(&format!("Model Name          : {}\n", cfg.name));
    o.push_str("Base Model          : Mistral-style decoder-only transformer\n");
    o.push_str("Fine-tuning Method  : LoRA (Low-Rank Adaptation)\n");
    o.push_str("Task Type           : Text Generation & Classification\n");
    o.push_str(&format!(
        "Context Length      : {} tokens\n",
        cfg.model.max_seq_len
    ));
    o.push_str(&format!("Hidden Dimension    : {}\n", cfg.model.d_model));
    o.push_str(&format!(
        "Attention Heads     : {} (kv heads: {})\n",
        cfg.model.n_heads, cfg.model.n_kv_heads
    ));
    o.push_str(&format!("Layers              : {}\n", cfg.model.n_layers));
    o.push_str("Activation Function : SiLU (SwiGLU MLP)\n");
    o.push_str(&format!(
        "Learning Rate       : {:.0e} - {:.0e}\n",
        cfg.train.min_lr, cfg.train.max_lr
    ));
    o.push_str(&format!(
        "Batch Size          : {} (with gradient accumulation: {})\n",
        cfg.train.batch_size * cfg.train.grad_accum,
        cfg.train.grad_accum
    ));
    o.push_str("Optimizer           : AdamW (beta1 = 0.9, beta2 = 0.999)\n");
    o.push_str("LR Schedule         : Cosine Decay (with warmup)\n");
    o.push_str(&format!(
        "Max Sequence Length : {} tokens\n",
        cfg.train.max_seq_len
    ));
    o.push_str(&format!("LoRA Rank           : {}\n", cfg.lora.rank));
    o.push_str(&format!("LoRA Alpha          : {}\n", cfg.lora.alpha));
    o.push_str(&format!("Target Modules      : {:?}\n", cfg.lora.targets));
    o.push_str(&format!(
        "Dense Parameters    : {}\n\n",
        cfg.model.param_count()
    ));
    o
}

fn main() {
    let mut out = String::new();
    out.push_str("Table 3: Configuration Details of ZiGong Model\n");
    out.push_str("==============================================\n\n");
    out.push_str(&render(
        &ZiGongConfig::paper_reference(),
        "Paper reference (Mistral 7B)",
    ));
    out.push_str(&render(
        &ZiGongConfig::miniature(0),
        "This reproduction (CPU miniature; see DESIGN.md for the scaling argument)",
    ));
    out.push_str("Full JSON of the miniature configuration:\n");
    out.push_str(
        &serde_json::to_string_pretty(&ZiGongConfig::miniature(0)).expect("config serializes"),
    );
    out.push('\n');
    print!("{out}");
    write_result("table3.txt", &out);
}
