//! Trace capture, overhead audit, and report rendering for the `zg-trace`
//! observability layer.
//!
//! Two modes:
//!
//! - `trace_report --report <trace.jsonl>`: parse an existing trace and
//!   print its self-time report (span tree, per-phase totals, counters).
//! - `trace_report [--quick]` (capture mode): run the SFT + evaluation
//!   workload once untraced and once under a wall-clock tracer, then
//!
//!   1. check the traced run's losses, final weights, and eval metrics
//!      are **bit-identical** to the untraced run (observation must be
//!      behaviorally free),
//!   2. check tracing overhead stays under the pinned threshold,
//!   3. write `results/zigong_trace.jsonl` (the trace),
//!      `results/zigong_trace_chrome.json` (chrome://tracing view),
//!      `results/trace_report.txt` (rendered report), and
//!      `results/trace_overhead.json` (the overhead audit).
//!
//! The binary exits nonzero on a parity break or an overhead breach, so
//! CI can run `trace_report --quick` as a regression gate.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_bench::{arg_value, quick_mode, write_result};
use zg_model::{CausalLm, ModelConfig};
use zg_trace::{render_report, Trace, Tracer};
use zg_zigong::{
    eval_items, evaluate_zigong, tokenize_all, train_sft, train_tokenizer, CellResult, TrainConfig,
    TrainOrder, ZiGongModel,
};

/// Pinned ceiling on tracing overhead: traced wall time may exceed the
/// untraced baseline by at most this fraction (best-of-reps vs
/// best-of-reps). Spans fire a handful of times per micro-batch, so the
/// real cost is far below this; the margin absorbs scheduler noise.
const OVERHEAD_THRESHOLD_FRAC: f64 = 0.05;

/// Everything the workload computes — compared bitwise between the
/// traced and untraced runs.
struct Outputs {
    losses: Vec<f64>,
    weights: Vec<Vec<f32>>,
    cell: CellResult,
}

fn workload(samples: &[zg_zigong::Sample], vocab: usize, quick: bool) -> Outputs {
    let mut rng = StdRng::seed_from_u64(42);
    let mut mcfg = ModelConfig::mistral_miniature(vocab);
    mcfg.n_layers = 1;
    mcfg.d_model = 32;
    mcfg.n_heads = 4;
    mcfg.n_kv_heads = 2;
    mcfg.d_ff = 64;
    let mut lm = CausalLm::new(mcfg, &mut rng);
    zg_lora::attach(&mut lm, &zg_lora::LoraConfig::default(), &mut rng);
    let cfg = TrainConfig {
        max_lr: 5e-3,
        min_lr: 5e-4,
        batch_size: 4,
        grad_accum: 2,
        epochs: if quick { 1 } else { 2 },
        warmup_steps: 2,
        clip_norm: 1.0,
        weight_decay: 0.0,
        max_seq_len: 64,
        checkpoint_every: 0,
        pretrain_epochs: 0,
        pretrain_lr: 0.0,
        train_workers: 2,
    };
    let report = train_sft(&lm, samples, &cfg, TrainOrder::Shuffled, 9);

    let ds = zg_data::german(if quick { 16 } else { 40 }, 8);
    let (_, test) = ds.split(0.5);
    let items = eval_items(&ds, &test);
    let tok = zg_tokenizer::BpeTokenizer::byte_level();
    // A separate byte-level model for evaluation: the training tokenizer's
    // vocab and the eval prompts are unrelated, and eval only needs a
    // deterministic model to drive the instrumented decode/score paths.
    let mut ecfg = ModelConfig::mistral_miniature(tok.vocab_size());
    ecfg.n_layers = 1;
    ecfg.d_model = 16;
    ecfg.n_heads = 2;
    ecfg.n_kv_heads = 1;
    ecfg.d_ff = 32;
    let elm = CausalLm::new(ecfg, &mut StdRng::seed_from_u64(1));
    let zm = ZiGongModel::new(elm, tok, 64, "trace-workload");
    let cell = evaluate_zigong(&zm, &items, 2);

    Outputs {
        losses: report.losses.iter().map(|&l| l as f64).collect(),
        weights: lm
            .trainable_params()
            .into_iter()
            .map(|(_, p)| p.data().to_vec())
            .collect(),
        cell,
    }
}

fn main() {
    if let Some(path) = arg_value("--report") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let trace = Trace::from_jsonl(&text).expect("malformed trace JSONL");
        println!("{}", render_report(&trace));
        return;
    }

    let quick = quick_mode();
    let reps = if quick { 2 } else { 3 };
    println!(
        "== trace overhead audit ({} mode, best of {reps}) ==",
        if quick { "quick" } else { "full" }
    );

    let n_samples = if quick { 16 } else { 48 };
    let ds = zg_data::german(n_samples.max(24), 0x7A11);
    let examples: Vec<_> = ds
        .records
        .iter()
        .take(n_samples)
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    let tokenizer = train_tokenizer(&examples, 512);
    let samples = tokenize_all(&tokenizer, &examples, 64);
    let vocab = tokenizer.vocab_size();

    // Untraced baseline.
    let mut off_s = f64::INFINITY;
    let mut off = None;
    for _ in 0..reps {
        zg_tensor::clear_pool();
        let t0 = Instant::now();
        let out = workload(&samples, vocab, quick);
        off_s = off_s.min(t0.elapsed().as_secs_f64());
        off = Some(out);
    }
    let off = off.expect("baseline ran");
    println!("untraced: {off_s:.3}s");

    // Traced run under a real clock; keep the last captured trace.
    let mut on_s = f64::INFINITY;
    let mut on = None;
    let mut trace = None;
    for _ in 0..reps {
        zg_tensor::clear_pool();
        let tracer = Tracer::with_clock(zg_trace::wall_clock());
        let t0 = Instant::now();
        let out = {
            let _root = tracer.install("zigong");
            workload(&samples, vocab, quick)
        };
        on_s = on_s.min(t0.elapsed().as_secs_f64());
        on = Some(out);
        trace = Some(tracer.finish());
    }
    let on = on.expect("traced run ran");
    let trace = trace.expect("trace captured");
    let overhead = (on_s - off_s) / off_s;
    println!("traced:   {on_s:.3}s  (overhead {:+.2}%)", overhead * 100.0);

    // 1. Bitwise parity: tracing must be an observer, not a participant.
    let parity = off.losses == on.losses
        && off.weights == on.weights
        && off.cell.eval.acc == on.cell.eval.acc
        && off.cell.eval.f1 == on.cell.eval.f1
        && off.cell.eval.miss == on.cell.eval.miss
        && off.cell.ks == on.cell.ks
        && off.cell.auc == on.cell.auc;

    // 2. Artifacts. The JSONL roundtrips through the parser before the
    // report is rendered, so the written file is proven self-describing.
    let jsonl = trace.to_jsonl();
    let reparsed = Trace::from_jsonl(&jsonl).expect("captured trace must roundtrip");
    assert_eq!(reparsed.to_jsonl(), jsonl, "trace JSONL roundtrip drifted");
    write_result("zigong_trace.jsonl", &jsonl);
    write_result("zigong_trace_chrome.json", &trace.to_chrome_json());
    let report = render_report(&reparsed);
    write_result("trace_report.txt", &report);
    println!("\n{report}");

    let audit = serde_json::json!({
        "quick": quick,
        "reps": reps,
        "untraced_s": off_s,
        "traced_s": on_s,
        "overhead_frac": overhead,
        "threshold_frac": OVERHEAD_THRESHOLD_FRAC,
        "bitwise_parity": parity,
        "streams": trace.streams.len(),
    });
    write_result(
        "trace_overhead.json",
        &serde_json::to_string_pretty(&audit).expect("serialize audit"),
    );

    // 3. Gate.
    assert!(parity, "traced run diverged bitwise from the untraced run");
    assert!(
        overhead <= OVERHEAD_THRESHOLD_FRAC,
        "tracing overhead {:.2}% exceeds the pinned {:.0}% ceiling",
        overhead * 100.0,
        OVERHEAD_THRESHOLD_FRAC * 100.0
    );
    println!(
        "parity: bit-identical; overhead within {:.0}% ceiling",
        OVERHEAD_THRESHOLD_FRAC * 100.0
    );
}
