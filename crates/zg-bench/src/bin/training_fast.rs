//! Training fast-path benchmark: end-to-end `train_sft` throughput of
//! the current engine (bit-identical op fast paths, tensor buffer
//! pooling, fused clip+AdamW, reshape-free SFT loss, optional
//! data-parallel gradient accumulation) against the historical serial
//! loop (op fast paths and pool disabled, three-pass clip + step,
//! reshape-copied logits), plus the trainer's phase-timing profile and
//! the bit-identity checks the fast path guarantees. Writes
//! `results/training_fast.json`.
//!
//! Sections:
//!
//! 1. end-to-end: legacy serial loop vs fast serial vs fast parallel
//!    (all available cores), samples/sec and speedups, with exact
//!    per-step loss parity between legacy and fast paths;
//! 2. profile: phase timings (collate/sync/forward/backward/reduce/
//!    optimizer) and buffer-pool counters of the fast run;
//! 3. grad_parity: losses and final trainable weights bit-identical
//!    across worker counts {1, 2, 3, 5};
//! 4. pool: hit rate and a checked-out-buffer leak audit.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_bench::{quick_mode, write_result};
use zg_model::{clip_grad_norm, AdamW, CausalLm, CosineSchedule, ModelConfig};
use zg_tensor::{available_threads, pool_stats, set_op_fast_paths, set_pool_enabled, Tensor};
use zg_zigong::{
    collate, tokenize_all, train_sft_profiled, train_tokenizer, Sample, TrainConfig, TrainOrder,
};

/// The historical `sft_loss`: reshape the `(batch, time, vocab)` logits
/// into `(batch*time, vocab)` — a full copy forward and backward — then
/// cross-entropy. The current loss feeds the rank-3 logits straight in.
fn sft_loss_legacy(
    lm: &CausalLm,
    tokens: &[u32],
    labels: &[u32],
    batch: usize,
    time: usize,
) -> Tensor {
    let logits = lm
        .forward(tokens, batch, time)
        .reshape([batch * time, lm.cfg.vocab_size]);
    let targets: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
    logits.cross_entropy_logits(&targets, Some(0))
}

/// The historical serial training loop, verbatim: same shuffling stream,
/// micro-batching, loss scaling, and cosine schedule as `train_sft`, but
/// with the reshape-based loss and the three-traversal
/// `clip_grad_norm` + `AdamW::step` optimizer update. Run with the
/// buffer pool disabled to reproduce the pre-pool allocator behavior.
fn train_sft_legacy(lm: &CausalLm, samples: &[Sample], cfg: &TrainConfig, seed: u64) -> Vec<f32> {
    let params = lm.trainable_params();
    let mut rng = StdRng::seed_from_u64(seed);
    let micro_per_epoch = samples.len().div_ceil(cfg.batch_size);
    let steps_per_epoch = micro_per_epoch.div_ceil(cfg.grad_accum).max(1);
    let total_steps = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = CosineSchedule {
        max_lr: cfg.max_lr,
        min_lr: cfg.min_lr,
        warmup_steps: cfg.warmup_steps.min(total_steps / 2),
        total_steps,
    };
    let mut opt = AdamW::new(cfg.max_lr, cfg.weight_decay);
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    let mut losses = Vec::new();
    let mut step: u64 = 0;
    for _epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut micro_in_step = 0usize;
        let mut loss_acc = 0.0f32;
        for chunk in indices.chunks(cfg.batch_size) {
            let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
            let (tokens, labels, b, t) = collate(&batch);
            let loss = sft_loss_legacy(lm, &tokens, &labels, b, t);
            loss_acc += loss.item();
            loss.mul_scalar(1.0 / cfg.grad_accum as f32).backward();
            micro_in_step += 1;
            if micro_in_step == cfg.grad_accum {
                clip_grad_norm(&params, cfg.clip_norm);
                opt.lr = schedule.lr_at(step);
                opt.step(&params);
                losses.push(loss_acc / micro_in_step as f32);
                step += 1;
                micro_in_step = 0;
                loss_acc = 0.0;
            }
        }
        if micro_in_step > 0 {
            clip_grad_norm(&params, cfg.clip_norm);
            opt.lr = schedule.lr_at(step);
            opt.step(&params);
            losses.push(loss_acc / micro_in_step as f32);
            step += 1;
        }
    }
    losses
}

fn bench_lm(vocab: usize, seed: u64) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = ModelConfig::mistral_miniature(vocab);
    let mut lm = CausalLm::new(cfg, &mut rng);
    zg_lora::attach(&mut lm, &zg_lora::LoraConfig::default(), &mut rng);
    lm
}

fn trainable_weights(lm: &CausalLm) -> Vec<Vec<f32>> {
    lm.trainable_params()
        .into_iter()
        .map(|(_, p)| p.data().to_vec())
        .collect()
}

fn main() {
    let quick = quick_mode();
    let threads = available_threads();
    println!("== training fast-path benchmark ({threads} threads available) ==");

    // Data: rendered credit-classification prompts, tokenized once.
    let n_samples = if quick { 16 } else { 48 };
    let ds = zg_data::german(n_samples.max(24), 0x7A11);
    let examples: Vec<_> = ds
        .records
        .iter()
        .take(n_samples)
        .map(|r| zg_instruct::render_classification(&ds, r))
        .collect();
    let tokenizer = train_tokenizer(&examples, 768);
    let max_seq = if quick { 48 } else { 96 };
    let samples = tokenize_all(&tokenizer, &examples, max_seq);
    let vocab = tokenizer.vocab_size();
    let cfg = TrainConfig {
        max_lr: 5e-3,
        min_lr: 5e-4,
        batch_size: 4,
        grad_accum: 2,
        epochs: if quick { 1 } else { 2 },
        warmup_steps: 2,
        clip_norm: 1.0,
        weight_decay: 0.0,
        max_seq_len: max_seq,
        checkpoint_every: 0,
        pretrain_epochs: 0,
        pretrain_lr: 0.0,
        train_workers: 1,
    };
    let trained = (cfg.epochs * samples.len()) as f64;
    let seed = 0x5EED;
    println!(
        "data: {} samples, {} epochs, batch {} x accum {}, seq <= {max_seq}",
        samples.len(),
        cfg.epochs,
        cfg.batch_size,
        cfg.grad_accum
    );

    // Timed stages repeat `reps` times and report the fastest wall time
    // (the standard defense against scheduler noise on a shared host);
    // every repetition is seeded identically, so losses and weights are
    // the same across repetitions by the engine's determinism guarantee.
    // The first repetition doubles as each stage's warm-up under its own
    // switches, so stage ordering doesn't bias the comparison.
    let reps = if quick { 1 } else { 3 };

    // --- 1. Legacy serial loop: pool off, op fast paths off (strided
    // broadcast/permute kernels, dead-gradient GEMMs computed and
    // discarded), reshape loss, 3-pass update.
    let was_enabled = set_pool_enabled(false);
    let was_fast = set_op_fast_paths(false);
    let mut legacy_s = f64::INFINITY;
    let mut legacy_losses = Vec::new();
    for _ in 0..reps {
        let lm_legacy = bench_lm(vocab, 42);
        let t0 = Instant::now();
        legacy_losses = train_sft_legacy(&lm_legacy, &samples, &cfg, seed);
        legacy_s = legacy_s.min(t0.elapsed().as_secs_f64());
    }
    set_op_fast_paths(was_fast);
    set_pool_enabled(was_enabled);
    println!(
        "legacy serial: {legacy_s:.2}s ({:.2} samples/s, best of {reps})",
        trained / legacy_s
    );

    // --- 2. Fast serial: op fast paths, pool, fused optimizer,
    // reshape-free loss.
    let epoch_clock = zg_trace::wall_clock();
    let checked_out_before = pool_stats().checked_out;
    let mut fast_s = f64::INFINITY;
    let mut fast = None;
    for _ in 0..reps {
        let lm_fast = bench_lm(vocab, 42);
        let t0 = Instant::now();
        let report = train_sft_profiled(
            &lm_fast,
            &samples,
            &cfg,
            TrainOrder::Shuffled,
            seed,
            Some(epoch_clock.clone()),
        );
        let s = t0.elapsed().as_secs_f64();
        if s < fast_s {
            fast_s = s;
            fast = Some(report);
        }
    }
    let fast = fast.expect("at least one fast-serial repetition");
    println!(
        "fast serial:   {fast_s:.2}s ({:.2} samples/s, {:.2}x vs legacy)",
        trained / fast_s,
        legacy_s / fast_s
    );

    // Per-step losses must match the legacy loop exactly: the fused
    // optimizer, the pool, the reshape-free loss, and every op fast
    // path are all bit-transparent.
    let loss_parity = legacy_losses == fast.losses;
    if !loss_parity {
        println!("WARNING: fast-path losses diverge from the legacy loop");
    }

    // --- 3. Fast parallel: every available core.
    let par_cfg = TrainConfig {
        train_workers: threads,
        ..cfg.clone()
    };
    let mut par_s = f64::INFINITY;
    let mut par = None;
    for _ in 0..reps {
        let lm_par = bench_lm(vocab, 42);
        let t0 = Instant::now();
        let report = train_sft_profiled(
            &lm_par,
            &samples,
            &par_cfg,
            TrainOrder::Shuffled,
            seed,
            Some(epoch_clock.clone()),
        );
        let s = t0.elapsed().as_secs_f64();
        if s < par_s {
            par_s = s;
            par = Some(report);
        }
    }
    let par = par.expect("at least one fast-parallel repetition");
    println!(
        "fast parallel ({threads}w): {par_s:.2}s ({:.2} samples/s, {:.2}x vs legacy)",
        trained / par_s,
        legacy_s / par_s
    );
    let par_loss_parity = par.losses == fast.losses;

    let best_s = fast_s.min(par_s);
    let p = fast.profile;
    println!(
        "fast serial profile: collate {:.2}s forward {:.2}s backward {:.2}s optimizer {:.2}s",
        p.collate_s, p.forward_s, p.backward_s, p.optimizer_s
    );
    println!(
        "pool: {} takes, {} hits ({:.1}% hit rate)",
        p.pool_takes,
        p.pool_hits,
        p.pool_hit_rate() * 100.0
    );

    // --- 4. Gradient parity across worker counts {1, 2, 3, 5}.
    let parity_cfg = TrainConfig {
        epochs: 1,
        ..cfg.clone()
    };
    let parity_samples = &samples[..samples.len().min(16)];
    let parity_run = |workers: usize| {
        let lm = bench_lm(vocab, 7);
        let c = TrainConfig {
            train_workers: workers,
            ..parity_cfg.clone()
        };
        let report = train_sft_profiled(&lm, parity_samples, &c, TrainOrder::Shuffled, 11, None);
        // Exact f64 widening: equality below is bitwise, not approximate.
        let losses: Vec<f64> = report.losses.iter().map(|&l| l as f64).collect();
        (losses, trainable_weights(&lm))
    };
    let (base_losses, base_weights) = parity_run(1);
    let parity_workers = [2usize, 3, 5];
    let grad_parity = parity_workers.iter().all(|&w| {
        let (l, wts) = parity_run(w);
        let ok = l == base_losses && wts == base_weights;
        println!(
            "grad parity @ {w} workers: {}",
            if ok { "bit-identical" } else { "DIVERGED" }
        );
        ok
    });

    // --- 5. Pool leak audit: nothing left checked out on this thread.
    let leaked = pool_stats().checked_out - checked_out_before;
    if leaked != 0 {
        println!("WARNING: {leaked} pooled buffers still checked out");
    }

    let note = if threads == 1 {
        "single-core host: parallel engine degenerates to serial; speedup \
         comes from the bit-identical op fast paths (sliced broadcast \
         kernels, dead-gradient GEMM skip, run-copy permute), pooling, the \
         fused optimizer, and the reshape-free loss"
    } else {
        "multi-core host"
    };
    let end_to_end = serde_json::json!({
        "samples": samples.len(),
        "epochs": cfg.epochs,
        "samples_trained": trained,
        "legacy_serial_s": legacy_s,
        "legacy_samples_per_s": trained / legacy_s,
        "fast_serial_s": fast_s,
        "fast_serial_samples_per_s": trained / fast_s,
        "fast_parallel_s": par_s,
        "fast_parallel_workers": threads,
        "fast_parallel_samples_per_s": trained / par_s,
        "speedup_serial": legacy_s / fast_s,
        "speedup_end_to_end": legacy_s / best_s,
        "loss_parity": loss_parity && par_loss_parity,
    });
    let pool = serde_json::json!({
        "takes": p.pool_takes,
        "hits": p.pool_hits,
        "hit_rate": p.pool_hit_rate(),
        "leaked_checkouts": leaked,
    });
    let parity = serde_json::json!({
        "workers": parity_workers.to_vec(),
        "baseline_workers": 1,
        "bit_identical": grad_parity,
    });
    let out = serde_json::to_string_pretty(&serde_json::json!({
        "host_threads": threads,
        "note": note,
        "end_to_end": end_to_end,
        "profile_fast_serial": p,
        "profile_fast_parallel": par.profile,
        "pool": pool,
        "grad_parity": parity,
    }))
    .expect("benchmark serializes");
    write_result("training_fast.json", &out);

    assert!(loss_parity, "loss parity violated");
    assert!(grad_parity, "gradient parity violated");
    assert_eq!(leaked, 0, "pooled buffer leak");
}
