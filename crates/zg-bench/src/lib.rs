//! # zg-bench
//!
//! Experiment binaries regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index), plus Criterion
//! microbenchmarks of the substrates.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — instruction templates |
//! | `table2` | Table 2 — benchmark, measured + replay columns |
//! | `table3` | Table 3 — configuration dump |
//! | `figure2` | Figure 2 — pruning study (sample size × selector, Acc + KS) |
//! | `ablations` | Ablations A–D (γ, mix ratio, drift, LoRA rank) |
//!
//! All binaries accept `--quick` for a fast smoke-scale run and write
//! their output under `results/`.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write `content` to `results/<name>` and echo the path. Quick-mode
/// runs write to `<stem>_quick.<ext>` so they never clobber full-run
/// artifacts.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let name = if quick_mode() {
        match name.rsplit_once('.') {
            Some((stem, ext)) => format!("{stem}_quick.{ext}"),
            None => format!("{name}_quick"),
        }
    } else {
        name.to_string()
    };
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result");
    println!("\n[written] {}", path.display());
    path
}

/// `true` when `--quick` was passed (smoke-scale run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Value of a `--key value` argument.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Format a float cell to 3 decimals (the paper's precision).
pub fn cell(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_result_roundtrip() {
        let p = write_result("_test_artifact.txt", "hello");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn cell_precision() {
        assert_eq!(cell(0.5), "0.500");
        assert_eq!(cell(0.1234), "0.123");
    }
}
