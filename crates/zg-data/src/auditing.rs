//! Financial auditing — the third downstream task in the paper's Figure 1
//! workflow ("QA, Sentiment Analysis, and Financial Auditing"). Synthetic
//! journal-entry records with planted audit red flags: duplicate invoice
//! amounts, round-number bias, weekend postings, manual entries just
//! under approval limits, and period-end clustering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{Dataset, FeatureValue, Record, TaskKind};

/// Approval limit used by the "just-below-limit" red flag.
pub const APPROVAL_LIMIT: f32 = 10_000.0;

const VENDORS: [&str; 8] = [
    "Acme Industrial Supply",
    "Northwind Logistics",
    "Pioneer Office Services",
    "Cascade Consulting",
    "Summit Equipment Leasing",
    "Harbor Freight Partners",
    "Metro Facilities Group",
    "Crestline Marketing",
];

const ACCOUNTS: [&str; 6] = [
    "travel and entertainment",
    "professional fees",
    "office supplies",
    "equipment maintenance",
    "marketing services",
    "miscellaneous expense",
];

/// Generate `n` journal entries; ≈`positive_rate` carry planted red flags
/// (the positive "irregular" class).
pub fn auditing_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let positive_rate = 0.12;
    let mut records = Vec::with_capacity(n);
    for id in 0..n {
        let irregular = rng.gen_bool(positive_rate);
        let vendor = VENDORS[rng.gen_range(0..VENDORS.len())];
        let account = ACCOUNTS[rng.gen_range(0..ACCOUNTS.len())];
        // Normal entries: organic amounts, weekday, spread over the month.
        let mut amount: f32 = (50.0 + rng.gen_range(0.0..6000.0f32) * rng.gen::<f32>()).round()
            + rng.gen_range(0..100) as f32 / 100.0;
        let mut day_of_week = rng.gen_range(1..=5u32); // Mon-Fri
        let mut day_of_month = rng.gen_range(1..=28u32);
        let mut entry_type = "system generated";
        let mut approver_matches = true;
        if irregular {
            // Plant one of the classic red-flag patterns.
            match rng.gen_range(0..4u32) {
                0 => {
                    // Just below the approval limit.
                    amount = APPROVAL_LIMIT - rng.gen_range(1.0..250.0f32).round();
                    entry_type = "manual";
                }
                1 => {
                    // Suspicious round number.
                    amount = (rng.gen_range(1..=9) * 1000) as f32;
                    entry_type = "manual";
                }
                2 => {
                    // Weekend posting at period end.
                    day_of_week = if rng.gen_bool(0.5) { 6 } else { 7 };
                    day_of_month = rng.gen_range(28..=31);
                }
                _ => {
                    // Manual entry with self-approval.
                    entry_type = "manual";
                    approver_matches = false;
                }
            }
        }
        let weekday_name = match day_of_week {
            1 => "Monday",
            2 => "Tuesday",
            3 => "Wednesday",
            4 => "Thursday",
            5 => "Friday",
            6 => "Saturday",
            _ => "Sunday",
        };
        records.push(Record {
            id,
            features: vec![
                ("vendor".into(), FeatureValue::Cat(vendor.into())),
                ("expense account".into(), FeatureValue::Cat(account.into())),
                ("amount".into(), FeatureValue::Num(amount)),
                (
                    "posting day of month".into(),
                    FeatureValue::Num(day_of_month as f32),
                ),
                (
                    "posting weekday".into(),
                    FeatureValue::Cat(weekday_name.into()),
                ),
                ("entry type".into(), FeatureValue::Cat(entry_type.into())),
                (
                    "approver independent".into(),
                    FeatureValue::Cat(if approver_matches { "yes" } else { "no" }.into()),
                ),
            ],
            label: irregular,
            time: None,
            user: None,
        });
    }
    Dataset {
        name: "Financial Auditing".to_string(),
        task: TaskKind::FinancialAuditing,
        records,
        positive_name: "Yes".to_string(),
        negative_name: "No".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_prior() {
        let d = auditing_dataset(2000, 1);
        assert_eq!(d.records[0].features.len(), 7);
        assert!(
            (d.positive_rate() - 0.12).abs() < 0.03,
            "{}",
            d.positive_rate()
        );
        assert_eq!(d.task, TaskKind::FinancialAuditing);
    }

    #[test]
    fn red_flags_concentrate_in_positives() {
        let d = auditing_dataset(3000, 2);
        let manual_rate = |label: bool| -> f64 {
            let recs: Vec<&Record> = d.records.iter().filter(|r| r.label == label).collect();
            let manual = recs
                .iter()
                .filter(|r| matches!(&r.features[5].1, FeatureValue::Cat(s) if s == "manual"))
                .count();
            manual as f64 / recs.len() as f64
        };
        assert!(
            manual_rate(true) > manual_rate(false) + 0.3,
            "manual entries must concentrate in irregular class"
        );
    }

    #[test]
    fn weekend_postings_are_red_flags() {
        let d = auditing_dataset(3000, 3);
        for r in &d.records {
            if matches!(&r.features[4].1, FeatureValue::Cat(s) if s == "Saturday" || s == "Sunday")
            {
                assert!(r.label, "weekend posting must be flagged in this generator");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = auditing_dataset(50, 4);
        let b = auditing_dataset(50, 4);
        assert_eq!(a.records[9].feature_text(), b.records[9].feature_text());
    }
}
