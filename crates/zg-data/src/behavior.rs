//! Temporal user-behavior sequences — the synthetic stand-in for the
//! paper's proprietary Behavior Card loan data, and the testbed for
//! TracSeq's central claim.
//!
//! Each user carries a latent risk state following an AR(1) process
//! `r_t = ρ·r_{t-1} + ε_t`. Observed behavior features at period `t` are
//! noisy projections of `r_t`; the label (default) is thresholded `r_T` at
//! the final period. With persistence `ρ < 1`, older periods carry
//! provably less information about the label — exactly the
//! time-decaying-influence structure TracSeq's `γ^(T−t)` factor models.
//! With `ρ = 1` the process is stationary and TracIn ≈ TracSeq, which is
//! what Ablation C checks.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::record::{Dataset, FeatureValue, Record, TaskKind};

/// Behavior-sequence generator parameters.
#[derive(Debug, Clone)]
pub struct BehaviorConfig {
    /// Number of users.
    pub n_users: usize,
    /// Time periods per user (`T`); period `T-1` is "current".
    pub periods: usize,
    /// AR(1) persistence ρ ∈ (0, 1]: 1 = stationary (no drift), lower =
    /// faster information decay.
    pub persistence: f32,
    /// Observation noise on behavior features.
    pub noise_std: f32,
    /// Target default rate.
    pub positive_rate: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            n_users: 300,
            periods: 6,
            persistence: 0.6,
            noise_std: 0.5,
            positive_rate: 0.25,
        }
    }
}

/// Behavior feature projections `(name, coefficient, offset, scale, round)`:
/// feature = offset + scale·(coef·r_t + noise).
const FEATURES: [(&str, f32, f32, f32, bool); 7] = [
    ("transaction count this period", -0.5, 30.0, 12.0, true),
    ("average transaction amount", -0.3, 85.0, 40.0, false),
    ("late payment count", 0.9, 1.0, 1.2, true),
    ("credit utilization percent", 0.8, 45.0, 22.0, true),
    ("new loan applications", 0.6, 0.8, 1.0, true),
    ("days since last activity", 0.4, 6.0, 5.0, true),
    ("account balance", -0.7, 2400.0, 1500.0, true),
];

/// Generate the behavior-sequence dataset. Records are ordered user-major,
/// period-minor; every record of a user carries the user's final-period
/// label (the operational Behavior Card target: "will this user default?").
pub fn behavior_sequences(cfg: &BehaviorConfig, seed: u64) -> Dataset {
    assert!(cfg.periods >= 2, "need at least 2 periods");
    assert!(
        (0.0..=1.0).contains(&cfg.persistence) && cfg.persistence > 0.0,
        "persistence must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Innovation scale keeps Var(r_t) ≈ 1 regardless of ρ.
    let innov = (1.0 - cfg.persistence * cfg.persistence).sqrt().max(1e-3);

    let mut records = Vec::with_capacity(cfg.n_users * cfg.periods);
    let mut final_risks = Vec::with_capacity(cfg.n_users);
    for user in 0..cfg.n_users {
        let mut r = zg_tensor::randn_sample(&mut rng);
        let mut user_records = Vec::with_capacity(cfg.periods);
        for t in 0..cfg.periods {
            if t > 0 {
                r = cfg.persistence * r + innov * zg_tensor::randn_sample(&mut rng);
            }
            let mut feats = Vec::with_capacity(FEATURES.len() + 1);
            feats.push(("period".to_string(), FeatureValue::Num(t as f32)));
            for &(name, coef, offset, scale, round) in &FEATURES {
                let raw = coef * r + cfg.noise_std * zg_tensor::randn_sample(&mut rng);
                let mut v = (offset + scale * raw).max(0.0);
                if round {
                    v = v.round();
                }
                feats.push((name.to_string(), FeatureValue::Num(v)));
            }
            user_records.push(Record {
                id: user * cfg.periods + t,
                features: feats,
                label: false, // filled once the threshold is known
                time: Some(t as u32),
                user: Some(user),
            });
        }
        final_risks.push(r + 0.3 * zg_tensor::randn_sample(&mut rng));
        records.extend(user_records);
    }
    // Threshold final risk to match the target default rate.
    let mut sorted = final_risks.clone();
    // INVARIANT: risk scores are finite by construction (bounded arithmetic on finite draws).
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite risks"));
    let cut = ((1.0 - cfg.positive_rate) * cfg.n_users as f64).floor() as usize;
    let threshold = sorted[cut.min(cfg.n_users - 1)];
    for rec in &mut records {
        // INVARIANT: every behavior record above is built with `user: Some(..)`.
        let user = rec.user.expect("behavior records carry a user");
        rec.label = final_risks[user] >= threshold;
    }
    Dataset {
        name: "Behavior Card".to_string(),
        task: TaskKind::BehaviorRisk,
        records,
        positive_name: "Yes".to_string(),
        negative_name: "No".to_string(),
    }
}

/// Records of the final ("current") period only — the test-time view.
pub fn current_period(ds: &Dataset, periods: usize) -> Vec<&Record> {
    ds.records
        .iter()
        .filter(|r| r.time == Some((periods - 1) as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_ordering() {
        let cfg = BehaviorConfig {
            n_users: 20,
            periods: 4,
            ..Default::default()
        };
        let ds = behavior_sequences(&cfg, 1);
        assert_eq!(ds.records.len(), 80);
        assert_eq!(ds.records[0].user, Some(0));
        assert_eq!(ds.records[0].time, Some(0));
        assert_eq!(ds.records[7].user, Some(1));
        assert_eq!(ds.records[7].time, Some(3));
    }

    #[test]
    fn labels_consistent_within_user() {
        let ds = behavior_sequences(&BehaviorConfig::default(), 2);
        for chunk in ds.records.chunks(BehaviorConfig::default().periods) {
            let first = chunk[0].label;
            assert!(chunk.iter().all(|r| r.label == first));
        }
    }

    #[test]
    fn positive_rate_close_to_target() {
        let cfg = BehaviorConfig {
            n_users: 1000,
            ..Default::default()
        };
        let ds = behavior_sequences(&cfg, 3);
        assert!((ds.positive_rate() - cfg.positive_rate).abs() < 0.02);
    }

    #[test]
    fn recent_periods_more_predictive_when_drifting() {
        // Correlation between "late payment count" and the label should be
        // stronger at the final period than at period 0 when ρ < 1.
        let cfg = BehaviorConfig {
            n_users: 2000,
            periods: 6,
            persistence: 0.5,
            noise_std: 0.3,
            positive_rate: 0.3,
        };
        let ds = behavior_sequences(&cfg, 4);
        let corr_at = |t: u32| -> f64 {
            let recs: Vec<&Record> = ds.records.iter().filter(|r| r.time == Some(t)).collect();
            let xs: Vec<f64> = recs
                .iter()
                .map(|r| match &r.features[3].1 {
                    FeatureValue::Num(v) => *v as f64,
                    _ => unreachable!(),
                })
                .collect();
            let ys: Vec<f64> = recs.iter().map(|r| r.label as u8 as f64).collect();
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let early = corr_at(0);
        let late = corr_at(5);
        assert!(
            late > early + 0.1,
            "late corr {late:.3} should exceed early {early:.3}"
        );
    }

    #[test]
    fn stationary_process_has_uniform_information() {
        let cfg = BehaviorConfig {
            n_users: 2000,
            periods: 5,
            persistence: 1.0,
            noise_std: 0.3,
            positive_rate: 0.3,
        };
        let ds = behavior_sequences(&cfg, 5);
        // Utilization-label correlation at first vs last period should be
        // similar when the latent state never moves.
        let corr_at = |t: u32| -> f64 {
            let recs: Vec<&Record> = ds.records.iter().filter(|r| r.time == Some(t)).collect();
            let xs: Vec<f64> = recs
                .iter()
                .map(|r| match &r.features[4].1 {
                    FeatureValue::Num(v) => *v as f64,
                    _ => unreachable!(),
                })
                .collect();
            let ys: Vec<f64> = recs.iter().map(|r| r.label as u8 as f64).collect();
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        assert!((corr_at(0) - corr_at(4)).abs() < 0.08);
    }

    #[test]
    fn current_period_selector() {
        let cfg = BehaviorConfig {
            n_users: 10,
            periods: 3,
            ..Default::default()
        };
        let ds = behavior_sequences(&cfg, 6);
        let cur = current_period(&ds, 3);
        assert_eq!(cur.len(), 10);
        assert!(cur.iter().all(|r| r.time == Some(2)));
    }

    #[test]
    fn deterministic_generation() {
        let cfg = BehaviorConfig::default();
        let a = behavior_sequences(&cfg, 9);
        let b = behavior_sequences(&cfg, 9);
        assert_eq!(a.records[17].feature_text(), b.records[17].feature_text());
    }
}
