//! Synthetic stand-ins for the five CALM benchmark datasets evaluated in
//! the paper's Table 2. Each generator reproduces the published schema
//! (feature names and types), the class prior, and plants a learnable
//! latent risk signal (see `synth.rs`). Record counts default to a
//! CPU-friendly scale; pass a larger `n` to approach the original sizes.

use crate::record::{Dataset, TaskKind};
use crate::synth::{FeatureSpec, SynthSpec};

/// Default record counts (scaled from the originals: German 1000,
/// Australia 690, Credit Card Fraud 284 807, ccFraud 1 048 575, Travel
/// Insurance 63 326).
pub mod default_sizes {
    /// German Credit default size (matches the original).
    pub const GERMAN: usize = 1000;
    /// Australian Credit default size (matches the original).
    pub const AUSTRALIA: usize = 690;
    /// Credit Card Fraud scaled-down default.
    pub const CREDIT_CARD_FRAUD: usize = 4000;
    /// ccFraud scaled-down default.
    pub const CCFRAUD: usize = 4000;
    /// Travel Insurance scaled-down default.
    pub const TRAVEL_INSURANCE: usize = 3000;
}

/// German Credit (Statlog): 20 features, 700 good / 300 bad.
pub fn german(n: usize, seed: u64) -> Dataset {
    SynthSpec {
        name: "German",
        task: TaskKind::CreditScoring,
        features: vec![
            FeatureSpec::Categorical {
                name: "status of checking account",
                choices: &[
                    ("< 0 DM", 0.7),
                    ("0 to 200 DM", 0.25),
                    (">= 200 DM", -0.4),
                    ("no checking account", -0.6),
                ],
            },
            FeatureSpec::Numeric {
                name: "duration in months",
                mean: 21.0,
                std: 12.0,
                risk_weight: 0.55,
                round: true,
                range: (4.0, 72.0),
            },
            FeatureSpec::Categorical {
                name: "credit history",
                choices: &[
                    ("no credits taken", 0.4),
                    ("all credits paid back duly", -0.5),
                    ("existing credits paid back duly", -0.3),
                    ("delay in paying off in the past", 0.5),
                    ("critical account", 0.8),
                ],
            },
            FeatureSpec::Categorical {
                name: "purpose",
                choices: &[
                    ("car (new)", 0.1),
                    ("car (used)", -0.2),
                    ("furniture/equipment", 0.0),
                    ("radio/television", 0.0),
                    ("education", 0.2),
                    ("business", 0.1),
                    ("repairs", 0.2),
                ],
            },
            FeatureSpec::Numeric {
                name: "credit amount",
                mean: 3271.0,
                std: 2822.0,
                risk_weight: 0.45,
                round: true,
                range: (250.0, 18424.0),
            },
            FeatureSpec::Categorical {
                name: "savings account",
                choices: &[
                    ("< 100 DM", 0.4),
                    ("100 to 500 DM", 0.1),
                    ("500 to 1000 DM", -0.2),
                    (">= 1000 DM", -0.5),
                    ("unknown/no savings", 0.2),
                ],
            },
            FeatureSpec::Categorical {
                name: "present employment since",
                choices: &[
                    ("unemployed", 0.5),
                    ("< 1 year", 0.3),
                    ("1 to 4 years", 0.0),
                    ("4 to 7 years", -0.2),
                    (">= 7 years", -0.4),
                ],
            },
            FeatureSpec::Numeric {
                name: "installment rate in percentage of disposable income",
                mean: 3.0,
                std: 1.1,
                risk_weight: 0.2,
                round: true,
                range: (1.0, 4.0),
            },
            FeatureSpec::Categorical {
                name: "personal status and sex",
                choices: &[
                    ("male single", -0.1),
                    ("male married/widowed", 0.0),
                    ("female", 0.05),
                ],
            },
            FeatureSpec::Categorical {
                name: "other debtors",
                choices: &[("none", 0.0), ("co-applicant", 0.2), ("guarantor", -0.3)],
            },
            FeatureSpec::Numeric {
                name: "present residence since",
                mean: 2.8,
                std: 1.1,
                risk_weight: 0.05,
                round: true,
                range: (1.0, 4.0),
            },
            FeatureSpec::Categorical {
                name: "property",
                choices: &[
                    ("real estate", -0.4),
                    ("building society savings", -0.1),
                    ("car or other", 0.1),
                    ("unknown / no property", 0.4),
                ],
            },
            FeatureSpec::Numeric {
                name: "age in years",
                mean: 35.5,
                std: 11.3,
                risk_weight: -0.3,
                round: true,
                range: (19.0, 75.0),
            },
            FeatureSpec::Categorical {
                name: "other installment plans",
                choices: &[("bank", 0.3), ("stores", 0.2), ("none", -0.1)],
            },
            FeatureSpec::Categorical {
                name: "housing",
                choices: &[("rent", 0.2), ("own", -0.2), ("for free", 0.1)],
            },
            FeatureSpec::Numeric {
                name: "number of existing credits at this bank",
                mean: 1.4,
                std: 0.6,
                risk_weight: 0.1,
                round: true,
                range: (1.0, 4.0),
            },
            FeatureSpec::Categorical {
                name: "job",
                choices: &[
                    ("unemployed/unskilled non-resident", 0.3),
                    ("unskilled resident", 0.15),
                    ("skilled employee", -0.1),
                    ("management/self-employed", 0.0),
                ],
            },
            FeatureSpec::Numeric {
                name: "number of people being liable",
                mean: 1.15,
                std: 0.36,
                risk_weight: 0.05,
                round: true,
                range: (1.0, 2.0),
            },
            FeatureSpec::Categorical {
                name: "telephone",
                choices: &[("none", 0.05), ("yes, registered", -0.05)],
            },
            FeatureSpec::Categorical {
                name: "foreign worker",
                choices: &[("yes", 0.1), ("no", -0.1)],
            },
        ],
        positive_rate: 0.30,
        noise_std: 0.9,
        positive_name: "bad",
        negative_name: "good",
    }
    .generate(n, seed)
}

/// Australian Credit Approval: 14 anonymized features (A1–A14), ≈44.5%
/// positive.
#[allow(clippy::vec_init_then_push)]
pub fn australia(n: usize, seed: u64) -> Dataset {
    // The original features are anonymized; mirror the published type mix
    // (6 numeric, 8 categorical) with plausible ranges.
    let mut features: Vec<FeatureSpec> = Vec::new();
    features.push(FeatureSpec::Categorical {
        name: "A1",
        choices: &[("a", 0.1), ("b", -0.1)],
    });
    features.push(FeatureSpec::Numeric {
        name: "A2",
        mean: 31.6,
        std: 11.9,
        risk_weight: -0.25,
        round: false,
        range: (13.0, 80.0),
    });
    features.push(FeatureSpec::Numeric {
        name: "A3",
        mean: 4.76,
        std: 4.98,
        risk_weight: 0.4,
        round: false,
        range: (0.0, 28.0),
    });
    features.push(FeatureSpec::Categorical {
        name: "A4",
        choices: &[("u", -0.2), ("y", 0.2), ("l", 0.05)],
    });
    features.push(FeatureSpec::Categorical {
        name: "A5",
        choices: &[
            ("g", -0.15),
            ("p", 0.15),
            ("gg", 0.05),
            ("c", 0.1),
            ("d", -0.05),
        ],
    });
    features.push(FeatureSpec::Categorical {
        name: "A6",
        choices: &[
            ("ff", 0.4),
            ("dd", 0.1),
            ("j", 0.05),
            ("bb", -0.1),
            ("v", -0.3),
        ],
    });
    features.push(FeatureSpec::Numeric {
        name: "A7",
        mean: 2.22,
        std: 3.35,
        risk_weight: -0.5,
        round: false,
        range: (0.0, 28.5),
    });
    features.push(FeatureSpec::Categorical {
        name: "A8",
        choices: &[("t", -0.7), ("f", 0.7)],
    });
    features.push(FeatureSpec::Categorical {
        name: "A9",
        choices: &[("t", -0.5), ("f", 0.35)],
    });
    features.push(FeatureSpec::Numeric {
        name: "A10",
        mean: 2.4,
        std: 4.86,
        risk_weight: -0.45,
        round: true,
        range: (0.0, 67.0),
    });
    features.push(FeatureSpec::Categorical {
        name: "A11",
        choices: &[("t", 0.1), ("f", -0.1)],
    });
    features.push(FeatureSpec::Categorical {
        name: "A12",
        choices: &[("g", 0.0), ("p", 0.1), ("s", -0.05)],
    });
    features.push(FeatureSpec::Numeric {
        name: "A13",
        mean: 184.0,
        std: 173.0,
        risk_weight: 0.1,
        round: true,
        range: (0.0, 2000.0),
    });
    features.push(FeatureSpec::Numeric {
        name: "A14",
        mean: 1018.0,
        std: 5210.0,
        risk_weight: -0.35,
        round: true,
        range: (0.0, 100_000.0),
    });
    SynthSpec {
        name: "Australia",
        task: TaskKind::CreditScoring,
        features,
        positive_rate: 0.445,
        noise_std: 0.8,
        positive_name: "bad",
        negative_name: "good",
    }
    .generate(n, seed)
}

/// Credit Card Fraud (ULB/Kaggle): Time, V1–V28 PCA components, Amount;
/// 0.172% fraud.
pub fn credit_card_fraud(n: usize, seed: u64) -> Dataset {
    let mut features: Vec<FeatureSpec> = vec![FeatureSpec::Numeric {
        name: "Time",
        mean: 94_814.0,
        std: 47_488.0,
        risk_weight: 0.0,
        round: true,
        range: (0.0, 172_792.0),
    }];
    // PCA components: the first few carry the fraud signal (as in the real
    // data, where V1–V14 dominate importance).
    const V_WEIGHTS: [f32; 28] = [
        0.9, -0.8, 0.7, 0.65, -0.5, 0.4, -0.6, 0.3, -0.45, 0.5, 0.35, -0.55, 0.2, -0.7, 0.1, -0.15,
        0.25, -0.1, 0.05, -0.05, 0.1, -0.08, 0.04, -0.03, 0.02, -0.02, 0.01, -0.01,
    ];
    // Leak the per-component weights into static storage for the schema.
    for (i, &w) in V_WEIGHTS.iter().enumerate() {
        features.push(FeatureSpec::Numeric {
            name: V_NAMES[i],
            mean: 0.0,
            std: 1.0,
            risk_weight: w * 0.45,
            round: false,
            range: (-30.0, 30.0),
        });
    }
    features.push(FeatureSpec::Numeric {
        name: "Amount",
        mean: 88.3,
        std: 250.1,
        risk_weight: 0.3,
        round: false,
        range: (0.0, 25_691.0),
    });
    SynthSpec {
        name: "Credit Card Fraud",
        task: TaskKind::FraudDetection,
        features,
        // True prior is 0.00172; at miniature scale we keep the dataset
        // heavily imbalanced but with enough positives to learn from.
        positive_rate: 0.02,
        noise_std: 0.7,
        positive_name: "Yes",
        negative_name: "No",
    }
    .generate(n, seed)
}

static V_NAMES: [&str; 28] = [
    "V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8", "V9", "V10", "V11", "V12", "V13", "V14", "V15",
    "V16", "V17", "V18", "V19", "V20", "V21", "V22", "V23", "V24", "V25", "V26", "V27", "V28",
];

/// ccFraud: 7 features (gender, state, cardholder, balance, numTrans,
/// numIntlTrans, creditLine); ≈5.96% fraud.
pub fn ccfraud(n: usize, seed: u64) -> Dataset {
    SynthSpec {
        name: "ccFraud",
        task: TaskKind::FraudDetection,
        features: vec![
            FeatureSpec::Categorical {
                name: "gender",
                choices: &[("male", 0.05), ("female", -0.05)],
            },
            FeatureSpec::Numeric {
                name: "state",
                mean: 25.0,
                std: 14.0,
                risk_weight: 0.0,
                round: true,
                range: (1.0, 51.0),
            },
            FeatureSpec::Numeric {
                name: "number of cards held",
                mean: 1.03,
                std: 0.18,
                risk_weight: 0.1,
                round: true,
                range: (1.0, 2.0),
            },
            FeatureSpec::Numeric {
                name: "credit card balance",
                mean: 4110.0,
                std: 3996.0,
                risk_weight: 0.75,
                round: true,
                range: (0.0, 41_485.0),
            },
            FeatureSpec::Numeric {
                name: "number of transactions",
                mean: 28.9,
                std: 26.5,
                risk_weight: 0.45,
                round: true,
                range: (0.0, 100.0),
            },
            FeatureSpec::Numeric {
                name: "number of international transactions",
                mean: 4.0,
                std: 8.6,
                risk_weight: 0.6,
                round: true,
                range: (0.0, 60.0),
            },
            FeatureSpec::Numeric {
                name: "credit line",
                mean: 9.13,
                std: 9.64,
                risk_weight: 0.35,
                round: true,
                range: (1.0, 75.0),
            },
        ],
        positive_rate: 0.0596,
        noise_std: 0.8,
        positive_name: "Yes",
        negative_name: "No",
    }
    .generate(n, seed)
}

/// Travel Insurance claim analysis: agency, type, channel, product,
/// duration, destination, sales, commission, age; ≈1.5% claims.
pub fn travel_insurance(n: usize, seed: u64) -> Dataset {
    SynthSpec {
        name: "Travel Insurance",
        task: TaskKind::ClaimAnalysis,
        features: vec![
            FeatureSpec::Categorical {
                name: "agency",
                choices: &[
                    ("EPX", -0.3),
                    ("CWT", 0.2),
                    ("C2B", 0.6),
                    ("JZI", 0.0),
                    ("SSI", 0.1),
                    ("LWC", 0.15),
                ],
            },
            FeatureSpec::Categorical {
                name: "agency type",
                choices: &[("Airlines", 0.3), ("Travel Agency", -0.2)],
            },
            FeatureSpec::Categorical {
                name: "distribution channel",
                choices: &[("Online", 0.0), ("Offline", 0.15)],
            },
            FeatureSpec::Categorical {
                name: "product name",
                choices: &[
                    ("Cancellation Plan", -0.2),
                    ("2 way Comprehensive Plan", 0.1),
                    ("Rental Vehicle Excess Insurance", -0.1),
                    ("Basic Plan", -0.15),
                    ("Bronze Plan", 0.2),
                    ("Silver Plan", 0.35),
                    ("Annual Silver Plan", 0.5),
                ],
            },
            FeatureSpec::Numeric {
                name: "duration of travel",
                mean: 49.3,
                std: 101.9,
                risk_weight: 0.55,
                round: true,
                range: (0.0, 740.0),
            },
            FeatureSpec::Categorical {
                name: "destination",
                choices: &[
                    ("SINGAPORE", 0.3),
                    ("MALAYSIA", -0.1),
                    ("THAILAND", -0.05),
                    ("CHINA", 0.0),
                    ("AUSTRALIA", 0.15),
                    ("INDONESIA", -0.1),
                    ("UNITED STATES", 0.2),
                    ("PHILIPPINES", -0.15),
                ],
            },
            FeatureSpec::Numeric {
                name: "net sales",
                mean: 40.7,
                std: 48.8,
                risk_weight: 0.45,
                round: false,
                range: (-389.0, 810.0),
            },
            FeatureSpec::Numeric {
                name: "commission received",
                mean: 9.8,
                std: 19.8,
                risk_weight: 0.3,
                round: false,
                range: (0.0, 284.0),
            },
            FeatureSpec::Numeric {
                name: "age of insured",
                mean: 39.9,
                std: 14.0,
                risk_weight: 0.2,
                round: true,
                range: (0.0, 118.0),
            },
        ],
        // True prior ≈ 0.0146; keep imbalance but learnable at small n.
        positive_rate: 0.03,
        noise_std: 0.8,
        positive_name: "Yes",
        negative_name: "No",
    }
    .generate(n, seed)
}

/// All five Table 2 datasets at default sizes.
pub fn all_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        german(default_sizes::GERMAN, seed),
        australia(default_sizes::AUSTRALIA, seed.wrapping_add(1)),
        credit_card_fraud(default_sizes::CREDIT_CARD_FRAUD, seed.wrapping_add(2)),
        ccfraud(default_sizes::CCFRAUD, seed.wrapping_add(3)),
        travel_insurance(default_sizes::TRAVEL_INSURANCE, seed.wrapping_add(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn german_schema_and_prior() {
        let d = german(1000, 1);
        assert_eq!(d.records.len(), 1000);
        assert_eq!(d.records[0].features.len(), 20);
        assert!(
            (d.positive_rate() - 0.30).abs() < 0.02,
            "{}",
            d.positive_rate()
        );
        assert_eq!(d.positive_name, "bad");
    }

    #[test]
    fn australia_schema_and_prior() {
        let d = australia(690, 2);
        assert_eq!(d.records.len(), 690);
        assert_eq!(d.records[0].features.len(), 14);
        assert!((d.positive_rate() - 0.445).abs() < 0.03);
    }

    #[test]
    fn credit_card_fraud_imbalanced() {
        let d = credit_card_fraud(4000, 3);
        assert_eq!(d.records[0].features.len(), 30); // Time + V1..V28 + Amount
        let rate = d.positive_rate();
        assert!(rate > 0.005 && rate < 0.05, "rate {rate}");
    }

    #[test]
    fn ccfraud_schema() {
        let d = ccfraud(2000, 4);
        assert_eq!(d.records[0].features.len(), 7);
        assert!((d.positive_rate() - 0.0596).abs() < 0.02);
    }

    #[test]
    fn travel_insurance_schema() {
        let d = travel_insurance(2000, 5);
        assert_eq!(d.records[0].features.len(), 9);
        assert!(d.positive_rate() < 0.08);
    }

    #[test]
    fn all_five_present_with_table2_names() {
        let ds = all_datasets(0);
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "German",
                "Australia",
                "Credit Card Fraud",
                "ccFraud",
                "Travel Insurance"
            ]
        );
    }

    #[test]
    fn prompts_render_readably() {
        let d = german(10, 6);
        let text = d.records[0].feature_text();
        assert!(text.contains("credit amount: "));
        assert!(text.contains("age in years: "));
        assert!(!text.contains("NaN"));
    }
}
