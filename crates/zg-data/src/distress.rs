//! Financial distress identification — the fourth CALM task family the
//! paper's §4 names ("credit scoring, fraud detection, financial distress
//! identification, and claim analysis"). The CALM benchmark uses the
//! Polish companies bankruptcy dataset (financial ratios → bankruptcy
//! within the forecasting horizon, ≈4.8% positive); this generator
//! mirrors a representative subset of its ratio schema.

use crate::record::{Dataset, TaskKind};
use crate::synth::{FeatureSpec, SynthSpec};

/// Default scaled-down size (original: 43 405 firm-year observations).
pub const DEFAULT_SIZE: usize = 3000;

/// Polish-companies-style financial distress data: accounting ratios with
/// a planted insolvency signal, ≈4.8% positive (bankrupt).
pub fn polish_distress(n: usize, seed: u64) -> Dataset {
    SynthSpec {
        name: "Polish Distress",
        task: TaskKind::DistressIdentification,
        features: vec![
            FeatureSpec::Numeric {
                name: "net profit / total assets",
                mean: 0.05,
                std: 0.12,
                risk_weight: -0.85,
                round: false,
                range: (-1.5, 1.0),
            },
            FeatureSpec::Numeric {
                name: "total liabilities / total assets",
                mean: 0.48,
                std: 0.22,
                risk_weight: 0.8,
                round: false,
                range: (0.0, 2.5),
            },
            FeatureSpec::Numeric {
                name: "working capital / total assets",
                mean: 0.15,
                std: 0.2,
                risk_weight: -0.6,
                round: false,
                range: (-1.0, 1.0),
            },
            FeatureSpec::Numeric {
                name: "current assets / short-term liabilities",
                mean: 1.8,
                std: 1.2,
                risk_weight: -0.5,
                round: false,
                range: (0.0, 20.0),
            },
            FeatureSpec::Numeric {
                name: "retained earnings / total assets",
                mean: 0.12,
                std: 0.18,
                risk_weight: -0.55,
                round: false,
                range: (-2.0, 1.0),
            },
            FeatureSpec::Numeric {
                name: "EBIT / total assets",
                mean: 0.06,
                std: 0.13,
                risk_weight: -0.7,
                round: false,
                range: (-1.5, 1.0),
            },
            FeatureSpec::Numeric {
                name: "sales / total assets",
                mean: 1.3,
                std: 0.9,
                risk_weight: -0.2,
                round: false,
                range: (0.0, 12.0),
            },
            FeatureSpec::Numeric {
                name: "equity / total assets",
                mean: 0.45,
                std: 0.23,
                risk_weight: -0.45,
                round: false,
                range: (-1.0, 1.0),
            },
            FeatureSpec::Numeric {
                name: "operating expenses / short-term liabilities",
                mean: 4.2,
                std: 3.5,
                risk_weight: -0.15,
                round: false,
                range: (0.0, 50.0),
            },
            FeatureSpec::Numeric {
                name: "gross profit / sales",
                mean: 0.08,
                std: 0.15,
                risk_weight: -0.4,
                round: false,
                range: (-2.0, 1.0),
            },
            FeatureSpec::Categorical {
                name: "sector",
                choices: &[
                    ("manufacturing", 0.1),
                    ("construction", 0.35),
                    ("retail trade", 0.0),
                    ("transport", 0.15),
                    ("services", -0.2),
                ],
            },
            FeatureSpec::Numeric {
                name: "firm age in years",
                mean: 14.0,
                std: 9.0,
                risk_weight: -0.25,
                round: true,
                range: (1.0, 80.0),
            },
        ],
        positive_rate: 0.048,
        noise_std: 0.75,
        positive_name: "Yes",
        negative_name: "No",
    }
    .generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FeatureValue;

    #[test]
    fn schema_and_prior() {
        let d = polish_distress(3000, 1);
        assert_eq!(d.records[0].features.len(), 12);
        assert!(
            (d.positive_rate() - 0.048).abs() < 0.01,
            "{}",
            d.positive_rate()
        );
        assert_eq!(d.task, TaskKind::DistressIdentification);
    }

    #[test]
    fn leverage_predicts_distress() {
        let d = polish_distress(6000, 2);
        let mean_leverage = |bankrupt: bool| -> f64 {
            let xs: Vec<f64> = d
                .records
                .iter()
                .filter(|r| r.label == bankrupt)
                .map(|r| match &r.features[1].1 {
                    FeatureValue::Num(v) => *v as f64,
                    _ => unreachable!(),
                })
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_leverage(true) > mean_leverage(false) + 0.05,
            "bankrupt firms must carry more leverage"
        );
    }

    #[test]
    fn prompt_renders_ratios() {
        let d = polish_distress(5, 3);
        let text = d.records[0].feature_text();
        assert!(text.contains("net profit / total assets: "));
        assert!(text.contains("sector: "));
    }
}
