//! The generative income-prediction task from paper §3.2: "details like
//! mobile phone brand, model, price, and purchase year are utilized to
//! predict the user's income through regression-based models", combined
//! with QA-collected basic attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::FeatureValue;

/// One income-prediction example: user + device attributes, with a
/// ground-truth monthly income.
#[derive(Debug, Clone)]
pub struct IncomeRecord {
    /// Stable id.
    pub id: usize,
    /// Ordered features (same rendering conventions as [`crate::Record`]).
    pub features: Vec<(String, FeatureValue)>,
    /// Monthly income (currency units).
    pub income: f32,
}

impl IncomeRecord {
    /// `name: value, …` feature rendering.
    pub fn feature_text(&self) -> String {
        let parts: Vec<String> = self
            .features
            .iter()
            .map(|(n, v)| format!("{n}: {v}"))
            .collect();
        parts.join(", ")
    }

    /// Coarse income bucket used as the generation target (the LM predicts
    /// a bucket token rather than free-form numerals).
    pub fn bucket(&self) -> IncomeBucket {
        IncomeBucket::of(self.income)
    }
}

/// Income buckets — the answer vocabulary of the generative task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncomeBucket {
    /// < 3000 / month.
    Low,
    /// 3000–8000 / month.
    Medium,
    /// > 8000 / month.
    High,
}

impl IncomeBucket {
    /// Bucket for a given income.
    pub fn of(income: f32) -> Self {
        if income < 3000.0 {
            IncomeBucket::Low
        } else if income <= 8000.0 {
            IncomeBucket::Medium
        } else {
            IncomeBucket::High
        }
    }

    /// Surface answer string.
    pub fn text(self) -> &'static str {
        match self {
            IncomeBucket::Low => "low",
            IncomeBucket::Medium => "medium",
            IncomeBucket::High => "high",
        }
    }

    /// All buckets in order.
    pub const ALL: [IncomeBucket; 3] =
        [IncomeBucket::Low, IncomeBucket::Medium, IncomeBucket::High];
}

/// `(brand, model, base price, price premium factor on income)`
const PHONES: [(&str, &str, f32, f32); 8] = [
    ("Apple", "iPhone 15 Pro", 7999.0, 1.8),
    ("Apple", "iPhone 13", 4299.0, 1.3),
    ("Samsung", "Galaxy S24", 5999.0, 1.5),
    ("Samsung", "Galaxy A54", 2299.0, 0.9),
    ("Xiaomi", "14 Pro", 4599.0, 1.2),
    ("Xiaomi", "Redmi Note 13", 1399.0, 0.7),
    ("OPPO", "Find X7", 4999.0, 1.2),
    ("vivo", "Y100", 1599.0, 0.8),
];

const EDUCATION: [(&str, f32); 5] = [
    ("middle school", 0.6),
    ("high school", 0.8),
    ("vocational college", 1.0),
    ("bachelor degree", 1.4),
    ("master degree or above", 1.9),
];

const DISTRICTS: [(&str, f32); 4] = [
    ("rural county", 0.7),
    ("suburban district", 0.9),
    ("city center", 1.2),
    ("financial district", 1.5),
];

/// Generate `n` income records deterministically from `seed`.
pub fn income_dataset(n: usize, seed: u64) -> Vec<IncomeRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let (brand, model, price, premium) = PHONES[rng.gen_range(0..PHONES.len())];
            let (edu, edu_f) = EDUCATION[rng.gen_range(0..EDUCATION.len())];
            let (district, dist_f) = DISTRICTS[rng.gen_range(0..DISTRICTS.len())];
            let age: f32 = rng.gen_range(20.0..60.0f32).round();
            let gender = if rng.gen_bool(0.5) { "male" } else { "female" };
            let purchase_year = rng.gen_range(2020..=2025);
            let past_earnings = (2000.0
                + 4000.0 * edu_f * dist_f
                + 60.0 * (age - 20.0)
                + 800.0 * zg_tensor::randn_sample(&mut rng))
            .max(800.0)
            .round();
            // Ground truth: education, district, device premium, experience.
            let income = (1200.0
                + 2500.0 * edu_f * dist_f * premium
                + 45.0 * (age - 20.0)
                + 0.25 * past_earnings * 0.3
                + 600.0 * zg_tensor::randn_sample(&mut rng))
            .max(500.0)
            .round();
            IncomeRecord {
                id,
                features: vec![
                    ("gender".into(), FeatureValue::Cat(gender.into())),
                    ("age".into(), FeatureValue::Num(age)),
                    ("education level".into(), FeatureValue::Cat(edu.into())),
                    (
                        "residential area".into(),
                        FeatureValue::Cat(district.into()),
                    ),
                    ("past job earnings".into(), FeatureValue::Num(past_earnings)),
                    ("phone brand".into(), FeatureValue::Cat(brand.into())),
                    ("phone model".into(), FeatureValue::Cat(model.into())),
                    ("phone price".into(), FeatureValue::Num(price)),
                    (
                        "phone purchase year".into(),
                        FeatureValue::Num(purchase_year as f32),
                    ),
                ],
                income,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic() {
        let a = income_dataset(20, 1);
        let b = income_dataset(20, 1);
        assert_eq!(a[7].feature_text(), b[7].feature_text());
        assert_eq!(a[7].income, b[7].income);
    }

    #[test]
    fn buckets_partition_income() {
        assert_eq!(IncomeBucket::of(1000.0), IncomeBucket::Low);
        assert_eq!(IncomeBucket::of(5000.0), IncomeBucket::Medium);
        assert_eq!(IncomeBucket::of(20_000.0), IncomeBucket::High);
    }

    #[test]
    fn all_buckets_observed() {
        let recs = income_dataset(500, 2);
        for b in IncomeBucket::ALL {
            assert!(
                recs.iter().any(|r| r.bucket() == b),
                "bucket {b:?} never generated"
            );
        }
    }

    #[test]
    fn education_predicts_income() {
        let recs = income_dataset(3000, 3);
        let mean_income = |edu: &str| -> f32 {
            let xs: Vec<f32> = recs
                .iter()
                .filter(|r| matches!(&r.features[2].1, FeatureValue::Cat(s) if s == edu))
                .map(|r| r.income)
                .collect();
            xs.iter().sum::<f32>() / xs.len() as f32
        };
        assert!(mean_income("master degree or above") > mean_income("middle school") + 1500.0);
    }

    #[test]
    fn feature_text_mentions_phone() {
        let recs = income_dataset(5, 4);
        assert!(recs[0].feature_text().contains("phone brand: "));
        assert!(recs[0].feature_text().contains("phone purchase year: "));
    }
}
