//! Dataset serialization (JSON Lines) and summary statistics — the
//! plumbing a downstream user needs to persist generated datasets, load
//! their own, and sanity-check class balance and feature ranges.

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::record::{Dataset, FeatureValue, Record};

/// Write a dataset as JSON Lines: one header object, then one record per
/// line.
pub fn write_jsonl(ds: &Dataset, w: &mut impl Write) -> io::Result<()> {
    #[derive(Serialize)]
    struct Header<'a> {
        name: &'a str,
        task: &'a crate::record::TaskKind,
        positive_name: &'a str,
        negative_name: &'a str,
        n_records: usize,
    }
    let header = Header {
        name: &ds.name,
        task: &ds.task,
        positive_name: &ds.positive_name,
        negative_name: &ds.negative_name,
        n_records: ds.records.len(),
    };
    serde_json::to_writer(&mut *w, &header)?;
    w.write_all(b"\n")?;
    for rec in &ds.records {
        serde_json::to_writer(&mut *w, rec)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a dataset back from JSON Lines produced by [`write_jsonl`].
pub fn read_jsonl(r: &mut impl BufRead) -> io::Result<Dataset> {
    #[derive(Deserialize)]
    struct Header {
        name: String,
        task: crate::record::TaskKind,
        positive_name: String,
        negative_name: String,
        n_records: usize,
    }
    let mut line = String::new();
    r.read_line(&mut line)?;
    let header: Header =
        serde_json::from_str(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut records = Vec::with_capacity(header.n_records);
    line.clear();
    while r.read_line(&mut line)? > 0 {
        if !line.trim().is_empty() {
            let rec: Record = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            records.push(rec);
        }
        line.clear();
    }
    if records.len() != header.n_records {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "header promised {} records, found {}",
                header.n_records,
                records.len()
            ),
        ));
    }
    Ok(Dataset {
        name: header.name,
        task: header.task,
        records,
        positive_name: header.positive_name,
        negative_name: header.negative_name,
    })
}

/// Per-feature summary for [`DatasetStats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureStats {
    /// Feature name.
    pub name: String,
    /// For numerics: (min, mean, max); `None` for categoricals.
    pub numeric: Option<(f32, f32, f32)>,
    /// For categoricals: number of distinct values observed.
    pub cardinality: Option<usize>,
}

/// Dataset-level summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Record count.
    pub n: usize,
    /// Positive-class fraction.
    pub positive_rate: f64,
    /// Per-feature summaries (schema order).
    pub features: Vec<FeatureStats>,
}

/// Compute summary statistics for a dataset.
pub fn dataset_stats(ds: &Dataset) -> DatasetStats {
    let n_features = ds.records.first().map_or(0, |r| r.features.len());
    let mut features = Vec::with_capacity(n_features);
    for fi in 0..n_features {
        let name = ds.records[0].features[fi].0.clone();
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut num_count = 0usize;
        let mut cats = std::collections::BTreeSet::new();
        for rec in &ds.records {
            match &rec.features[fi].1 {
                FeatureValue::Num(v) => {
                    min = min.min(*v);
                    max = max.max(*v);
                    sum += *v as f64;
                    num_count += 1;
                }
                FeatureValue::Cat(s) => {
                    cats.insert(s.clone());
                }
            }
        }
        features.push(FeatureStats {
            name,
            numeric: (num_count > 0).then(|| (min, (sum / num_count.max(1) as f64) as f32, max)),
            cardinality: (!cats.is_empty()).then_some(cats.len()),
        });
    }
    DatasetStats {
        n: ds.records.len(),
        positive_rate: ds.positive_rate(),
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calm::german;

    #[test]
    fn jsonl_roundtrip() {
        let ds = german(40, 1);
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        let back = read_jsonl(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.records.len(), 40);
        assert_eq!(back.records[7].feature_text(), ds.records[7].feature_text());
        assert_eq!(back.records[7].label, ds.records[7].label);
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = german(10, 2);
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        // Drop the last line.
        let cut = buf.iter().rposition(|&b| b == b'\n').unwrap();
        let cut2 = buf[..cut].iter().rposition(|&b| b == b'\n').unwrap();
        let err = read_jsonl(&mut &buf[..cut2 + 1]).unwrap_err();
        assert!(err.to_string().contains("promised"));
    }

    #[test]
    fn corrupt_json_rejected() {
        let buf = b"{not json}\n".to_vec();
        assert!(read_jsonl(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn stats_cover_schema() {
        let ds = german(200, 3);
        let stats = dataset_stats(&ds);
        assert_eq!(stats.n, 200);
        assert_eq!(stats.features.len(), 20);
        let age = stats
            .features
            .iter()
            .find(|f| f.name == "age in years")
            .expect("age feature");
        let (min, mean, max) = age.numeric.expect("numeric");
        assert!(min >= 19.0 && max <= 75.0 && mean > min && mean < max);
        let purpose = stats
            .features
            .iter()
            .find(|f| f.name == "purpose")
            .expect("purpose");
        assert!(purpose.cardinality.unwrap() >= 5);
    }
}
