//! # zg-data
//!
//! Synthetic financial-credit datasets for the ZiGong reproduction.
//!
//! The paper evaluates on the CALM benchmark (Feng et al. 2023): German
//! Credit, Australian Credit, Credit Card Fraud, ccFraud, and Travel
//! Insurance — all gated or license-restricted — plus proprietary Didi
//! Behavior Card loan data. Per the substitution policy in DESIGN.md §2,
//! this crate generates synthetic datasets with the *published schemas*
//! (feature names, types, cardinalities), the *published class priors*,
//! and a planted, learnable latent risk signal, so every downstream code
//! path (instruction construction, SFT, influence estimation, metrics) is
//! exercised exactly as it would be on the real data.
//!
//! Also included: the temporal behavior-sequence generator whose AR(1)
//! information decay is the property TracSeq exploits, the generative
//! income-prediction task of paper §3.2, and financial sentiment data for
//! the Table 1 sentiment template.

mod auditing;
mod behavior;
mod calm;
mod distress;
mod income;
mod io;
mod record;
mod sentiment;
mod synth;

pub use auditing::{auditing_dataset, APPROVAL_LIMIT};
pub use behavior::{behavior_sequences, current_period, BehaviorConfig};
pub use calm::{
    all_datasets, australia, ccfraud, credit_card_fraud, default_sizes, german, travel_insurance,
};
pub use distress::{polish_distress, DEFAULT_SIZE as DISTRESS_DEFAULT_SIZE};
pub use income::{income_dataset, IncomeBucket, IncomeRecord};
pub use io::{dataset_stats, read_jsonl, write_jsonl, DatasetStats, FeatureStats};
pub use record::{Dataset, FeatureValue, Record, TaskKind};
pub use sentiment::{sentiment_dataset, Sentiment, SentimentExample};
pub use synth::{FeatureSpec, SynthSpec};
