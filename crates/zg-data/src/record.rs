//! Core data types: feature values, labeled records, and datasets with
//! deterministic train/test splitting.

use serde::{Deserialize, Serialize};

/// A single feature value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureValue {
    /// Numeric feature.
    Num(f32),
    /// Categorical feature.
    Cat(String),
}

impl std::fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Render integers without a trailing ".0" — prompts read better.
            FeatureValue::Num(v) if v.fract() == 0.0 && v.abs() < 1e7 => {
                write!(f, "{}", *v as i64)
            }
            FeatureValue::Num(v) => write!(f, "{v:.2}"),
            FeatureValue::Cat(s) => write!(f, "{s}"),
        }
    }
}

/// A labeled example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Stable id within its dataset.
    pub id: usize,
    /// Ordered feature list (name, value).
    pub features: Vec<(String, FeatureValue)>,
    /// Binary label: `true` is the positive class (bad credit / fraud /
    /// fraudulent claim).
    pub label: bool,
    /// Time period index for sequential behavior data; `None` for tabular
    /// datasets.
    pub time: Option<u32>,
    /// User id for sequential behavior data (several records share a user).
    pub user: Option<usize>,
}

impl Record {
    /// Serialize features as `name: value` pairs joined by `", "` — the
    /// text form embedded in instruction prompts.
    pub fn feature_text(&self) -> String {
        let parts: Vec<String> = self
            .features
            .iter()
            .map(|(name, v)| format!("{name}: {v}"))
            .collect();
        parts.join(", ")
    }

    /// Numeric feature vector: numerics pass through, categoricals expand
    /// to an 8-bucket hashed one-hot (so linear models can learn
    /// per-category effects without a dataset-level vocabulary). Used by
    /// the agent model and expert baselines.
    pub fn numeric_features(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.features.len() * 2);
        for (_, v) in &self.features {
            match v {
                FeatureValue::Num(x) => out.push(*x),
                FeatureValue::Cat(s) => {
                    let h = s
                        .bytes()
                        .fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
                    let bucket = (h % 8) as usize;
                    for i in 0..8 {
                        out.push((i == bucket) as u8 as f32);
                    }
                }
            }
        }
        out
    }
}

/// Task family a dataset belongs to (drives template choice in
/// `zg-instruct`, mirroring the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Credit scoring (German, Australia): good/bad applicant.
    CreditScoring,
    /// Fraud detection (Credit Card Fraud, ccFraud): yes/no fraudulent.
    FraudDetection,
    /// Insurance claim analysis (Travel Insurance): yes/no fraudulent claim.
    ClaimAnalysis,
    /// Financial distress identification (Polish bankruptcy): yes/no
    /// distressed — the fourth CALM task family named in paper §4.
    DistressIdentification,
    /// Sequential behavior risk (Behavior Card): yes/no future default.
    BehaviorRisk,
    /// Financial auditing (Figure 1 workflow): yes/no irregular journal
    /// entry.
    FinancialAuditing,
}

/// A named dataset with metadata used by templates and metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name as it appears in the paper's Table 2.
    pub name: String,
    /// Task family.
    pub task: TaskKind,
    /// All records.
    pub records: Vec<Record>,
    /// Name of the positive class in prompts (e.g. "bad", "Yes").
    pub positive_name: String,
    /// Name of the negative class in prompts (e.g. "good", "No").
    pub negative_name: String,
}

impl Dataset {
    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.label).count() as f64 / self.records.len() as f64
    }

    /// Deterministic split: every `k`-th record (by position after a seeded
    /// shuffle at generation time) goes to test. `test_fraction` in (0,1).
    pub fn split(&self, test_fraction: f64) -> (Vec<&Record>, Vec<&Record>) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test fraction must be in [0,1)"
        );
        let stride = if test_fraction <= 0.0 {
            usize::MAX
        } else {
            (1.0 / test_fraction).round().max(2.0) as usize
        };
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if stride != usize::MAX && i % stride == stride - 1 {
                test.push(r);
            } else {
                train.push(r);
            }
        }
        (train, test)
    }

    /// A class-balanced subset of the test split ("The related studies
    /// balance the data for the test set" — paper Table 2 footnote).
    pub fn balanced_test(&self, test_fraction: f64) -> Vec<&Record> {
        let (_, test) = self.split(test_fraction);
        let pos: Vec<&Record> = test.iter().copied().filter(|r| r.label).collect();
        let neg: Vec<&Record> = test.iter().copied().filter(|r| !r.label).collect();
        let n = pos.len().min(neg.len());
        let mut out = Vec::with_capacity(2 * n);
        for i in 0..n {
            out.push(pos[i]);
            out.push(neg[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, label: bool) -> Record {
        Record {
            id,
            features: vec![
                ("age".into(), FeatureValue::Num(35.0)),
                ("job".into(), FeatureValue::Cat("skilled".into())),
                ("amount".into(), FeatureValue::Num(2500.5)),
            ],
            label,
            time: None,
            user: None,
        }
    }

    fn ds(n: usize, pos_every: usize) -> Dataset {
        Dataset {
            name: "test".into(),
            task: TaskKind::CreditScoring,
            records: (0..n).map(|i| rec(i, i % pos_every == 0)).collect(),
            positive_name: "bad".into(),
            negative_name: "good".into(),
        }
    }

    #[test]
    fn feature_text_format() {
        let r = rec(0, false);
        assert_eq!(r.feature_text(), "age: 35, job: skilled, amount: 2500.50");
    }

    #[test]
    fn numeric_features_stable() {
        let r = rec(0, false);
        let a = r.numeric_features();
        let b = r.numeric_features();
        assert_eq!(a, b);
        // age (1) + job one-hot (8) + amount (1).
        assert_eq!(a.len(), 10);
        assert_eq!(a[0], 35.0);
        assert_eq!(a[1..9].iter().sum::<f32>(), 1.0, "one-hot sums to 1");
    }

    #[test]
    fn positive_rate_counts() {
        let d = ds(100, 4);
        assert!((d.positive_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn split_fractions_roughly_honored() {
        let d = ds(1000, 4);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len() + test.len(), 1000);
        let frac = test.len() as f64 / 1000.0;
        assert!((frac - 0.2).abs() < 0.02, "test fraction {frac}");
    }

    #[test]
    fn split_deterministic() {
        let d = ds(100, 3);
        let (_, t1) = d.split(0.25);
        let (_, t2) = d.split(0.25);
        let ids1: Vec<usize> = t1.iter().map(|r| r.id).collect();
        let ids2: Vec<usize> = t2.iter().map(|r| r.id).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn balanced_test_is_balanced() {
        let d = ds(1000, 10);
        let bt = d.balanced_test(0.3);
        let pos = bt.iter().filter(|r| r.label).count();
        assert_eq!(pos * 2, bt.len());
        assert!(!bt.is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(FeatureValue::Num(3.0).to_string(), "3");
        assert_eq!(FeatureValue::Num(3.25).to_string(), "3.25");
        assert_eq!(FeatureValue::Cat("abc".into()).to_string(), "abc");
    }
}
