//! Synthetic financial-news sentiment data for the Sentiment Analysis
//! template in the paper's Table 1 (`Answer: {good/neutral/bad}`).
//! Sentences are built from finance-domain templates with polarity-bearing
//! verb phrases, so the lexical signal is learnable by a small LM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentiment label, using the paper's answer vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sentiment {
    /// Positive financial news.
    Good,
    /// Neutral/informational.
    Neutral,
    /// Negative financial news.
    Bad,
}

impl Sentiment {
    /// Surface answer string (paper Table 1).
    pub fn text(self) -> &'static str {
        match self {
            Sentiment::Good => "good",
            Sentiment::Neutral => "neutral",
            Sentiment::Bad => "bad",
        }
    }

    /// Parse an answer string (case-insensitive, trimmed).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "good" => Some(Sentiment::Good),
            "neutral" => Some(Sentiment::Neutral),
            "bad" => Some(Sentiment::Bad),
            _ => None,
        }
    }

    /// All labels.
    pub const ALL: [Sentiment; 3] = [Sentiment::Good, Sentiment::Neutral, Sentiment::Bad];
}

/// A sentence with its sentiment label.
#[derive(Debug, Clone)]
pub struct SentimentExample {
    /// The sentence shown in the prompt.
    pub text: String,
    /// Ground-truth sentiment.
    pub label: Sentiment,
}

const SUBJECTS: [&str; 8] = [
    "The regional bank",
    "The fintech startup",
    "The insurance group",
    "The credit union",
    "The asset manager",
    "The mortgage lender",
    "The payments company",
    "The consumer finance arm",
];

const GOOD_PHRASES: [&str; 6] = [
    "reported record quarterly profits",
    "beat earnings expectations by a wide margin",
    "announced a major expansion of its loan book",
    "saw default rates fall to a five-year low",
    "secured a landmark partnership deal",
    "raised its full-year guidance",
];

const BAD_PHRASES: [&str; 6] = [
    "disclosed heavy credit losses",
    "missed earnings expectations badly",
    "warned of rising loan defaults",
    "suffered a sharp drop in deposits",
    "faces a regulatory investigation into its lending",
    "cut its dividend amid mounting bad debt",
];

const NEUTRAL_PHRASES: [&str; 6] = [
    "published its scheduled quarterly report",
    "held its annual shareholder meeting",
    "appointed a new head of compliance",
    "rebranded its retail banking unit",
    "moved its headquarters downtown",
    "updated its mobile application",
];

const TAILS: [&str; 4] = [
    "this quarter",
    "according to filings",
    "analysts said",
    "on Tuesday",
];

/// Generate `n` labeled sentences, class-balanced, deterministic in `seed`.
pub fn sentiment_dataset(n: usize, seed: u64) -> Vec<SentimentExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let label = Sentiment::ALL[i % 3];
            let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
            let phrase = match label {
                Sentiment::Good => GOOD_PHRASES[rng.gen_range(0..GOOD_PHRASES.len())],
                Sentiment::Bad => BAD_PHRASES[rng.gen_range(0..BAD_PHRASES.len())],
                Sentiment::Neutral => NEUTRAL_PHRASES[rng.gen_range(0..NEUTRAL_PHRASES.len())],
            };
            let tail = TAILS[rng.gen_range(0..TAILS.len())];
            SentimentExample {
                text: format!("{subject} {phrase} {tail}."),
                label,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_classes() {
        let ds = sentiment_dataset(300, 1);
        for lab in Sentiment::ALL {
            assert_eq!(ds.iter().filter(|e| e.label == lab).count(), 100);
        }
    }

    #[test]
    fn parse_roundtrip_and_rejects_noise() {
        for lab in Sentiment::ALL {
            assert_eq!(Sentiment::parse(lab.text()), Some(lab));
            assert_eq!(Sentiment::parse(&lab.text().to_uppercase()), Some(lab));
        }
        assert_eq!(Sentiment::parse("excellent"), None);
        assert_eq!(Sentiment::parse(""), None);
    }

    #[test]
    fn deterministic() {
        let a = sentiment_dataset(10, 5);
        let b = sentiment_dataset(10, 5);
        assert_eq!(a[3].text, b[3].text);
    }

    #[test]
    fn lexical_signal_separates_classes() {
        let ds = sentiment_dataset(600, 2);
        // Crude lexicon check: "record"/"beat" only in good, "losses"/"warned"
        // only in bad.
        for e in &ds {
            if e.text.contains("record quarterly profits") {
                assert_eq!(e.label, Sentiment::Good);
            }
            if e.text.contains("heavy credit losses") {
                assert_eq!(e.label, Sentiment::Bad);
            }
        }
    }
}
