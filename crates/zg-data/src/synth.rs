//! Synthetic tabular data machinery: a declarative feature schema plus a
//! latent linear risk model. Labels are thresholded latent risk, with the
//! threshold picked empirically so the positive rate matches the real
//! dataset's class prior exactly. Label noise controls the Bayes error —
//! the planted signal is what makes the classification tasks *learnable*,
//! which the real CALM datasets are and a uniform-random substitute would
//! not be.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{Dataset, FeatureValue, Record, TaskKind};

/// Declarative description of one synthetic feature.
pub enum FeatureSpec {
    /// Gaussian numeric feature, clamped and optionally rounded.
    Numeric {
        /// Feature name as it appears in prompts.
        name: &'static str,
        /// Distribution mean.
        mean: f32,
        /// Distribution standard deviation.
        std: f32,
        /// Contribution of the standardized value to latent risk.
        risk_weight: f32,
        /// Round to integer (ages, counts, months).
        round: bool,
        /// Clamp range.
        range: (f32, f32),
    },
    /// Categorical feature with per-category risk contributions.
    Categorical {
        /// Feature name.
        name: &'static str,
        /// `(label, risk contribution)` per category, sampled uniformly.
        choices: &'static [(&'static str, f32)],
    },
}

/// Schema + label model for one synthetic dataset.
pub struct SynthSpec {
    /// Dataset display name (paper Table 2 row).
    pub name: &'static str,
    /// Task family.
    pub task: TaskKind,
    /// Feature schema.
    pub features: Vec<FeatureSpec>,
    /// Target positive rate (real dataset's class prior).
    pub positive_rate: f64,
    /// Std of Gaussian noise added to latent risk (Bayes error control).
    pub noise_std: f32,
    /// Positive/negative class names for prompts.
    pub positive_name: &'static str,
    /// Negative class name.
    pub negative_name: &'static str,
}

impl SynthSpec {
    /// Generate `n` records deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut records = Vec::with_capacity(n);
        let mut risks = Vec::with_capacity(n);
        for id in 0..n {
            let mut feats = Vec::with_capacity(self.features.len());
            let mut risk = 0.0f32;
            for spec in &self.features {
                match spec {
                    FeatureSpec::Numeric {
                        name,
                        mean,
                        std,
                        risk_weight,
                        round,
                        range,
                    } => {
                        let z = zg_tensor::randn_sample(&mut rng);
                        let mut v = (mean + std * z).clamp(range.0, range.1);
                        if *round {
                            v = v.round();
                        }
                        risk += risk_weight * z;
                        feats.push((name.to_string(), FeatureValue::Num(v)));
                    }
                    FeatureSpec::Categorical { name, choices } => {
                        let (label, r) = choices[rng.gen_range(0..choices.len())];
                        risk += r;
                        feats.push((name.to_string(), FeatureValue::Cat(label.to_string())));
                    }
                }
            }
            risk += self.noise_std * zg_tensor::randn_sample(&mut rng);
            risks.push(risk);
            records.push(Record {
                id,
                features: feats,
                label: false, // assigned below once the threshold is known
                time: None,
                user: None,
            });
        }
        // Threshold at the empirical quantile matching the target prior.
        let mut sorted = risks.clone();
        // INVARIANT: risk scores are finite by construction.
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite risks"));
        let cut_idx = ((1.0 - self.positive_rate) * n as f64).floor() as usize;
        let threshold = sorted[cut_idx.min(n.saturating_sub(1))];
        for (rec, &risk) in records.iter_mut().zip(&risks) {
            rec.label = risk >= threshold;
        }
        Dataset {
            name: self.name.to_string(),
            task: self.task,
            records,
            positive_name: self.positive_name.to_string(),
            negative_name: self.negative_name.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> SynthSpec {
        SynthSpec {
            name: "demo",
            task: TaskKind::CreditScoring,
            features: vec![
                FeatureSpec::Numeric {
                    name: "amount",
                    mean: 1000.0,
                    std: 300.0,
                    risk_weight: 1.0,
                    round: true,
                    range: (0.0, 1e6),
                },
                FeatureSpec::Categorical {
                    name: "history",
                    choices: &[("clean", -0.8), ("late", 0.8)],
                },
            ],
            positive_rate: 0.3,
            noise_std: 0.2,
            positive_name: "bad",
            negative_name: "good",
        }
    }

    #[test]
    fn positive_rate_matches_exactly_ish() {
        let d = demo_spec().generate(2000, 1);
        assert!(
            (d.positive_rate() - 0.3).abs() < 0.01,
            "{}",
            d.positive_rate()
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let a = demo_spec().generate(50, 42);
        let b = demo_spec().generate(50, 42);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.feature_text(), y.feature_text());
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = demo_spec().generate(50, 1);
        let b = demo_spec().generate(50, 2);
        assert!(a
            .records
            .iter()
            .zip(&b.records)
            .any(|(x, y)| x.feature_text() != y.feature_text()));
    }

    #[test]
    fn signal_is_learnable() {
        // A one-split decision stump on the categorical feature must beat
        // chance by a margin, i.e. the planted signal exists.
        let d = demo_spec().generate(4000, 7);
        let (late_pos, late_tot, clean_pos, clean_tot) =
            d.records
                .iter()
                .fold((0usize, 0usize, 0usize, 0usize), |(lp, lt, cp, ct), r| {
                    let late = matches!(&r.features[1].1, FeatureValue::Cat(s) if s == "late");
                    if late {
                        (lp + r.label as usize, lt + 1, cp, ct)
                    } else {
                        (lp, lt, cp + r.label as usize, ct + 1)
                    }
                });
        let p_late = late_pos as f64 / late_tot as f64;
        let p_clean = clean_pos as f64 / clean_tot as f64;
        assert!(
            p_late > p_clean + 0.2,
            "late {p_late:.3} vs clean {p_clean:.3}: signal too weak"
        );
    }

    #[test]
    fn numeric_rounding_and_clamping() {
        let spec = SynthSpec {
            features: vec![FeatureSpec::Numeric {
                name: "count",
                mean: 2.0,
                std: 5.0,
                risk_weight: 0.0,
                round: true,
                range: (0.0, 10.0),
            }],
            ..demo_spec()
        };
        let d = spec.generate(500, 3);
        for r in &d.records {
            match &r.features[0].1 {
                FeatureValue::Num(v) => {
                    assert!(*v >= 0.0 && *v <= 10.0 && v.fract() == 0.0);
                }
                _ => panic!("expected numeric"),
            }
        }
    }
}
