//! Bootstrap confidence intervals for evaluation metrics. Miniature-scale
//! test sets make point estimates noisy; EXPERIMENTS.md reports intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided bootstrap percentile interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Percentile bootstrap for `metric` over indexable observations.
///
/// `metric` receives a resampled index set and must return the statistic.
/// `level` is the confidence level (e.g. 0.95).
pub fn bootstrap_ci(
    n_obs: usize,
    resamples: usize,
    level: f64,
    seed: u64,
    metric: impl Fn(&[usize]) -> f64,
) -> Interval {
    let _span = zg_trace::span_arg("eval.bootstrap", resamples as i64);
    assert!(n_obs > 0, "need at least one observation");
    assert!((0.0..1.0).contains(&level) && level > 0.5, "bad level");
    let full: Vec<usize> = (0..n_obs).collect();
    let point = metric(&full);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut sample = vec![0usize; n_obs];
    for _ in 0..resamples {
        for s in &mut sample {
            *s = rng.gen_range(0..n_obs);
        }
        stats.push(metric(&sample));
    }
    // INVARIANT: a NaN metric value is a caller bug; fail loudly rather than mis-sort.
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    Interval {
        point,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_point_for_mean() {
        let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(data.len(), 500, 0.95, 1, |idx| {
            idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
        });
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!((ci.point - 4.5).abs() < 1e-9);
        assert!(ci.hi - ci.lo < 2.0, "CI too wide: {ci:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = [1.0f64, 2.0, 3.0, 4.0];
        let f = |idx: &[usize]| idx.iter().map(|&i| data[i]).sum::<f64>();
        let a = bootstrap_ci(4, 100, 0.9, 7, f);
        let b = bootstrap_ci(4, 100, 0.9, 7, f);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_metric_zero_width() {
        let ci = bootstrap_ci(10, 200, 0.95, 3, |_| 0.42);
        assert_eq!(ci.lo, 0.42);
        assert_eq!(ci.hi, 0.42);
    }

    #[test]
    fn wider_at_higher_level() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64 * 1.37).sin()).collect();
        let f = |idx: &[usize]| idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64;
        let narrow = bootstrap_ci(50, 400, 0.8, 5, f);
        let wide = bootstrap_ci(50, 400, 0.99, 5, f);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }
}
