//! Probability-calibration metrics. A credit model's scores feed pricing
//! and provisioning, so calibration matters as much as discrimination:
//! Brier score, expected calibration error (ECE), and reliability bins.

use serde::{Deserialize, Serialize};

/// Brier score: mean squared error between scores and binary outcomes.
/// Lower is better; 0.25 is the score of a constant 0.5 predictor.
pub fn brier_score(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    assert!(!scores.is_empty(), "empty inputs");
    scores
        .iter()
        .zip(labels)
        .map(|(&s, &l)| {
            let y = l as u8 as f64;
            (s - y) * (s - y)
        })
        .sum::<f64>()
        / scores.len() as f64
}

/// One reliability bin: predicted vs observed positive rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Bin lower edge (inclusive).
    pub lo: f64,
    /// Bin upper edge (exclusive; last bin inclusive).
    pub hi: f64,
    /// Number of scores in the bin.
    pub count: usize,
    /// Mean predicted probability.
    pub mean_score: f64,
    /// Observed positive fraction.
    pub observed: f64,
}

/// Equal-width reliability diagram bins over `[0, 1]`.
pub fn reliability_bins(scores: &[f64], labels: &[bool], n_bins: usize) -> Vec<ReliabilityBin> {
    assert_eq!(scores.len(), labels.len());
    assert!(n_bins >= 1, "need at least one bin");
    let mut bins: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0); n_bins]; // (count, score sum, pos sum)
    for (&s, &l) in scores.iter().zip(labels) {
        assert!((0.0..=1.0).contains(&s), "score {s} outside [0,1]");
        let idx = ((s * n_bins as f64) as usize).min(n_bins - 1);
        bins[idx].0 += 1;
        bins[idx].1 += s;
        bins[idx].2 += l as u8 as f64;
    }
    bins.into_iter()
        .enumerate()
        .map(|(i, (count, ssum, psum))| ReliabilityBin {
            lo: i as f64 / n_bins as f64,
            hi: (i + 1) as f64 / n_bins as f64,
            count,
            mean_score: if count == 0 { 0.0 } else { ssum / count as f64 },
            observed: if count == 0 { 0.0 } else { psum / count as f64 },
        })
        .collect()
}

/// Expected calibration error: count-weighted mean |predicted − observed|
/// over reliability bins.
pub fn expected_calibration_error(scores: &[f64], labels: &[bool], n_bins: usize) -> f64 {
    let bins = reliability_bins(scores, labels, n_bins);
    let n: usize = bins.iter().map(|b| b.count).sum();
    if n == 0 {
        return 0.0;
    }
    bins.iter()
        .map(|b| (b.count as f64 / n as f64) * (b.mean_score - b.observed).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_perfect_and_worst() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
        assert!((brier_score(&[0.5, 0.5], &[true, false]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfectly_calibrated_ece_zero() {
        // Scores equal to the observed rate within each bin.
        let scores = vec![0.25; 4];
        let labels = vec![true, false, false, false];
        let ece = expected_calibration_error(&scores, &labels, 4);
        assert!(ece < 1e-12, "ece {ece}");
    }

    #[test]
    fn overconfident_model_has_positive_ece() {
        // Predicts 0.95 but only half are positive.
        let scores = vec![0.95; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&scores, &labels, 10);
        assert!((ece - 0.45).abs() < 1e-9, "ece {ece}");
    }

    #[test]
    fn bins_partition_counts() {
        let scores = vec![0.05, 0.15, 0.55, 0.95, 1.0];
        let labels = vec![false, false, true, true, true];
        let bins = reliability_bins(&scores, &labels, 10);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[9].count, 2); // 0.95 and the boundary 1.0
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_score_panics() {
        reliability_bins(&[1.5], &[true], 4);
    }
}
