//! Binary confusion matrix and derived metrics.

use serde::{Deserialize, Serialize};

/// Binary confusion counts. "Positive" is the dataset's positive class
/// (bad credit / fraud / claim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Accumulate one observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Build from parallel prediction/label slices.
    pub fn from_slices(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len());
        let mut cm = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            cm.record(p, a);
        }
        cm
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / n as f64
    }

    /// Precision of the positive class; 0 when undefined.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall of the positive class; 0 when undefined.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 of the positive class; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Macro-F1: mean of the F1 of each class (positive and negative).
    pub fn macro_f1(&self) -> f64 {
        let f1_pos = self.f1();
        // F1 of the negative class: swap roles.
        let neg = ConfusionMatrix {
            tp: self.tn,
            fp: self.fn_,
            tn: self.tp,
            fn_: self.fp,
        };
        (f1_pos + neg.f1()) / 2.0
    }

    /// Matthews correlation coefficient; 0 when undefined.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (
            self.tp as f64,
            self.fp as f64,
            self.tn as f64,
            self.fn_ as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            return 0.0;
        }
        (tp * tn - fp * fn_) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let cm = ConfusionMatrix::from_slices(&[true, false, true], &[true, false, true]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.mcc(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn inverted_classifier() {
        let cm = ConfusionMatrix::from_slices(&[false, true], &[true, false]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.mcc(), -1.0);
    }

    #[test]
    fn known_values() {
        // tp=3 fp=1 tn=4 fn=2
        let cm = ConfusionMatrix {
            tp: 3,
            fp: 1,
            tn: 4,
            fn_: 2,
        };
        assert!((cm.accuracy() - 0.7).abs() < 1e-12);
        assert!((cm.precision() - 0.75).abs() < 1e-12);
        assert!((cm.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((cm.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_nan() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.mcc(), 0.0);
        // All-negative predictions on all-negative labels.
        let cm = ConfusionMatrix::from_slices(&[false; 5], &[false; 5]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 0.0); // no positives to find
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn majority_class_predictor_on_imbalance() {
        // 95 negatives, 5 positives; always predict negative.
        let labels: Vec<bool> = (0..100).map(|i| i < 5).collect();
        let preds = vec![false; 100];
        let cm = ConfusionMatrix::from_slices(&preds, &labels);
        assert!((cm.accuracy() - 0.95).abs() < 1e-12);
        assert_eq!(cm.f1(), 0.0, "F1 exposes the trivial classifier");
    }
}
