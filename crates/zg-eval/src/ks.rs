//! The Kolmogorov–Smirnov (KS) statistic and ROC-AUC over model scores.
//!
//! KS is the standard discrimination measure in financial risk control
//! (paper §5, Figure 2): the maximum vertical gap between the score CDFs
//! of the positive and negative classes, equivalently `max_t |TPR(t) −
//! FPR(t)|` over thresholds.

/// KS statistic in `[0, 1]` from scores (higher = more positive) and
/// binary labels. Returns 0 when either class is absent.
pub fn ks_statistic(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let _span = zg_trace::span_arg("eval.ks", scores.len() as i64);
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
            .expect("scores must be finite")
    });
    // Sweep thresholds from high to low, tracking TPR − FPR. Ties in score
    // must move together, so only evaluate the gap at score boundaries.
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut best = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let s = scores[idx[i]];
        while i < idx.len() && scores[idx[i]] == s {
            if labels[idx[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let gap = (tp as f64 / n_pos as f64 - fp as f64 / n_neg as f64).abs();
        best = best.max(gap);
    }
    best
}

/// ROC-AUC via the rank-sum (Mann–Whitney) formulation, with tie
/// correction. Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let _span = zg_trace::span_arg("eval.auc", scores.len() as i64);
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // Average ranks over ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j < idx.len() && scores[idx[j]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based average
        for k in i..j {
            ranks[idx[k]] = avg_rank;
        }
        i = j;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        assert!((ks_statistic(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_separation() {
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let labels = vec![true, false, true, false];
        assert_eq!(ks_statistic(&scores, &labels), 0.0);
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_still_positive_ks() {
        // KS uses |TPR - FPR|, so an anti-correlated scorer has high KS too.
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![true, true, false, false];
        assert!((ks_statistic(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!(roc_auc(&scores, &labels) < 0.01);
    }

    #[test]
    fn known_partial_overlap() {
        // pos: 0.9, 0.6, 0.4 ; neg: 0.7, 0.3, 0.1
        let scores = vec![0.9, 0.6, 0.4, 0.7, 0.3, 0.1];
        let labels = vec![true, true, true, false, false, false];
        // Threshold sweep: best gap is 2/3 (after 0.4: TPR=1, FPR=1/3).
        assert!((ks_statistic(&scores, &labels) - 2.0 / 3.0).abs() < 1e-12);
        // AUC: pairs where pos > neg: (0.9,all 3)=3, (0.6, 0.3/0.1)=2, (0.4, 0.3/0.1)=2 -> 7/9.
        assert!((roc_auc(&scores, &labels) - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class() {
        assert_eq!(ks_statistic(&[0.5, 0.6], &[true, true]), 0.0);
        assert_eq!(roc_auc(&[0.5, 0.6], &[false, false]), 0.5);
    }

    #[test]
    fn ties_handled() {
        let scores = vec![0.5, 0.5, 0.2, 0.2];
        let labels = vec![true, false, true, false];
        assert_eq!(ks_statistic(&scores, &labels), 0.0);
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_monotone_in_separation_quality() {
        // Increasing noise should not increase KS (statistically, with a
        // fixed pattern here deterministic).
        let clean = ks_statistic(
            &[0.9, 0.8, 0.7, 0.3, 0.2, 0.1],
            &[true, true, true, false, false, false],
        );
        let noisy = ks_statistic(
            &[0.9, 0.3, 0.7, 0.8, 0.2, 0.1],
            &[true, true, true, false, false, false],
        );
        assert!(clean >= noisy);
    }
}
