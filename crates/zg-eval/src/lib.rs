//! # zg-eval
//!
//! Evaluation metrics for the ZiGong reproduction, matching the paper's
//! protocol: Accuracy / F1 / **Miss** for the Table 2 benchmark cells, the
//! **KS statistic** (the financial risk-control discrimination measure
//! used in Figure 2), ROC-AUC, confusion-matrix utilities, and bootstrap
//! confidence intervals.

mod bootstrap;
mod calibration;
mod confusion;
mod ks;
mod lift;
mod metrics;

pub use bootstrap::{bootstrap_ci, Interval};
pub use calibration::{brier_score, expected_calibration_error, reliability_bins, ReliabilityBin};
pub use confusion::ConfusionMatrix;
pub use ks::{ks_statistic, roc_auc};
pub use lift::{gains_table, precision_at_k, recall_at_k, GainsBand};
pub use metrics::{evaluate_binary, evaluate_multiclass, EvalResult, Prediction};
