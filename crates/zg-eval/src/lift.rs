//! Lift and gains analysis — the decile tables risk teams actually read.
//! A gains table sorts the population by model score, cuts it into
//! equal-size bands, and reports per-band capture of the positive class;
//! cumulative lift at depth `d` is capture rate divided by `d`.

use serde::{Deserialize, Serialize};

/// One band (decile) of a gains table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainsBand {
    /// 1-based band index (1 = highest scores).
    pub band: usize,
    /// Observations in the band.
    pub count: usize,
    /// Positives in the band.
    pub positives: usize,
    /// Cumulative fraction of all positives captured through this band.
    pub cumulative_capture: f64,
    /// Cumulative lift: capture / population depth.
    pub cumulative_lift: f64,
}

/// Build a gains table with `n_bands` equal-size score-ordered bands.
pub fn gains_table(scores: &[f64], labels: &[bool], n_bands: usize) -> Vec<GainsBand> {
    assert_eq!(scores.len(), labels.len());
    assert!(
        n_bands >= 1 && scores.len() >= n_bands,
        "too few observations"
    );
    let total_pos = labels.iter().filter(|&&l| l).count();
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    let n = scores.len();
    let mut bands = Vec::with_capacity(n_bands);
    let mut cum_pos = 0usize;
    let mut cursor = 0usize;
    for band in 1..=n_bands {
        // Equal-size bands with the remainder spread over the first bands.
        let size = n / n_bands + usize::from(band <= n % n_bands);
        let slice = &idx[cursor..cursor + size];
        cursor += size;
        let positives = slice.iter().filter(|&&i| labels[i]).count();
        cum_pos += positives;
        let depth = cursor as f64 / n as f64;
        let capture = if total_pos == 0 {
            0.0
        } else {
            cum_pos as f64 / total_pos as f64
        };
        bands.push(GainsBand {
            band,
            count: size,
            positives,
            cumulative_capture: capture,
            cumulative_lift: if depth == 0.0 { 0.0 } else { capture / depth },
        });
    }
    bands
}

/// Precision among the top-`k` highest-scoring observations.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    idx[..k].iter().filter(|&&i| labels[i]).count() as f64 / k as f64
}

/// Recall of the positive class among the top-`k` scores.
pub fn recall_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return 0.0;
    }
    let k = k.min(scores.len());
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    idx[..k].iter().filter(|&&i| labels[i]).count() as f64 / total_pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_top_band_captures_all() {
        // 10 obs, 2 positives with the highest scores.
        let scores: Vec<f64> = (0..10).map(|i| 1.0 - i as f64 * 0.1).collect();
        let labels: Vec<bool> = (0..10).map(|i| i < 2).collect();
        let table = gains_table(&scores, &labels, 5);
        assert_eq!(table[0].positives, 2);
        assert!((table[0].cumulative_capture - 1.0).abs() < 1e-12);
        assert!((table[0].cumulative_lift - 5.0).abs() < 1e-12);
        assert!((table[4].cumulative_lift - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_model_lift_near_one() {
        // Alternating labels with score == index parity noise.
        let scores: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let table = gains_table(&scores, &labels, 10);
        // Final band lift is always exactly 1.
        assert!((table[9].cumulative_lift - 1.0).abs() < 1e-12);
        // Top-band lift should be near 1 for an uninformative model.
        assert!(table[0].cumulative_lift < 1.5);
    }

    #[test]
    fn band_sizes_partition() {
        let scores: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let labels = vec![false; 23];
        let table = gains_table(&scores, &labels, 5);
        let total: usize = table.iter().map(|b| b.count).sum();
        assert_eq!(total, 23);
        // Remainder 3 spread over the first bands: sizes 5,5,5,4,4.
        assert_eq!(
            table.iter().map(|b| b.count).collect::<Vec<_>>(),
            vec![5, 5, 5, 4, 4]
        );
    }

    #[test]
    fn precision_and_recall_at_k() {
        let scores = vec![0.9, 0.8, 0.7, 0.2, 0.1];
        let labels = vec![true, false, true, false, true];
        assert!((precision_at_k(&scores, &labels, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&scores, &labels, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&scores, &labels, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&scores, &labels, 5), 1.0);
    }

    #[test]
    fn degenerate_no_positives() {
        let scores = vec![0.5, 0.4];
        let labels = vec![false, false];
        assert_eq!(recall_at_k(&scores, &labels, 1), 0.0);
        let table = gains_table(&scores, &labels, 2);
        assert_eq!(table[1].cumulative_capture, 0.0);
    }
}
