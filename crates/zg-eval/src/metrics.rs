//! The paper's Table 2 evaluation protocol: Accuracy, F1, and Miss.
//!
//! A model's raw text answer either parses to a label or counts as a
//! **Miss** (CALM's "missing" metric — the model produced something
//! unusable). Misses count against accuracy, and for F1 a missed example
//! is scored as a negative-class prediction so it cannot inflate
//! precision on the positive class.

use serde::{Deserialize, Serialize};

use crate::confusion::ConfusionMatrix;

/// Outcome of parsing one model answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Prediction {
    /// Parsed to a class label.
    Label(bool),
    /// Unparseable output.
    Miss,
}

/// Aggregated Table 2 metrics for one (model, dataset) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Accuracy (misses count as wrong).
    pub acc: f64,
    /// F1 of the positive class (misses scored as negative predictions).
    pub f1: f64,
    /// Fraction of unparseable answers.
    pub miss: f64,
    /// Number of evaluated examples.
    pub n: usize,
}

/// Evaluate binary predictions against labels.
pub fn evaluate_binary(preds: &[Prediction], labels: &[bool]) -> EvalResult {
    let _span = zg_trace::span_arg("eval.binary", preds.len() as i64);
    assert_eq!(
        preds.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    assert!(!preds.is_empty(), "cannot evaluate zero examples");
    let n = preds.len();
    let mut cm = ConfusionMatrix::default();
    let mut correct = 0usize;
    let mut misses = 0usize;
    for (&p, &a) in preds.iter().zip(labels) {
        match p {
            Prediction::Label(l) => {
                cm.record(l, a);
                if l == a {
                    correct += 1;
                }
            }
            Prediction::Miss => {
                misses += 1;
                cm.record(false, a); // miss scored as a negative prediction
            }
        }
    }
    EvalResult {
        acc: correct as f64 / n as f64,
        f1: cm.f1(),
        miss: misses as f64 / n as f64,
        n,
    }
}

/// Multi-class evaluation (e.g. 3-way sentiment): accuracy, macro-F1, miss.
pub fn evaluate_multiclass(
    preds: &[Option<usize>],
    labels: &[usize],
    n_classes: usize,
) -> EvalResult {
    assert_eq!(preds.len(), labels.len());
    assert!(!preds.is_empty());
    let n = preds.len();
    let mut correct = 0usize;
    let mut misses = 0usize;
    // Per-class tp/fp/fn.
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fn_ = vec![0usize; n_classes];
    for (&p, &a) in preds.iter().zip(labels) {
        assert!(a < n_classes, "label {a} out of range");
        match p {
            Some(c) if c == a => {
                correct += 1;
                tp[a] += 1;
            }
            Some(c) => {
                assert!(c < n_classes, "prediction {c} out of range");
                fp[c] += 1;
                fn_[a] += 1;
            }
            None => {
                misses += 1;
                fn_[a] += 1;
            }
        }
    }
    let mut f1_sum = 0.0;
    for c in 0..n_classes {
        let p = if tp[c] + fp[c] == 0 {
            0.0
        } else {
            tp[c] as f64 / (tp[c] + fp[c]) as f64
        };
        let r = if tp[c] + fn_[c] == 0 {
            0.0
        } else {
            tp[c] as f64 / (tp[c] + fn_[c]) as f64
        };
        f1_sum += if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
    }
    EvalResult {
        acc: correct as f64 / n as f64,
        f1: f1_sum / n_classes as f64,
        miss: misses as f64 / n as f64,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct_no_miss() {
        let preds = vec![Prediction::Label(true), Prediction::Label(false)];
        let r = evaluate_binary(&preds, &[true, false]);
        assert_eq!(r.acc, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.miss, 0.0);
        assert_eq!(r.n, 2);
    }

    #[test]
    fn misses_hurt_accuracy() {
        let preds = vec![
            Prediction::Label(true),
            Prediction::Miss,
            Prediction::Label(false),
            Prediction::Miss,
        ];
        let r = evaluate_binary(&preds, &[true, true, false, false]);
        assert_eq!(r.acc, 0.5);
        assert_eq!(r.miss, 0.5);
    }

    #[test]
    fn miss_does_not_inflate_precision() {
        // One true positive prediction, one miss on a positive example.
        let preds = vec![Prediction::Label(true), Prediction::Miss];
        let r = evaluate_binary(&preds, &[true, true]);
        // Precision 1.0, recall 0.5 -> F1 = 2/3.
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        evaluate_binary(&[Prediction::Miss], &[true, false]);
    }

    #[test]
    fn multiclass_accuracy_and_macro_f1() {
        // 3 classes, perfect on class 0 and 1, misses class 2.
        let preds = vec![Some(0), Some(1), None, Some(0), Some(1), None];
        let labels = vec![0, 1, 2, 0, 1, 2];
        let r = evaluate_multiclass(&preds, &labels, 3);
        assert!((r.acc - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.miss - 1.0 / 3.0).abs() < 1e-12);
        // Classes 0 and 1: F1 = 1; class 2: F1 = 0 -> macro 2/3.
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiclass_wrong_predictions() {
        let preds = vec![Some(1), Some(0)];
        let labels = vec![0, 1];
        let r = evaluate_multiclass(&preds, &labels, 2);
        assert_eq!(r.acc, 0.0);
        assert_eq!(r.f1, 0.0);
    }
}
