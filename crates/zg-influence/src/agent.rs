//! The lightweight **agent model** (paper abstract: "we employ an agent
//! model to assign scores to training samples"): an L2-regularized
//! logistic regression trained by SGD on the records' numeric features.
//!
//! Its virtue for influence estimation is the closed-form per-sample
//! gradient `∇ℓ(w, (x, y)) = (σ(w·x) − y)·x`, which makes TracIn/TracSeq
//! over thousands of samples cheap: checkpoints are weight snapshots, and
//! gradients are one dot product each.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::parallel::{par_map, ParallelConfig};
use crate::tracin::CheckpointGrads;

/// Logistic-regression agent model (bias folded in as the last weight).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentModel {
    /// Weights, length `n_features + 1` (bias last).
    pub weights: Vec<f32>,
    /// Per-feature standardization means.
    pub mean: Vec<f32>,
    /// Per-feature standardization stds.
    pub std: Vec<f32>,
}

/// Training hyperparameters for the agent model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AgentConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate (also η_i recorded per checkpoint).
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Store a checkpoint every this many epochs.
    pub checkpoint_every: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            epochs: 30,
            lr: 0.1,
            l2: 1e-4,
            checkpoint_every: 5,
        }
    }
}

/// A stored agent-model checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentCheckpoint {
    /// Weight snapshot.
    pub weights: Vec<f32>,
    /// Step size in effect (η_i).
    pub eta: f32,
    /// Checkpoint time index t_i (epoch-derived; remap to data periods
    /// when training sequentially).
    pub time: u32,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl AgentModel {
    /// Fit on `(features, labels)` with SGD, recording checkpoints.
    /// Features are standardized internally; rows must share a length.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[bool],
        cfg: &AgentConfig,
        rng: &mut impl Rng,
    ) -> (AgentModel, Vec<AgentCheckpoint>) {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let d = features[0].len();
        assert!(features.iter().all(|f| f.len() == d), "ragged features");

        // Standardize.
        let n = features.len() as f32;
        let mut mean = vec![0.0f32; d];
        for f in features {
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0f32; d];
        for f in features {
            for ((s, &v), m) in std.iter_mut().zip(f).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        let xs: Vec<Vec<f32>> = features
            .iter()
            .map(|f| {
                f.iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(&v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect();

        let mut model = AgentModel {
            weights: vec![0.0; d + 1],
            mean,
            std,
        };
        let mut checkpoints = Vec::new();
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            for &i in &order {
                let p = sigmoid(model.score_standardized(&xs[i]));
                let err = p - labels[i] as u8 as f32;
                for (w, &x) in model.weights.iter_mut().zip(&xs[i]) {
                    *w -= cfg.lr * (err * x + cfg.l2 * *w);
                }
                let db = model.weights.len() - 1;
                model.weights[db] -= cfg.lr * err;
            }
            if (epoch + 1) % cfg.checkpoint_every == 0 || epoch + 1 == cfg.epochs {
                checkpoints.push(AgentCheckpoint {
                    weights: model.weights.clone(),
                    eta: cfg.lr,
                    time: epoch as u32,
                });
            }
        }
        (model, checkpoints)
    }

    fn score_standardized(&self, x: &[f32]) -> f32 {
        let d = x.len();
        let mut z = self.weights[d]; // bias
        for (w, &v) in self.weights[..d].iter().zip(x) {
            z += w * v;
        }
        z
    }

    /// Standardize a raw feature row.
    pub fn standardize(&self, raw: &[f32]) -> Vec<f32> {
        raw.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (m, s))| (v - m) / s)
            .collect()
    }

    /// P(positive | raw features).
    pub fn predict_proba(&self, raw: &[f32]) -> f32 {
        sigmoid(self.score_standardized(&self.standardize(raw)))
    }

    /// Closed-form logistic-loss gradient at weight snapshot `weights` for
    /// a (standardized) sample: `(σ(w·x) − y) · [x, 1]`.
    pub fn sample_gradient(weights: &[f32], x_std: &[f32], label: bool) -> Vec<f32> {
        let d = x_std.len();
        assert_eq!(weights.len(), d + 1);
        let mut z = weights[d];
        for (w, &v) in weights[..d].iter().zip(x_std) {
            z += w * v;
        }
        let err = sigmoid(z) - label as u8 as f32;
        let mut g: Vec<f32> = x_std.iter().map(|&v| err * v).collect();
        g.push(err);
        g
    }
}

/// Expand agent checkpoints into [`CheckpointGrads`] for TracIn/TracSeq:
/// analytic gradients for every (train, test) sample at every checkpoint.
pub fn agent_checkpoint_grads(
    model: &AgentModel,
    checkpoints: &[AgentCheckpoint],
    train: &[(Vec<f32>, bool)],
    test: &[(Vec<f32>, bool)],
) -> Vec<CheckpointGrads> {
    agent_checkpoint_grads_with(model, checkpoints, train, test, &ParallelConfig::serial())
}

/// [`agent_checkpoint_grads`] fanned across `par.workers` threads. The
/// closed-form gradient is pure per sample, so results are bit-identical
/// to serial for every worker count.
pub fn agent_checkpoint_grads_with(
    model: &AgentModel,
    checkpoints: &[AgentCheckpoint],
    train: &[(Vec<f32>, bool)],
    test: &[(Vec<f32>, bool)],
    par: &ParallelConfig,
) -> Vec<CheckpointGrads> {
    let workers = par.resolved_workers();
    let train_std: Vec<(Vec<f32>, bool)> = train
        .iter()
        .map(|(x, y)| (model.standardize(x), *y))
        .collect();
    let test_std: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|(x, y)| (model.standardize(x), *y))
        .collect();
    checkpoints
        .iter()
        .map(|ck| CheckpointGrads {
            eta: ck.eta,
            time: ck.time,
            train: par_map(&train_std, workers, |(x, y)| {
                AgentModel::sample_gradient(&ck.weights, x, *y)
            }),
            test: par_map(&test_std, workers, |(x, y)| {
                AgentModel::sample_gradient(&ck.weights, x, *y)
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable toy data: label = x0 > x1.
    fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let ys: Vec<bool> = xs.iter().map(|x| x[0] > x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = toy(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (model, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (model.predict_proba(x) > 0.5) == y)
            .count();
        assert!(correct as f64 / 400.0 > 0.95, "accuracy {correct}/400");
    }

    #[test]
    fn checkpoints_recorded() {
        let (xs, ys) = toy(50, 3);
        let cfg = AgentConfig {
            epochs: 10,
            checkpoint_every: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (_, cks) = AgentModel::fit(&xs, &ys, &cfg, &mut rng);
        // Epochs 3, 6, 9, 10 -> 4 checkpoints.
        assert_eq!(cks.len(), 4);
        assert_eq!(cks.last().unwrap().time, 9);
    }

    #[test]
    fn gradient_closed_form() {
        // w = 0 -> σ = 0.5; grad = (0.5 - y)·[x, 1].
        let g = AgentModel::sample_gradient(&[0.0, 0.0, 0.0], &[2.0, -4.0], true);
        assert_eq!(g, vec![-1.0, 2.0, -0.5]);
        let g = AgentModel::sample_gradient(&[0.0, 0.0, 0.0], &[2.0, -4.0], false);
        assert_eq!(g, vec![1.0, -2.0, 0.5]);
    }

    #[test]
    fn influence_favors_test_aligned_samples() {
        // Train an agent, compute TracIn scores; a training sample that is
        // a duplicate of the test sample must outrank one of the opposite
        // class at the same position.
        let (mut xs, mut ys) = toy(200, 5);
        xs.push(vec![0.9, -0.9]); // same as test, same label (true)
        ys.push(true);
        xs.push(vec![0.9, -0.9]); // same features, wrong label
        ys.push(false);
        let mut rng = StdRng::seed_from_u64(6);
        let (model, cks) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
        let train: Vec<(Vec<f32>, bool)> = xs.iter().cloned().zip(ys.iter().copied()).collect();
        let test = vec![(vec![0.9f32, -0.9], true)];
        let grads = agent_checkpoint_grads(&model, &cks, &train, &test);
        let scores =
            crate::tracin::influence_scores(&grads, &crate::tracin::TracConfig::tracin(), None);
        let n = scores.len();
        assert!(
            scores[n - 2] > scores[n - 1],
            "aligned sample {} must outrank mislabeled twin {}",
            scores[n - 2],
            scores[n - 1]
        );
        assert!(scores[n - 2] > 0.0 && scores[n - 1] < 0.0);
    }

    #[test]
    fn standardization_stored() {
        let xs = vec![vec![10.0, 100.0], vec![20.0, 200.0], vec![30.0, 300.0]];
        let ys = vec![false, true, true];
        let mut rng = StdRng::seed_from_u64(7);
        let (model, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
        let s = model.standardize(&[20.0, 200.0]);
        assert!(s[0].abs() < 1e-5 && s[1].abs() < 1e-5, "mean row maps to 0");
    }

    #[test]
    #[should_panic(expected = "ragged features")]
    fn ragged_features_panic() {
        let xs = vec![vec![1.0], vec![1.0, 2.0]];
        let ys = vec![true, false];
        let mut rng = StdRng::seed_from_u64(8);
        AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
    }
}
