//! Per-sample gradient extraction from the language model, in the
//! **trainable-parameter (LoRA) subspace**.
//!
//! TracIn-CP's authors compute influence with last-layer gradients for
//! tractability; in the LoRA fine-tuning setting the natural analogue is
//! the adapter subspace — those are the only parameters that move during
//! SFT, so influence on *training* is exactly influence through them.

use zg_model::CausalLm;
use zg_tensor::TensorStore;

use crate::parallel::{par_map_init, ParallelConfig};
use crate::sketch::{GradSplit, GradStore};
use crate::tracin::CheckpointGrads;

/// A tokenized training/test sample: `(input tokens, aligned labels)`,
/// labels `0` (`<pad>`) masked from the loss.
pub type TokenizedSample = (Vec<u32>, Vec<u32>);

/// A stored LM checkpoint for influence replay.
pub struct LmCheckpoint {
    /// Full weight snapshot (adapters included).
    pub store: TensorStore,
    /// Step size η_i in effect around this checkpoint.
    pub eta: f32,
    /// Checkpoint time index t_i.
    pub time: u32,
}

/// Gradient of the (masked) next-token loss for one sample with respect to
/// the model's trainable parameters, flattened in parameter-name order.
///
/// Existing gradients are cleared first and the tape is dropped afterwards,
/// so calls do not interfere with training state.
pub fn lm_sample_gradient(lm: &CausalLm, sample: &TokenizedSample) -> Vec<f32> {
    let params = lm.trainable_params();
    assert!(
        !params.is_empty(),
        "model has no trainable parameters — attach LoRA first"
    );
    for (_, p) in &params {
        p.zero_grad();
    }
    let (tokens, labels) = sample;
    let loss = lm.sft_loss(tokens, labels, 1, tokens.len(), 0);
    loss.backward();
    let mut out = Vec::new();
    for (_, p) in &params {
        out.extend(p.grad_or_zeros());
        p.zero_grad();
    }
    out
}

/// Replay stored checkpoints: restore each snapshot into `lm`, compute
/// per-sample gradients for all train/test samples, and package them as
/// [`CheckpointGrads`] for TracIn/TracSeq. The model's current weights are
/// restored on return.
pub fn lm_checkpoint_grads(
    lm: &CausalLm,
    checkpoints: &[LmCheckpoint],
    train: &[TokenizedSample],
    test: &[TokenizedSample],
) -> Vec<CheckpointGrads> {
    let current = lm.checkpoint();
    let mut out = Vec::with_capacity(checkpoints.len());
    for ck in checkpoints {
        lm.restore(&ck.store);
        out.push(CheckpointGrads {
            eta: ck.eta,
            time: ck.time,
            train: train.iter().map(|s| lm_sample_gradient(lm, s)).collect(),
            test: test.iter().map(|s| lm_sample_gradient(lm, s)).collect(),
        });
    }
    lm.restore(&current);
    out
}

/// [`lm_checkpoint_grads`] fanned across `par.workers` threads.
///
/// The autograd `Tensor` is `Rc`-based and not `Send`, so the model
/// cannot be shared across threads; instead each worker builds its own
/// replica via `make_lm` (architecture + tokenizer only — weights are
/// overwritten) and receives the checkpoint snapshot as serialized ZGT1
/// bytes. Gradients depend only on (weights, sample), so the result is
/// **bit-identical** to the serial path for every worker count.
pub fn lm_checkpoint_grads_with<F>(
    make_lm: F,
    checkpoints: &[LmCheckpoint],
    train: &[TokenizedSample],
    test: &[TokenizedSample],
    par: &ParallelConfig,
) -> Vec<CheckpointGrads>
where
    F: Fn() -> CausalLm + Sync,
{
    let workers = par.resolved_workers();
    if workers <= 1 {
        let lm = make_lm();
        return lm_checkpoint_grads(&lm, checkpoints, train, test);
    }
    let mut out = Vec::with_capacity(checkpoints.len());
    for ck in checkpoints {
        let mut blob = Vec::new();
        ck.store
            .write_to(&mut blob)
            // INVARIANT: writing to an in-memory Vec<u8> cannot fail.
            .expect("serialize checkpoint for worker threads");
        let blob = &blob;
        let make_lm = &make_lm;
        let replica = || {
            let lm = make_lm();
            let store = TensorStore::read_from(&mut blob.as_slice())
                // INVARIANT: `blob` was produced by `write_to` above; the round-trip cannot fail.
                .expect("deserialize checkpoint in worker");
            lm.restore(&store);
            lm
        };
        out.push(CheckpointGrads {
            eta: ck.eta,
            time: ck.time,
            train: par_map_init(train, workers, replica, |lm, s| lm_sample_gradient(lm, s)),
            test: par_map_init(test, workers, replica, |lm, s| lm_sample_gradient(lm, s)),
        });
    }
    out
}

/// [`lm_checkpoint_grads`] backed by a [`GradStore`]: each
/// `(checkpoint, sample)` gradient is computed at most once across every
/// call sharing `store`, so γ-sweeps and repeated selection arms replay
/// checkpoints for free after the first pass.
///
/// Cache keys use `checkpoint.time` — callers must give checkpoints
/// distinct time indices (they already must for TracSeq decay to make
/// sense). The model's current weights are restored on return.
pub fn lm_checkpoint_grads_cached(
    lm: &CausalLm,
    checkpoints: &[LmCheckpoint],
    train: &[TokenizedSample],
    test: &[TokenizedSample],
    store: &GradStore,
) -> Vec<CheckpointGrads> {
    let current = lm.checkpoint();
    let mut out = Vec::with_capacity(checkpoints.len());
    for ck in checkpoints {
        let mut restored = false;
        let mut grads_for = |samples: &[TokenizedSample], split: GradSplit| -> Vec<Vec<f32>> {
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    store
                        .get_or_compute((ck.time, i, split), || {
                            if !restored {
                                lm.restore(&ck.store);
                                restored = true;
                            }
                            lm_sample_gradient(lm, s)
                        })
                        .as_ref()
                        .clone()
                })
                .collect()
        };
        out.push(CheckpointGrads {
            eta: ck.eta,
            time: ck.time,
            train: grads_for(train, GradSplit::Train),
            test: grads_for(test, GradSplit::Test),
        });
    }
    lm.restore(&current);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zg_lora::{attach, LoraConfig};
    use zg_model::ModelConfig;

    fn lora_lm(seed: u64) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::mistral_miniature(24);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        let mut lm = CausalLm::new(cfg, &mut rng);
        attach(
            &mut lm,
            &LoraConfig {
                rank: 2,
                ..Default::default()
            },
            &mut rng,
        );
        lm
    }

    #[test]
    fn gradient_dimension_is_lora_subspace() {
        let lm = lora_lm(1);
        let sample = (vec![1u32, 5, 7, 3], vec![5u32, 7, 3, 2]);
        let g = lm_sample_gradient(&lm, &sample);
        assert_eq!(g.len(), zg_lora::lora_param_count(&lm));
        assert!(g.iter().any(|&v| v != 0.0), "gradient must be nonzero");
    }

    #[test]
    fn gradient_deterministic() {
        let lm = lora_lm(2);
        let sample = (vec![1u32, 5, 7], vec![5u32, 7, 2]);
        assert_eq!(
            lm_sample_gradient(&lm, &sample),
            lm_sample_gradient(&lm, &sample)
        );
    }

    #[test]
    fn fully_masked_sample_has_zero_gradient() {
        let lm = lora_lm(3);
        let sample = (vec![1u32, 5, 7], vec![0u32, 0, 0]);
        let g = lm_sample_gradient(&lm, &sample);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn checkpoint_replay_restores_weights() {
        let lm = lora_lm(4);
        // Two snapshots with different adapter values.
        let ck1 = lm.checkpoint();
        for (name, p) in lm.trainable_params() {
            if name.ends_with("lora_b") {
                p.set_data(&vec![0.05; p.numel()]);
            }
        }
        let ck2 = lm.checkpoint();
        let before = lm.forward(&[1, 2, 3], 1, 3).to_vec();

        let train = vec![(vec![1u32, 5, 7], vec![5u32, 7, 2])];
        let test = vec![(vec![2u32, 6, 8], vec![6u32, 8, 2])];
        let grads = lm_checkpoint_grads(
            &lm,
            &[
                LmCheckpoint {
                    store: ck1,
                    eta: 0.1,
                    time: 0,
                },
                LmCheckpoint {
                    store: ck2,
                    eta: 0.1,
                    time: 1,
                },
            ],
            &train,
            &test,
        );
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].train.len(), 1);
        assert_eq!(grads[0].test.len(), 1);
        // Different checkpoints give different gradients.
        assert_ne!(grads[0].train[0], grads[1].train[0]);
        // Weights restored.
        let after = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn parallel_grads_bit_identical_to_serial() {
        let lm = lora_lm(6);
        let ck1 = lm.checkpoint();
        for (name, p) in lm.trainable_params() {
            if name.ends_with("lora_b") {
                p.set_data(&vec![0.03; p.numel()]);
            }
        }
        let ck2 = lm.checkpoint();
        let cks = [
            LmCheckpoint {
                store: ck1,
                eta: 0.1,
                time: 0,
            },
            LmCheckpoint {
                store: ck2,
                eta: 0.05,
                time: 1,
            },
        ];
        let train: Vec<TokenizedSample> = (0..5)
            .map(|i| (vec![1 + i, 5, 7, 3 + i], vec![5, 7, 3 + i, 2]))
            .collect();
        let test = vec![(vec![2u32, 6, 8], vec![6u32, 8, 2])];
        let serial = lm_checkpoint_grads(&lm, &cks, &train, &test);
        for workers in [2usize, 4] {
            let par = lm_checkpoint_grads_with(
                || lora_lm(6),
                &cks,
                &train,
                &test,
                &ParallelConfig::serial().with_workers(workers),
            );
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.train, b.train, "workers={workers}");
                assert_eq!(a.test, b.test, "workers={workers}");
            }
        }
    }

    #[test]
    fn cached_grads_match_and_hit_cache() {
        let lm = lora_lm(7);
        let cks = [LmCheckpoint {
            store: lm.checkpoint(),
            eta: 0.1,
            time: 0,
        }];
        let train = vec![(vec![1u32, 5, 7], vec![5u32, 7, 2])];
        let test = vec![(vec![2u32, 6, 8], vec![6u32, 8, 2])];
        let store = GradStore::new();
        let first = lm_checkpoint_grads_cached(&lm, &cks, &train, &test, &store);
        assert_eq!(store.len(), 2, "one train + one test gradient cached");
        assert_eq!(
            first[0].train,
            lm_checkpoint_grads(&lm, &cks, &train, &test)[0].train
        );
        // Second pass must be served from the cache (same store size) and
        // agree exactly.
        let second = lm_checkpoint_grads_cached(&lm, &cks, &train, &test, &store);
        assert_eq!(store.len(), 2);
        assert_eq!(first[0].train, second[0].train);
        assert_eq!(first[0].test, second[0].test);
    }

    #[test]
    fn influence_pipeline_end_to_end() {
        // TracIn over LM gradients: a training sample identical to the test
        // sample should receive a higher score than an unrelated one.
        let lm = lora_lm(5);
        // Make adapters slightly non-trivial so gradients are informative.
        for (name, p) in lm.trainable_params() {
            if name.ends_with("lora_b") {
                let d: Vec<f32> = (0..p.numel())
                    .map(|i| 0.02 * ((i % 5) as f32 - 2.0))
                    .collect();
                p.set_data(&d);
            }
        }
        let ck = LmCheckpoint {
            store: lm.checkpoint(),
            eta: 0.1,
            time: 0,
        };
        let twin = (vec![1u32, 5, 7, 9], vec![0u32, 0, 7, 9]);
        let other = (vec![4u32, 11, 3, 14], vec![0u32, 0, 12, 6]);
        let train = vec![twin.clone(), other];
        let test = vec![twin];
        let grads = lm_checkpoint_grads(&lm, &[ck], &train, &test);
        let scores =
            crate::tracin::influence_scores(&grads, &crate::tracin::TracConfig::tracin(), None);
        assert!(
            scores[0] > scores[1],
            "twin {} must outrank unrelated {}",
            scores[0],
            scores[1]
        );
        assert!(scores[0] > 0.0, "self-influence is positive");
    }
}
