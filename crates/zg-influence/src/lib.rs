//! # zg-influence
//!
//! The paper's primary contribution: training-data influence estimation
//! and pruning for financial-credit instruction tuning.
//!
//! - [`tracin`]: TracInCP (Pruthi et al. 2020) and **TracSeq** (paper
//!   Eq. 1), the time-decayed variant for sequential behavior data.
//! - [`select_top_k`] / [`hybrid_mix`]: Top-K selection (Eq. 2) and the
//!   70/30 random + high-influence mix of paper §3.2.
//! - [`AgentModel`]: the lightweight agent model that scores samples with
//!   closed-form logistic gradients.
//! - [`lm_sample_gradient`] / [`lm_checkpoint_grads`]: gradient extraction
//!   from the language model in the LoRA subspace, replayed at stored
//!   checkpoints.
//! - [`parallel`]: the multi-threaded scoring engine ([`ParallelConfig`],
//!   [`influence_scores_with`]) with bit-identical chunk-ordered
//!   reduction — serial is the `workers = 1` special case.
//! - [`sketch`]: seeded random-projection gradient compression
//!   ([`Sketcher`]) and the concurrent [`GradStore`] gradient cache.

mod agent;
mod grads;
pub mod parallel;
mod select;
mod self_influence;
pub mod sketch;
mod tracin;

pub use agent::{
    agent_checkpoint_grads, agent_checkpoint_grads_with, AgentCheckpoint, AgentConfig, AgentModel,
};
pub use grads::{
    lm_checkpoint_grads, lm_checkpoint_grads_cached, lm_checkpoint_grads_with, lm_sample_gradient,
    LmCheckpoint, TokenizedSample,
};
pub use parallel::{influence_scores_with, par_map, par_map_init, ParallelConfig};
pub use select::{hybrid_mix, select_bottom_k, select_top_k, MixConfig};
pub use self_influence::{self_influence_scores, suspect_mislabeled};
pub use sketch::{GradKey, GradSplit, GradStore, Sketcher, DEFAULT_SKETCH_SEED};
pub use tracin::{influence_pair, influence_scores, CheckpointGrads, TracConfig};
