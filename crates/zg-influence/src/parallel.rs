//! The **parallel influence engine**: a worker-pool layer that fans
//! per-sample gradient and scoring work across OS threads with a
//! deterministic, chunk-ordered reduction.
//!
//! Design constraints, in order:
//!
//! 1. **Bit-identical results.** Per-sample influence scores are
//!    independent of each other, so splitting the sample axis into
//!    contiguous chunks and concatenating worker outputs in chunk order
//!    reproduces the serial float-operation order exactly. Serial is
//!    literally the `workers = 1` special case of the same kernel —
//!    there is no "fast but slightly different" mode (pinned by the
//!    determinism tests).
//! 2. **Scoped threads, no 'static.** Workers borrow the checkpoint
//!    gradients and sample slices directly via [`crossbeam::thread::scope`];
//!    nothing is cloned to satisfy lifetimes.
//! 3. **Optional sketching.** [`ParallelConfig::sketch_dim`] routes
//!    scoring through [`Sketcher`](crate::Sketcher) compression first —
//!    the orthogonal, algorithmic speedup for when gradients are long
//!    (LoRA subspace) and cores are few.

use serde::{Deserialize, Serialize};

use crate::sketch::{Sketcher, DEFAULT_SKETCH_SEED};
use crate::tracin::{self, CheckpointGrads, TracConfig};

/// Knobs for the parallel influence engine.
///
/// `workers = 1, sketch_dim = None` is exact serial scoring; every other
/// setting of `workers` changes wall-clock only, never the scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Worker threads for gradient fan-out and scoring. `0` means "use
    /// [`std::thread::available_parallelism`]".
    pub workers: usize,
    /// Project gradients to this dimension before scoring (`None` =
    /// exact). Changes scores approximately but preserves top-K ranking;
    /// see [`crate::Sketcher`].
    pub sketch_dim: Option<usize>,
    /// Seed for the sketch projection (ignored when `sketch_dim` is
    /// `None`).
    pub sketch_seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

impl ParallelConfig {
    /// Exact serial scoring — the reference configuration.
    pub fn serial() -> ParallelConfig {
        ParallelConfig {
            workers: 1,
            sketch_dim: None,
            sketch_seed: DEFAULT_SKETCH_SEED,
        }
    }

    /// Exact scoring on all available cores.
    pub fn auto() -> ParallelConfig {
        ParallelConfig {
            workers: 0,
            ..ParallelConfig::serial()
        }
    }

    /// Same config with an explicit worker count.
    pub fn with_workers(self, workers: usize) -> ParallelConfig {
        ParallelConfig { workers, ..self }
    }

    /// Same config with sketched scoring at `dim` (default seed).
    pub fn with_sketch(self, dim: usize) -> ParallelConfig {
        ParallelConfig {
            sketch_dim: Some(dim),
            ..self
        }
    }

    /// Same config with an explicit sketch seed.
    pub fn with_sketch_seed(self, seed: u64) -> ParallelConfig {
        ParallelConfig {
            sketch_seed: seed,
            ..self
        }
    }

    /// The concrete worker count: `workers`, or the machine's available
    /// parallelism when `workers == 0`.
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The sketcher implied by this config, if sketching is enabled.
    pub fn sketcher(&self) -> Option<Sketcher> {
        self.sketch_dim
            .map(|dim| Sketcher::new(dim, self.sketch_seed))
    }
}

/// Parallel map with per-worker state and a deterministic, chunk-ordered
/// reduction.
///
/// `items` is split into `workers` contiguous chunks; each worker builds
/// its own state with `init` (e.g. a model replica) and maps its chunk in
/// order; outputs are concatenated in chunk order. Because every item is
/// processed by the same pure code in the same relative position,
/// the result is identical for any worker count — `workers = 1` runs
/// inline with no threads.
pub fn par_map_init<T, U, S, I, F>(items: &[T], workers: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        // Inline fallback still gets its own chunk stream (installs are a
        // stack, so this nests cleanly under the caller's stream) — the
        // trace shows the same per-chunk shape at every worker count.
        let _stream = zg_trace::fork_stream("chunk0").map(zg_trace::StreamHandle::install);
        let _span = zg_trace::span_arg("par.chunk", 0);
        let mut state = init();
        return items
            .iter()
            .map(|t| {
                zg_trace::counter_add("par.items", 1.0);
                f(&mut state, t)
            })
            .collect();
    }
    let chunk = items.len().div_ceil(workers);
    let init = &init;
    let f = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                // Stream ids allocate here, on the spawning thread in
                // chunk order, so the merged trace is scheduling-independent.
                let stream = zg_trace::fork_stream(&format!("chunk{ci}"));
                s.spawn(move || {
                    let _guard = stream.map(zg_trace::StreamHandle::install);
                    let _span = zg_trace::span_arg("par.chunk", ci as i64);
                    let mut state = init();
                    part.iter()
                        .map(|t| {
                            zg_trace::counter_add("par.items", 1.0);
                            f(&mut state, t)
                        })
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            // INVARIANT: a worker panic is unrecoverable; re-raise it in the parent.
            out.extend(h.join().expect("influence worker panicked"));
        }
        out
    })
    // INVARIANT: a worker panic is unrecoverable; re-raise it in the parent.
    .expect("influence worker pool panicked")
}

/// Stateless [`par_map_init`]: fan a pure function over `items` across
/// `workers` threads, preserving item order.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_init(items, workers, || (), |(), t| f(t))
}

/// [`influence_scores`](crate::influence_scores) through the parallel
/// engine: optional sketch compression, then per-sample scoring fanned
/// across `par.workers` threads.
///
/// With `sketch_dim = None` the result is **bit-identical** to serial
/// scoring for every worker count. With sketching the scores are the
/// exact serial scores *of the sketched gradients* — still deterministic
/// per `(sketch_dim, sketch_seed)`, still worker-count independent.
pub fn influence_scores_with(
    checkpoints: &[CheckpointGrads],
    cfg: &TracConfig,
    sample_times: Option<&[u32]>,
    par: &ParallelConfig,
) -> Vec<f32> {
    cfg.validate();
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    let _span = zg_trace::span_arg("influence.scores", checkpoints[0].train.len() as i64);
    zg_trace::counter_add("influence.checkpoints", checkpoints.len() as f64);
    let n_train = checkpoints[0].train.len();
    let n_test = checkpoints[0].test.len();
    assert!(n_test > 0, "need at least one test sample");
    for ck in checkpoints {
        ck.validate();
        assert_eq!(
            ck.train.len(),
            n_train,
            "train count differs across checkpoints"
        );
        assert_eq!(
            ck.test.len(),
            n_test,
            "test count differs across checkpoints"
        );
    }
    if cfg.decay_samples {
        // INVARIANT: documented API precondition of `cfg.decay_samples`.
        let times = sample_times.expect("decay_samples requires sample_times");
        assert_eq!(times.len(), n_train, "sample_times length mismatch");
    }

    // Optional compression into the sketch space; scoring below is
    // oblivious to which space it runs in.
    let sketched;
    let cks: &[CheckpointGrads] = match par.sketcher() {
        Some(sk) => {
            sketched = sk.sketch_checkpoints(checkpoints);
            &sketched
        }
        None => checkpoints,
    };

    // Per-checkpoint pieces that are shared by every sample: the combined
    // decay·η weight and the mean test gradient (Σ_test ⟨g, g'⟩ / n =
    // ⟨g, mean g'⟩ — turns n_train × n_test dots into n_train dots).
    let weights: Vec<f32> = cks
        .iter()
        .map(|ck| tracin::checkpoint_weight(cfg, ck.time) * ck.eta)
        .collect();
    let means: Vec<Vec<f32>> = cks.iter().map(tracin::mean_test_gradient).collect();

    let idx: Vec<usize> = (0..n_train).collect();
    let mut scores = par_map(&idx, par.resolved_workers(), |&z| {
        let mut acc = 0.0f32;
        for (ck, (&w, mean)) in cks.iter().zip(weights.iter().zip(&means)) {
            acc += w * tracin::dot(&ck.train[z], mean);
        }
        acc
    });

    if cfg.decay_samples {
        // INVARIANT: presence was checked at function entry when decay_samples is set.
        let times = sample_times.expect("checked above");
        for (s, &t) in scores.iter_mut().zip(times) {
            *s *= cfg.gamma.powi(cfg.current_time.saturating_sub(t) as i32);
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = par_map(&items, workers, |&i| i * 2);
            assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_init_builds_state_per_worker() {
        // State is an accumulating counter: with 1 worker the positions
        // are 0..n; with many workers each chunk restarts from 0. Both
        // are deterministic; this pins the per-worker-state contract.
        let items: Vec<u32> = (0..10).collect();
        let serial = par_map_init(
            &items,
            1,
            || 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        assert_eq!(serial, (1..=10).collect::<Vec<usize>>());
        let split = par_map_init(
            &items,
            2,
            || 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        assert_eq!(split, vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5]);
    }

    fn random_grads(
        seed: u64,
        n_ck: usize,
        n_train: usize,
        n_test: usize,
        p: usize,
    ) -> Vec<CheckpointGrads> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_ck)
            .map(|t| CheckpointGrads {
                eta: rng.gen_range(0.01..0.2),
                time: t as u32,
                train: (0..n_train)
                    .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect(),
                test: (0..n_test)
                    .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_scores_bit_identical_to_serial() {
        let cks = random_grads(11, 3, 57, 9, 40);
        let cfg = TracConfig {
            gamma: 0.85,
            current_time: 2,
            decay_samples: false,
        };
        let serial = influence_scores_with(&cks, &cfg, None, &ParallelConfig::serial());
        assert_eq!(serial, crate::influence_scores(&cks, &cfg, None));
        for workers in [2, 3, 8] {
            let par = influence_scores_with(
                &cks,
                &cfg,
                None,
                &ParallelConfig::serial().with_workers(workers),
            );
            assert_eq!(serial, par, "workers={workers} must be bit-identical");
        }
    }

    #[test]
    fn sketched_scores_deterministic_and_worker_independent() {
        let cks = random_grads(13, 2, 31, 5, 64);
        let cfg = TracConfig::tracin();
        let base = ParallelConfig::serial().with_sketch(16);
        let a = influence_scores_with(&cks, &cfg, None, &base);
        let b = influence_scores_with(&cks, &cfg, None, &base.with_workers(4));
        assert_eq!(a, b, "sketching must not depend on worker count");
        let c = influence_scores_with(&cks, &cfg, None, &base.with_sketch_seed(99));
        assert_ne!(a, c, "different sketch seeds project differently");
    }

    #[test]
    fn resolved_workers_sane() {
        assert_eq!(ParallelConfig::serial().resolved_workers(), 1);
        assert!(ParallelConfig::auto().resolved_workers() >= 1);
        assert_eq!(
            ParallelConfig::serial().with_workers(5).resolved_workers(),
            5
        );
    }
}
