//! Top-K selection (paper Eq. 2) and the 70/30 hybrid data mixer
//! (paper §3.2: "70% of the samples are randomly selected from the entire
//! dataset, while the remaining 30% are high-influence samples filtered
//! through data pruning").

use rand::seq::SliceRandom;
use rand::Rng;

/// Indices of the `k` highest-scoring samples, best first.
/// `D = { z | z ∈ Top-k TracSeq(z) }` (Eq. 2).
pub fn select_top_k(scores: &[f32], k: usize) -> Vec<usize> {
    // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
    rank_by(scores, k, |a, b| b.partial_cmp(&a).expect("finite scores"))
}

/// Indices of the `k` lowest-scoring samples, worst first (the
/// low-influence contrast arm of Figure 2).
pub fn select_bottom_k(scores: &[f32], k: usize) -> Vec<usize> {
    // INVARIANT: NaN scores are a caller bug; fail loudly rather than mis-rank.
    rank_by(scores, k, |a, b| a.partial_cmp(&b).expect("finite scores"))
}

fn rank_by(scores: &[f32], k: usize, cmp: impl Fn(f32, f32) -> std::cmp::Ordering) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // Stable sort + index tiebreak keeps selection deterministic.
    idx.sort_by(|&a, &b| cmp(scores[a], scores[b]).then(a.cmp(&b)));
    idx.truncate(k.min(scores.len()));
    idx
}

/// Hybrid mix configuration.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Fraction of the mix drawn from high-influence pruned samples
    /// (paper: 0.30).
    pub pruned_fraction: f64,
    /// Total mixed-set size.
    pub total: usize,
}

impl MixConfig {
    /// The paper's 70/30 split over `total` samples.
    pub fn paper_default(total: usize) -> Self {
        MixConfig {
            pruned_fraction: 0.30,
            total,
        }
    }
}

/// Build the hybrid training set: `pruned_fraction · total` samples from
/// the head of `ranked_by_influence` plus the remainder drawn uniformly at
/// random from `0..n_all` (may overlap the pruned picks, as in re-weighted
/// mixed training — duplicates are kept because they increase the
/// effective weight of high-influence data).
pub fn hybrid_mix(
    cfg: &MixConfig,
    ranked_by_influence: &[usize],
    n_all: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&cfg.pruned_fraction),
        "pruned_fraction must be in [0,1]"
    );
    assert!(n_all > 0, "empty pool");
    let n_pruned = ((cfg.total as f64) * cfg.pruned_fraction).round() as usize;
    let n_pruned = n_pruned.min(ranked_by_influence.len()).min(cfg.total);
    let mut out: Vec<usize> = ranked_by_influence[..n_pruned].to_vec();
    let all: Vec<usize> = (0..n_all).collect();
    while out.len() < cfg.total {
        // INVARIANT: `all` is non-empty; `n_all > 0` asserted above.
        out.push(*all.choose(rng).expect("non-empty pool"));
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1f32, 0.9, -0.5, 0.4];
        assert_eq!(select_top_k(&scores, 2), vec![1, 3]);
        assert_eq!(select_top_k(&scores, 10), vec![1, 3, 0, 2]);
    }

    #[test]
    fn bottom_k_orders_ascending() {
        let scores = [0.1f32, 0.9, -0.5, 0.4];
        assert_eq!(select_bottom_k(&scores, 2), vec![2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let scores = [0.5f32, 0.5, 0.5];
        assert_eq!(select_top_k(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn empty_scores() {
        assert!(select_top_k(&[], 3).is_empty());
    }

    #[test]
    fn hybrid_mix_respects_fractions() {
        let ranked: Vec<usize> = (0..100).collect();
        let cfg = MixConfig::paper_default(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mix = hybrid_mix(&cfg, &ranked, 1000, &mut rng);
        assert_eq!(mix.len(), 100);
        // 30 pruned picks come from the top-30 ranked ids (0..30); random
        // picks span 0..1000.
        let from_top30 = mix.iter().filter(|&&i| i < 30).count();
        assert!(
            from_top30 >= 30,
            "expected >= 30 high-influence, got {from_top30}"
        );
    }

    #[test]
    fn hybrid_mix_zero_fraction_is_pure_random() {
        let cfg = MixConfig {
            pruned_fraction: 0.0,
            total: 50,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mix = hybrid_mix(&cfg, &[], 10, &mut rng);
        assert_eq!(mix.len(), 50);
        assert!(mix.iter().all(|&i| i < 10));
    }

    #[test]
    fn hybrid_mix_full_fraction_is_pure_pruned() {
        let ranked: Vec<usize> = (0..20).rev().collect();
        let cfg = MixConfig {
            pruned_fraction: 1.0,
            total: 5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut mix = hybrid_mix(&cfg, &ranked, 20, &mut rng);
        mix.sort_unstable();
        assert_eq!(mix, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn hybrid_mix_deterministic_per_seed() {
        let ranked: Vec<usize> = (0..10).collect();
        let cfg = MixConfig::paper_default(20);
        let a = hybrid_mix(&cfg, &ranked, 100, &mut StdRng::seed_from_u64(7));
        let b = hybrid_mix(&cfg, &ranked, 100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
