//! Self-influence: `TracIn(z, z)` — a sample's influence on itself.
//!
//! Pruthi et al.'s flagship diagnostic: samples the model can only fit by
//! memorizing (mislabeled, corrupted, or out-of-distribution points) have
//! outlier self-influence. This is the mechanism behind the paper's
//! hallucination-mitigation claim — pruning the memorization-heavy tail
//! "refines the training data, ensuring higher reliability".

use crate::tracin::{CheckpointGrads, TracConfig};

/// Self-influence score per training sample:
/// `Σ_i γ^(T−t_i) η_i ‖∇ℓ(w_{t_i}, z)‖²`.
pub fn self_influence_scores(checkpoints: &[CheckpointGrads], cfg: &TracConfig) -> Vec<f32> {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    let n = checkpoints[0].train.len();
    let mut scores = vec![0.0f32; n];
    for ck in checkpoints {
        assert_eq!(ck.train.len(), n, "train count differs across checkpoints");
        let decay = cfg
            .gamma
            .powi(cfg.current_time.saturating_sub(ck.time) as i32);
        for (s, g) in scores.iter_mut().zip(&ck.train) {
            let norm_sq: f32 = g.iter().map(|v| v * v).sum();
            *s += decay * ck.eta * norm_sq;
        }
    }
    scores
}

/// Indices of suspected mislabeled/memorized samples: the `k` highest
/// self-influence scores, highest first.
pub fn suspect_mislabeled(
    checkpoints: &[CheckpointGrads],
    cfg: &TracConfig,
    k: usize,
) -> Vec<usize> {
    let scores = self_influence_scores(checkpoints, cfg);
    crate::select::select_top_k(&scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{agent_checkpoint_grads, AgentConfig, AgentModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn self_influence_is_decayed_grad_norm() {
        let cks = vec![CheckpointGrads {
            eta: 0.5,
            time: 0,
            train: vec![vec![3.0, 4.0], vec![1.0, 0.0]],
            test: vec![],
        }];
        let s = self_influence_scores(&cks, &TracConfig::tracin());
        assert!((s[0] - 12.5).abs() < 1e-6); // 0.5 * 25
        assert!((s[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn decay_applies_to_old_checkpoints() {
        let ck = |time| CheckpointGrads {
            eta: 1.0,
            time,
            train: vec![vec![1.0]],
            test: vec![],
        };
        let cfg = TracConfig {
            gamma: 0.5,
            current_time: 2,
            decay_samples: false,
        };
        let s = self_influence_scores(&[ck(0), ck(2)], &cfg);
        assert!((s[0] - 1.25).abs() < 1e-6); // 0.25 + 1
    }

    #[test]
    fn mislabeled_samples_surface() {
        // Separable data; flip 5% of labels — flipped points must
        // dominate the high self-influence tail.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400;
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0f32), rng.gen_range(-1.0..1.0)])
            .collect();
        let mut ys: Vec<bool> = xs.iter().map(|x| x[0] + 0.5 * x[1] > 0.0).collect();
        let flipped: Vec<usize> = (0..n).step_by(20).collect(); // 20 flips
        for &i in &flipped {
            ys[i] = !ys[i];
        }
        let (model, ckpts) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
        let train: Vec<(Vec<f32>, bool)> = xs.into_iter().zip(ys).collect();
        let grads = agent_checkpoint_grads(&model, &ckpts, &train, &[]);
        let suspects = suspect_mislabeled(&grads, &TracConfig::tracin(), 20);
        let hits = suspects.iter().filter(|i| flipped.contains(i)).count();
        assert!(
            hits >= 10,
            "only {hits}/20 flipped labels found in the top-20 suspects"
        );
    }

    #[test]
    #[should_panic(expected = "at least one checkpoint")]
    fn empty_checkpoints_panic() {
        self_influence_scores(&[], &TracConfig::tracin());
    }
}
