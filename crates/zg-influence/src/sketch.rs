//! Seeded random-projection **gradient sketching** for influence scoring.
//!
//! TracIn-style scores only consume gradients through inner products, so
//! compressing every gradient with one shared random projection `S: ℝ^p →
//! ℝ^k` (k ≪ p) preserves the scores approximately while cutting both the
//! memory held per checkpoint and the per-dot cost from `O(p)` to `O(k)`.
//! Lin et al. observe that top-K influence *rankings* survive aggressive
//! sketching; the rank-preservation test in `tests/` pins that property
//! for this implementation.
//!
//! The projection is a CountSketch-style sparse map: each input coordinate
//! `i` is assigned one output bucket `h(i)` and a sign `s(i) ∈ {±1}`, both
//! drawn from a [`rand::rngs::StdRng`] seeded by `(seed, p)`. Applying it
//! is a single `O(p)` pass (no `k × p` matrix), and `E⟨Sx, Sy⟩ = ⟨x, y⟩`
//! (the estimator is unbiased). Determinism: the same `(seed, p, k)`
//! always yields the same plan, on every thread — plans are cached behind
//! a [`parking_lot::RwLock`] so concurrent scoring workers share them.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tracin::CheckpointGrads;

/// Default projection seed used when a caller enables sketching without
/// picking one (see `ParallelConfig::with_sketch`).
pub const DEFAULT_SKETCH_SEED: u64 = 0x5EED_0F2A_C5EC;

/// One realized projection plan for input dimension `p`: bucket and sign
/// per coordinate.
#[derive(Debug)]
struct SketchPlan {
    bucket: Vec<u32>,
    sign: Vec<f32>,
}

impl SketchPlan {
    /// Deterministically draw the plan for `(seed, p)` with `dim` buckets.
    fn draw(seed: u64, p: usize, dim: usize) -> SketchPlan {
        // Mix `p` into the seed so different gradient dimensionalities get
        // independent plans from one sketcher.
        let mut rng = StdRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut bucket = Vec::with_capacity(p);
        let mut sign = Vec::with_capacity(p);
        for _ in 0..p {
            bucket.push(rng.gen_range(0..dim as u32));
            sign.push(if rng.gen_bool(0.5) { 1.0 } else { -1.0 });
        }
        SketchPlan { bucket, sign }
    }
}

/// A seeded gradient sketcher: projects `ℝ^p` gradients to `ℝ^dim`.
///
/// Cheap to share by reference across scoring workers; the per-`p` plan
/// cache is guarded by a [`parking_lot::RwLock`].
#[derive(Debug)]
pub struct Sketcher {
    dim: usize,
    seed: u64,
    plans: RwLock<BTreeMap<usize, Arc<SketchPlan>>>,
}

impl Sketcher {
    /// A sketcher projecting into `dim` buckets with projection seed
    /// `seed`.
    pub fn new(dim: usize, seed: u64) -> Sketcher {
        assert!(dim > 0, "sketch dimension must be positive");
        Sketcher {
            dim,
            seed,
            plans: RwLock::new(BTreeMap::new()),
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Projection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn plan(&self, p: usize) -> Arc<SketchPlan> {
        if let Some(plan) = self.plans.read().get(&p) {
            return Arc::clone(plan);
        }
        let mut w = self.plans.write();
        // Another worker may have built it between the read and the write.
        Arc::clone(
            w.entry(p)
                .or_insert_with(|| Arc::new(SketchPlan::draw(self.seed, p, self.dim))),
        )
    }

    /// Project one gradient vector into the sketch space (`O(p)`).
    pub fn sketch_vec(&self, g: &[f32]) -> Vec<f32> {
        let plan = self.plan(g.len());
        let mut out = vec![0.0f32; self.dim];
        for ((&v, &b), &s) in g.iter().zip(&plan.bucket).zip(&plan.sign) {
            out[b as usize] += s * v;
        }
        out
    }

    /// Project every train/test gradient of every checkpoint, preserving
    /// `eta`/`time` metadata. The same plan is used across checkpoints and
    /// splits — scores are inner products between them, so they must live
    /// in one shared sketch space.
    pub fn sketch_checkpoints(&self, checkpoints: &[CheckpointGrads]) -> Vec<CheckpointGrads> {
        let _span = zg_trace::span_arg("influence.sketch", checkpoints.len() as i64);
        checkpoints
            .iter()
            .map(|ck| CheckpointGrads {
                eta: ck.eta,
                time: ck.time,
                train: ck.train.iter().map(|g| self.sketch_vec(g)).collect(),
                test: ck.test.iter().map(|g| self.sketch_vec(g)).collect(),
            })
            .collect()
    }
}

/// Which split a cached gradient belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GradSplit {
    /// Training-set gradient.
    Train,
    /// Test-set gradient.
    Test,
}

/// Cache key: `(checkpoint time t_i, sample index, split)`.
pub type GradKey = (u32, usize, GradSplit);

/// Concurrent cache of per-`(checkpoint, sample)` gradient vectors,
/// guarded by a [`parking_lot::RwLock`].
///
/// LM gradient extraction is the dominant cost of LM-space TracSeq — one
/// forward+backward per (checkpoint, sample). Sweeps that re-score the
/// same checkpoints under different `γ` / selection settings (the Figure 2
/// arms) can share a `GradStore` so each gradient is computed exactly
/// once. Entries are `Arc`ed, so readers never copy the vectors.
#[derive(Debug, Default)]
pub struct GradStore {
    map: RwLock<BTreeMap<GradKey, Arc<Vec<f32>>>>,
}

impl GradStore {
    /// Empty store.
    pub fn new() -> GradStore {
        GradStore::default()
    }

    /// Number of cached gradients.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drop all cached gradients.
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Look up a cached gradient.
    pub fn get(&self, key: &GradKey) -> Option<Arc<Vec<f32>>> {
        self.map.read().get(key).map(Arc::clone)
    }

    /// Fetch the gradient for `key`, computing and caching it on miss.
    pub fn get_or_compute(
        &self,
        key: GradKey,
        compute: impl FnOnce() -> Vec<f32>,
    ) -> Arc<Vec<f32>> {
        if let Some(g) = self.get(&key) {
            zg_trace::counter_add("influence.grad_cache_hits", 1.0);
            return g;
        }
        zg_trace::counter_add("influence.grad_cache_misses", 1.0);
        let g = Arc::new(compute());
        let mut w = self.map.write();
        // A racing worker may have inserted meanwhile; keep the first.
        Arc::clone(w.entry(key).or_insert(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_vec(seed: u64, p: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn sketch_is_deterministic_per_seed() {
        let g = seeded_vec(1, 300);
        let a = Sketcher::new(32, 7).sketch_vec(&g);
        let b = Sketcher::new(32, 7).sketch_vec(&g);
        assert_eq!(a, b, "same (seed, dim) must give identical sketches");
        let c = Sketcher::new(32, 8).sketch_vec(&g);
        assert_ne!(a, c, "different seeds must give different sketches");
    }

    #[test]
    fn sketch_is_linear() {
        // CountSketch is a linear map: S(x + y) = Sx + Sy, S(αx) = αSx.
        let s = Sketcher::new(16, 3);
        let x = seeded_vec(2, 100);
        let y = seeded_vec(3, 100);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let lhs = s.sketch_vec(&sum);
        let rhs: Vec<f32> = s
            .sketch_vec(&x)
            .iter()
            .zip(s.sketch_vec(&y))
            .map(|(&a, b)| a + b)
            .collect();
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-5, "{l} vs {r}");
        }
    }

    #[test]
    fn sketch_dot_is_roughly_unbiased() {
        // Average ⟨Sx, Sy⟩ over many independent seeds ≈ ⟨x, y⟩.
        let x = seeded_vec(4, 200);
        let y = seeded_vec(5, 200);
        let exact: f32 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
        let mut mean = 0.0f64;
        let trials = 300;
        for seed in 0..trials {
            let s = Sketcher::new(64, seed);
            let d: f32 = s
                .sketch_vec(&x)
                .iter()
                .zip(s.sketch_vec(&y))
                .map(|(&a, b)| a * b)
                .sum();
            mean += d as f64 / trials as f64;
        }
        assert!(
            (mean - exact as f64).abs() < 0.5,
            "mean sketched dot {mean} vs exact {exact}"
        );
    }

    #[test]
    fn sketch_checkpoints_preserves_metadata() {
        let ck = CheckpointGrads {
            eta: 0.1,
            time: 3,
            train: vec![seeded_vec(6, 50), seeded_vec(7, 50)],
            test: vec![seeded_vec(8, 50)],
        };
        let sk = Sketcher::new(8, 1).sketch_checkpoints(&[ck]);
        assert_eq!(sk.len(), 1);
        assert_eq!(sk[0].eta, 0.1);
        assert_eq!(sk[0].time, 3);
        assert_eq!(sk[0].train.len(), 2);
        assert_eq!(sk[0].test.len(), 1);
        assert!(sk[0].train.iter().all(|g| g.len() == 8));
    }

    #[test]
    fn grad_store_caches_and_counts() {
        let store = GradStore::new();
        assert!(store.is_empty());
        let mut computed = 0;
        let key = (0u32, 5usize, GradSplit::Train);
        let a = store.get_or_compute(key, || {
            computed += 1;
            vec![1.0, 2.0]
        });
        let b = store.get_or_compute(key, || {
            computed += 1;
            vec![9.0, 9.0]
        });
        assert_eq!(computed, 1, "second fetch must hit the cache");
        assert_eq!(*a, *b);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&(0, 5, GradSplit::Test)),
            None,
            "split is part of the key"
        );
        store.clear();
        assert!(store.is_empty());
    }
}
