//! TracInCP (Pruthi et al. 2020) and the paper's TracSeq variant (Eq. 1).
//!
//! TracInCP estimates the influence of training sample `z` on test sample
//! `z'` as `Σ_i η_i · ⟨∇ℓ(w_{t_i}, z), ∇ℓ(w_{t_i}, z')⟩` over stored
//! checkpoints `w_{t_i}` with step sizes `η_i`.
//!
//! TracSeq inserts a **time decay factor** `γ^{T − t_i}` (γ ∈ (0, 1]) so
//! checkpoints further from the current time `T` contribute less:
//!
//! ```text
//! TracSeq(z_t, z'_T) = Σ_i γ^(T − t_i) · η_i · ∇ℓ(w_{t_i}, z_t)·∇ℓ(w_{t_i}, z'_T)
//! ```
//!
//! With sequential behavior data trained in time order, checkpoint `t_i`
//! aligns with the data period being trained, so the decay concentrates
//! influence mass on recent behavior — "more recent samples receive higher
//! weights" (paper §3.1). An optional `decay_samples` switch additionally
//! applies `γ^(T − t(z))` to each training sample's own period, the
//! strictest reading of that sentence; γ = 1 in both places recovers
//! vanilla TracInCP exactly.

use serde::{Deserialize, Serialize};

/// Gradients captured at one stored checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointGrads {
    /// Step size η_i used around this checkpoint.
    pub eta: f32,
    /// Checkpoint time index t_i.
    pub time: u32,
    /// Per-training-sample gradient vectors `[n_train][p]`.
    pub train: Vec<Vec<f32>>,
    /// Per-test-sample gradient vectors `[n_test][p]`.
    pub test: Vec<Vec<f32>>,
}

impl CheckpointGrads {
    pub(crate) fn validate(&self) {
        let p = self
            .train
            .first()
            .or_else(|| self.test.first())
            .map_or(0, Vec::len);
        assert!(
            self.train.iter().all(|g| g.len() == p) && self.test.iter().all(|g| g.len() == p),
            "inconsistent gradient dimensions at checkpoint t={}",
            self.time
        );
    }
}

/// TracSeq configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracConfig {
    /// Time decay γ ∈ (0, 1]. γ = 1 is vanilla TracInCP weighting.
    pub gamma: f32,
    /// Current time `T` in Eq. 1.
    pub current_time: u32,
    /// Additionally decay each training sample by its own period age
    /// `γ^(T − t(z))` (requires sample times).
    pub decay_samples: bool,
}

impl Default for TracConfig {
    fn default() -> Self {
        TracConfig {
            gamma: 0.9,
            current_time: 0,
            decay_samples: false,
        }
    }
}

impl TracConfig {
    /// Vanilla TracInCP: γ = 1, no sample decay.
    pub fn tracin() -> Self {
        TracConfig {
            gamma: 1.0,
            current_time: 0,
            decay_samples: false,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.gamma > 0.0 && self.gamma <= 1.0,
            "gamma must lie in (0, 1], got {}",
            self.gamma
        );
    }
}

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// The checkpoint decay factor `γ^(T − t_i)` from Eq. 1.
pub(crate) fn checkpoint_weight(cfg: &TracConfig, ck_time: u32) -> f32 {
    cfg.gamma
        .powi(cfg.current_time.saturating_sub(ck_time) as i32)
}

/// Mean test gradient of one checkpoint — the trick that turns
/// `n_train × n_test` dots into `n_train`: `Σ_test ⟨g, g'⟩ / n = ⟨g, mean g'⟩`.
pub(crate) fn mean_test_gradient(ck: &CheckpointGrads) -> Vec<f32> {
    let p = ck.test[0].len();
    let mut mean = vec![0.0f32; p];
    for g in &ck.test {
        for (m, &v) in mean.iter_mut().zip(g) {
            *m += v;
        }
    }
    let inv = 1.0 / ck.test.len() as f32;
    for m in &mut mean {
        *m *= inv;
    }
    mean
}

/// Influence of training sample `train_idx` on test sample `test_idx`
/// (Eq. 1 for a single pair).
pub fn influence_pair(
    checkpoints: &[CheckpointGrads],
    cfg: &TracConfig,
    train_idx: usize,
    test_idx: usize,
) -> f32 {
    cfg.validate();
    let mut total = 0.0f32;
    for ck in checkpoints {
        ck.validate();
        let decay = cfg
            .gamma
            .powi(cfg.current_time.saturating_sub(ck.time) as i32);
        total += decay * ck.eta * dot(&ck.train[train_idx], &ck.test[test_idx]);
    }
    total
}

/// Per-training-sample influence scores, averaged over the test set
/// (the selection criterion behind Eq. 2).
///
/// `sample_times[z]` is used only when `cfg.decay_samples` is set; pass
/// `None` for non-sequential data.
///
/// This is the serial reference path — exactly
/// [`influence_scores_with`](crate::influence_scores_with) at
/// `ParallelConfig::serial()`; the parallel engine is bit-identical for
/// every worker count.
pub fn influence_scores(
    checkpoints: &[CheckpointGrads],
    cfg: &TracConfig,
    sample_times: Option<&[u32]>,
) -> Vec<f32> {
    crate::parallel::influence_scores_with(
        checkpoints,
        cfg,
        sample_times,
        &crate::parallel::ParallelConfig::serial(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(eta: f32, time: u32, train: Vec<Vec<f32>>, test: Vec<Vec<f32>>) -> CheckpointGrads {
        CheckpointGrads {
            eta,
            time,
            train,
            test,
        }
    }

    #[test]
    fn single_checkpoint_is_scaled_dot() {
        let cks = vec![ck(
            0.1,
            0,
            vec![vec![1.0, 2.0], vec![0.0, 1.0]],
            vec![vec![3.0, 4.0]],
        )];
        let cfg = TracConfig::tracin();
        assert!((influence_pair(&cks, &cfg, 0, 0) - 0.1 * 11.0).abs() < 1e-6);
        assert!((influence_pair(&cks, &cfg, 1, 0) - 0.1 * 4.0).abs() < 1e-6);
    }

    #[test]
    fn gamma_one_recovers_tracin() {
        let cks = vec![
            ck(0.1, 0, vec![vec![1.0]], vec![vec![1.0]]),
            ck(0.2, 5, vec![vec![2.0]], vec![vec![1.0]]),
        ];
        let seq = TracConfig {
            gamma: 1.0,
            current_time: 5,
            decay_samples: false,
        };
        let plain = TracConfig::tracin();
        assert_eq!(
            influence_pair(&cks, &seq, 0, 0),
            influence_pair(&cks, &plain, 0, 0)
        );
    }

    #[test]
    fn decay_downweights_old_checkpoints() {
        let cks = vec![
            ck(0.1, 0, vec![vec![1.0]], vec![vec![1.0]]),  // old
            ck(0.1, 10, vec![vec![1.0]], vec![vec![1.0]]), // current
        ];
        let cfg = TracConfig {
            gamma: 0.5,
            current_time: 10,
            decay_samples: false,
        };
        let v = influence_pair(&cks, &cfg, 0, 0);
        // old contributes 0.5^10 * 0.1, current contributes 0.1.
        let expect = 0.1 * (1.0 + 0.5f32.powi(10));
        assert!((v - expect).abs() < 1e-7);
    }

    #[test]
    fn scores_average_over_test_set() {
        let cks = vec![ck(
            1.0,
            0,
            vec![vec![1.0, 0.0]],
            vec![vec![2.0, 0.0], vec![4.0, 0.0]],
        )];
        let scores = influence_scores(&cks, &TracConfig::tracin(), None);
        assert!((scores[0] - 3.0).abs() < 1e-6); // mean of 2 and 4
    }

    #[test]
    fn scores_match_pairwise_mean() {
        let cks = vec![ck(
            0.3,
            2,
            vec![vec![1.0, -1.0], vec![0.5, 2.0]],
            vec![vec![1.0, 1.0], vec![-2.0, 0.5]],
        )];
        let cfg = TracConfig {
            gamma: 0.8,
            current_time: 4,
            decay_samples: false,
        };
        let scores = influence_scores(&cks, &cfg, None);
        for (z, &score) in scores.iter().enumerate() {
            let mean_pair =
                (influence_pair(&cks, &cfg, z, 0) + influence_pair(&cks, &cfg, z, 1)) / 2.0;
            assert!((score - mean_pair).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_decay_downweights_old_samples() {
        let cks = vec![ck(1.0, 3, vec![vec![1.0], vec![1.0]], vec![vec![1.0]])];
        let cfg = TracConfig {
            gamma: 0.5,
            current_time: 3,
            decay_samples: true,
        };
        let scores = influence_scores(&cks, &cfg, Some(&[0, 3]));
        assert!(
            scores[1] > scores[0],
            "recent sample outranks old: {scores:?}"
        );
        assert!((scores[0] - 0.125).abs() < 1e-6); // 0.5^3
        assert!((scores[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_influence_possible() {
        // Opposing gradients: harmful sample gets a negative score.
        let cks = vec![ck(1.0, 0, vec![vec![1.0]], vec![vec![-1.0]])];
        let scores = influence_scores(&cks, &TracConfig::tracin(), None);
        assert!(scores[0] < 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma must lie in")]
    fn invalid_gamma_panics() {
        let cfg = TracConfig {
            gamma: 0.0,
            current_time: 0,
            decay_samples: false,
        };
        influence_pair(&[], &cfg, 0, 0);
    }

    #[test]
    #[should_panic(expected = "requires sample_times")]
    fn sample_decay_without_times_panics() {
        let cks = vec![ck(1.0, 0, vec![vec![1.0]], vec![vec![1.0]])];
        let cfg = TracConfig {
            gamma: 0.9,
            current_time: 1,
            decay_samples: true,
        };
        influence_scores(&cks, &cfg, None);
    }
}
