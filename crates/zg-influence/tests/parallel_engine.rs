//! Integration tests for the parallel influence engine: worker-count
//! determinism (bit-identical scores), sketch reproducibility, and
//! top-K rank preservation under sketching.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zg_influence::{
    influence_scores, influence_scores_with, select_top_k, CheckpointGrads, ParallelConfig,
    Sketcher, TracConfig,
};

/// Unstructured random gradients (noise floor for determinism checks).
fn synth_grads(
    seed: u64,
    n_ck: usize,
    n_train: usize,
    n_test: usize,
    p: usize,
) -> Vec<CheckpointGrads> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ck)
        .map(|t| CheckpointGrads {
            eta: rng.gen_range(0.01..0.2),
            time: t as u32,
            train: (0..n_train)
                .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect(),
            test: (0..n_test)
                .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect(),
        })
        .collect()
}

/// Structured gradients: every train gradient is `α_z · m + noise` where
/// `m` is the shared test direction, so exact influence is ordered by
/// `α_z` with a clear spread — the regime where sketched rankings must
/// survive.
fn structured_grads(seed: u64, n_train: usize, n_test: usize, p: usize) -> Vec<CheckpointGrads> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m: Vec<f32> = (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let train: Vec<Vec<f32>> = (0..n_train)
        .map(|z| {
            let alpha = -1.0 + 2.0 * z as f32 / n_train as f32;
            m.iter()
                .map(|&mv| alpha * mv + rng.gen_range(-0.3f32..0.3))
                .collect()
        })
        .collect();
    let test: Vec<Vec<f32>> = (0..n_test)
        .map(|_| {
            m.iter()
                .map(|&mv| mv + rng.gen_range(-0.1f32..0.1))
                .collect()
        })
        .collect();
    vec![CheckpointGrads {
        eta: 0.1,
        time: 0,
        train,
        test,
    }]
}

#[test]
fn scores_bit_identical_across_worker_counts() {
    let cks = synth_grads(42, 4, 403, 17, 96);
    let cfg = TracConfig {
        gamma: 0.9,
        current_time: 3,
        decay_samples: false,
    };
    let serial = influence_scores(&cks, &cfg, None);
    for workers in [1usize, 2, 8] {
        let scores = influence_scores_with(
            &cks,
            &cfg,
            None,
            &ParallelConfig::serial().with_workers(workers),
        );
        // Bit-identical: exact Vec<f32> equality, no tolerance.
        assert_eq!(scores, serial, "workers={workers} diverged from serial");
    }
    // Auto (machine parallelism) is also exact.
    let auto = influence_scores_with(&cks, &cfg, None, &ParallelConfig::auto());
    assert_eq!(auto, serial);
}

#[test]
fn decayed_sample_scores_bit_identical_across_worker_counts() {
    let cks = synth_grads(7, 3, 211, 5, 32);
    let times: Vec<u32> = (0..211).map(|z| (z % 4) as u32).collect();
    let cfg = TracConfig {
        gamma: 0.8,
        current_time: 3,
        decay_samples: true,
    };
    let serial = influence_scores(&cks, &cfg, Some(&times));
    for workers in [2usize, 8] {
        let scores = influence_scores_with(
            &cks,
            &cfg,
            Some(&times),
            &ParallelConfig::serial().with_workers(workers),
        );
        assert_eq!(
            scores, serial,
            "workers={workers} diverged with sample decay"
        );
    }
}

#[test]
fn sketch_reproducible_across_runs_and_workers() {
    let cks = synth_grads(9, 2, 100, 8, 128);
    let cfg = TracConfig::tracin();
    let par = ParallelConfig::serial()
        .with_sketch(32)
        .with_sketch_seed(77);
    let a = influence_scores_with(&cks, &cfg, None, &par);
    let b = influence_scores_with(&cks, &cfg, None, &par);
    assert_eq!(a, b, "fixed sketch seed must reproduce exactly");
    for workers in [2usize, 8] {
        let c = influence_scores_with(&cks, &cfg, None, &par.with_workers(workers));
        assert_eq!(a, c, "sketched scores must be worker-count independent");
    }
    // The projection itself is reproducible vector-by-vector too.
    let g: Vec<f32> = (0..500).map(|i| (i as f32 * 0.37).sin()).collect();
    assert_eq!(
        Sketcher::new(64, 5).sketch_vec(&g),
        Sketcher::new(64, 5).sketch_vec(&g)
    );
}

#[test]
fn sketched_top_30pct_overlaps_exact_at_least_90pct() {
    // 200-sample seeded problem, p = 512 → sketch 256: the top-30% set
    // selected from sketched scores must overlap the exact top-30% by
    // ≥ 90% (the Lin et al. rank-preservation regime).
    let n_train = 200;
    let cks = structured_grads(1234, n_train, 10, 512);
    let cfg = TracConfig::tracin();
    let exact = influence_scores_with(&cks, &cfg, None, &ParallelConfig::serial());
    let sketched =
        influence_scores_with(&cks, &cfg, None, &ParallelConfig::serial().with_sketch(256));
    assert_eq!(exact.len(), n_train);
    let k = (n_train * 30) / 100; // top 30% = 60 samples
    let top_exact: std::collections::HashSet<usize> = select_top_k(&exact, k).into_iter().collect();
    let top_sketched: std::collections::HashSet<usize> =
        select_top_k(&sketched, k).into_iter().collect();
    let overlap = top_exact.intersection(&top_sketched).count();
    assert!(
        overlap * 10 >= k * 9,
        "sketched top-{k} overlaps exact by only {overlap} (need >= {})",
        k * 9 / 10
    );
}

#[test]
fn sketched_scores_approximate_exact_dots() {
    // Beyond ranking: with a healthy sketch dim the scores themselves
    // stay close in relative terms on structured data.
    let cks = structured_grads(99, 50, 5, 256);
    let cfg = TracConfig::tracin();
    let exact = influence_scores(&cks, &cfg, None);
    let sketched =
        influence_scores_with(&cks, &cfg, None, &ParallelConfig::serial().with_sketch(128));
    let scale = exact.iter().map(|s| s.abs()).fold(0.0f32, f32::max);
    let max_err = exact
        .iter()
        .zip(&sketched)
        .map(|(e, s)| (e - s).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_err < 0.5 * scale,
        "sketched scores drifted: max_err {max_err} vs scale {scale}"
    );
}
