//! Property tests for TracSeq invariants (paper Eq. 1–2):
//!
//! - γ = 1 with `decay_samples = false` reduces **exactly** to vanilla
//!   TracInCP, for any `current_time` / checkpoint times.
//! - Scores are linear in the step sizes η_i.
//! - `select_top_k` / `select_bottom_k` agree with a naive sort oracle,
//!   including ties (index tiebreak) and truncation.
//! - The parallel engine is bit-identical to serial for arbitrary inputs
//!   and worker counts.

use proptest::prelude::*;
use zg_influence::{
    influence_scores, influence_scores_with, select_bottom_k, select_top_k, CheckpointGrads,
    ParallelConfig, TracConfig,
};

/// Deterministically shape a flat pool of sampled floats into checkpoint
/// gradients (sizes come from the same proptest case).
fn shape_grads(
    pool: &[f32],
    n_ck: usize,
    n_train: usize,
    n_test: usize,
    p: usize,
) -> Vec<CheckpointGrads> {
    let mut cursor = 0usize;
    let mut next = || {
        let v = pool[cursor % pool.len()];
        cursor += 1;
        v
    };
    (0..n_ck)
        .map(|t| CheckpointGrads {
            eta: 0.01 + 0.1 * ((t + 1) as f32),
            time: t as u32,
            train: (0..n_train)
                .map(|_| (0..p).map(|_| next()).collect())
                .collect(),
            test: (0..n_test)
                .map(|_| (0..p).map(|_| next()).collect())
                .collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// γ = 1 (no checkpoint decay, no sample decay) is exactly vanilla
    /// TracInCP — bit-equal, not approximately equal — regardless of the
    /// nominal `current_time`.
    #[test]
    fn gamma_one_is_exactly_tracin(
        pool in prop::collection::vec(-1.0f32..1.0, 16..200usize),
        n_ck in 1..4usize,
        n_train in 1..10usize,
        n_test in 1..4usize,
        p in 1..8usize,
        current_time in 0u32..50,
    ) {
        let cks = shape_grads(&pool, n_ck, n_train, n_test, p);
        let seq = TracConfig { gamma: 1.0, current_time, decay_samples: false };
        let a = influence_scores(&cks, &seq, None);
        let b = influence_scores(&cks, &TracConfig::tracin(), None);
        prop_assert_eq!(a, b);
    }

    /// Scaling every η_i by `c` scales every score by `c` (to float
    /// tolerance): influence is linear in the step sizes.
    #[test]
    fn scores_linear_in_eta(
        pool in prop::collection::vec(-1.0f32..1.0, 16..200usize),
        n_ck in 1..4usize,
        n_train in 1..10usize,
        n_test in 1..4usize,
        p in 1..8usize,
        c in 0.25f32..4.0,
    ) {
        let cks = shape_grads(&pool, n_ck, n_train, n_test, p);
        let cfg = TracConfig { gamma: 0.9, current_time: 3, decay_samples: false };
        let base = influence_scores(&cks, &cfg, None);
        let scaled_cks: Vec<CheckpointGrads> = cks
            .iter()
            .map(|ck| CheckpointGrads { eta: ck.eta * c, ..ck.clone() })
            .collect();
        let scaled = influence_scores(&scaled_cks, &cfg, None);
        for (s, b) in scaled.iter().zip(&base) {
            let want = c * b;
            prop_assert!(
                (s - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "eta scaling broke linearity: {} vs {}", s, want
            );
        }
    }

    /// Top-K selection agrees with a naive stable-sort oracle (descending
    /// score, ascending index on ties) and bottom-K with its mirror.
    #[test]
    fn selection_matches_sort_oracle(
        raw in prop::collection::vec(-5i32..5, 0..40usize),
        k in 0..50usize,
    ) {
        // Integer-valued scores force plenty of exact ties.
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let mut oracle: Vec<usize> = (0..scores.len()).collect();
        oracle.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
        });
        let kk = k.min(scores.len());
        prop_assert_eq!(select_top_k(&scores, k), oracle[..kk].to_vec());
        let mut oracle_bot: Vec<usize> = (0..scores.len()).collect();
        oracle_bot.sort_by(|&a, &b| {
            scores[a].partial_cmp(&scores[b]).unwrap().then(a.cmp(&b))
        });
        prop_assert_eq!(select_bottom_k(&scores, k), oracle_bot[..kk].to_vec());
        // Dominance: every selected top score >= every unselected score.
        let top = select_top_k(&scores, k);
        let chosen: std::collections::HashSet<usize> = top.iter().copied().collect();
        if let Some(&floor) = top.last() {
            for i in 0..scores.len() {
                if !chosen.contains(&i) {
                    prop_assert!(scores[i] <= scores[floor]);
                }
            }
        }
    }

    /// The parallel engine returns bit-identical scores to serial for any
    /// input shape and worker count (chunk-ordered reduction).
    #[test]
    fn parallel_bit_identical_for_any_workers(
        pool in prop::collection::vec(-1.0f32..1.0, 16..200usize),
        n_ck in 1..3usize,
        n_train in 1..24usize,
        n_test in 1..4usize,
        p in 1..10usize,
        workers in 1..9usize,
    ) {
        let cks = shape_grads(&pool, n_ck, n_train, n_test, p);
        let cfg = TracConfig { gamma: 0.85, current_time: 2, decay_samples: false };
        let serial = influence_scores(&cks, &cfg, None);
        let par = influence_scores_with(
            &cks,
            &cfg,
            None,
            &ParallelConfig::serial().with_workers(workers),
        );
        prop_assert_eq!(serial, par);
    }
}
