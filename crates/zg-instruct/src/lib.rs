//! # zg-instruct
//!
//! Financial-credit instruction data construction (paper §3.2, Table 1):
//! prompt templates for the discriminative (sentiment, classification) and
//! generative (QA) task families, plus answer parsing with **Miss**
//! detection — the third metric of the paper's Table 2.

mod parse;
mod template;

pub use parse::{parse_answer, parse_binary};
pub use template::{
    question_for, render_classification, render_dataset, render_income, render_sentiment,
    InstructExample, TemplateKind,
};
