//! Answer parsing and Miss detection.
//!
//! A generated completion counts as a **Miss** (CALM's "missing" metric)
//! when it cannot be matched to any admissible answer for the template.
//! Matching is deliberately forgiving — case-insensitive, punctuation-
//! tolerant, accepts the answer anywhere in the first clause — because the
//! paper's baselines (Table 2) are judged the same way.

/// Normalize an answer fragment: lowercase, strip punctuation, collapse
/// whitespace.
fn normalize(s: &str) -> String {
    let lowered = s.to_ascii_lowercase();
    let cleaned: String = lowered
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { ' ' })
        .collect();
    cleaned.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Match a generated completion against candidate answers.
///
/// Returns the index of the matched candidate, or `None` (a Miss). The
/// first clause (up to the first period/newline) is searched for a whole-
/// word occurrence of each candidate; if exactly one candidate occurs, it
/// wins. Ambiguous or empty outputs are Misses.
pub fn parse_answer(generated: &str, candidates: &[String]) -> Option<usize> {
    let first_clause: &str = generated.split(['\n', '.']).next().unwrap_or("").trim();
    let norm = normalize(first_clause);
    if norm.is_empty() {
        return None;
    }
    let words: Vec<&str> = norm.split(' ').collect();
    let mut hit: Option<usize> = None;
    for (i, cand) in candidates.iter().enumerate() {
        let cand_norm = normalize(cand);
        if cand_norm.is_empty() {
            continue;
        }
        let cand_words: Vec<&str> = cand_norm.split(' ').collect();
        let occurs = words
            .windows(cand_words.len())
            .any(|w| w == cand_words.as_slice());
        if occurs {
            match hit {
                None => hit = Some(i),
                // Two different candidates matched: ambiguous -> Miss.
                Some(prev) if prev != i => return None,
                Some(_) => {}
            }
        }
    }
    hit
}

/// Binary convenience: map a completion to the positive/negative class.
/// `candidates[1]` is positive by the `zg-instruct` rendering convention.
pub fn parse_binary(generated: &str, negative: &str, positive: &str) -> zg_eval::Prediction {
    let candidates = vec![negative.to_string(), positive.to_string()];
    match parse_answer(generated, &candidates) {
        Some(1) => zg_eval::Prediction::Label(true),
        Some(_) => zg_eval::Prediction::Label(false),
        None => zg_eval::Prediction::Miss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_eval::Prediction;

    fn cands(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_match() {
        assert_eq!(parse_answer("Yes", &cands(&["No", "Yes"])), Some(1));
        assert_eq!(parse_answer("No", &cands(&["No", "Yes"])), Some(0));
    }

    #[test]
    fn case_and_punctuation_tolerant() {
        assert_eq!(parse_answer(" YES. ", &cands(&["No", "Yes"])), Some(1));
        assert_eq!(parse_answer("good,", &cands(&["good", "bad"])), Some(0));
    }

    #[test]
    fn answer_embedded_in_sentence() {
        assert_eq!(
            parse_answer("The answer is bad", &cands(&["good", "bad"])),
            Some(1)
        );
    }

    #[test]
    fn only_first_clause_considered() {
        // Second sentence contradicts; we read the first only.
        assert_eq!(
            parse_answer("Yes. Although maybe no", &cands(&["No", "Yes"])),
            Some(1)
        );
    }

    #[test]
    fn ambiguous_is_miss() {
        assert_eq!(parse_answer("good or bad", &cands(&["good", "bad"])), None);
    }

    #[test]
    fn garbage_is_miss() {
        assert_eq!(parse_answer("qwerty", &cands(&["No", "Yes"])), None);
        assert_eq!(parse_answer("", &cands(&["No", "Yes"])), None);
        assert_eq!(parse_answer("   \n", &cands(&["No", "Yes"])), None);
    }

    #[test]
    fn whole_word_only() {
        // "goodness" must not match "good".
        assert_eq!(parse_answer("goodness", &cands(&["good", "bad"])), None);
        // "no" inside "notable" must not match.
        assert_eq!(parse_answer("notable", &cands(&["no", "yes"])), None);
    }

    #[test]
    fn multiclass_sentiment() {
        let c = cands(&["good", "neutral", "bad"]);
        assert_eq!(parse_answer("neutral", &c), Some(1));
        assert_eq!(parse_answer("It seems bad overall", &c), Some(2));
    }

    #[test]
    fn parse_binary_maps_to_prediction() {
        assert_eq!(parse_binary("Yes", "No", "Yes"), Prediction::Label(true));
        assert_eq!(parse_binary("no!", "No", "Yes"), Prediction::Label(false));
        assert_eq!(parse_binary("dunno", "No", "Yes"), Prediction::Miss);
    }

    #[test]
    fn repeated_same_candidate_not_ambiguous() {
        assert_eq!(parse_answer("yes yes yes", &cands(&["No", "Yes"])), Some(1));
    }
}
