//! Prompt templates from the paper's Table 1.
//!
//! Discriminative tasks:
//! ```text
//! {sentence}
//! Question: what is the sentiment? Answer: {good/neutral/bad}
//!
//! {sentence}
//! Question: {question}? Answer: {Yes/No}
//! ```
//! Generative tasks (QA): user-profile questions answered with a level.

use serde::{Deserialize, Serialize};
use zg_data::{Dataset, IncomeRecord, Record, Sentiment, SentimentExample, TaskKind};

/// Template family (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Discriminative / sentiment analysis: `good/neutral/bad`.
    SentimentAnalysis,
    /// Discriminative / classification: dataset-specific binary question.
    Classification,
    /// Generative / QA: profile questions (income level).
    Qa,
}

/// One rendered instruction example (text level — tokenization happens in
/// the trainer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstructExample {
    /// Prompt text ending in `"Answer:"` (the completion boundary).
    pub prompt: String,
    /// Gold answer text (e.g. `"Yes"`, `"good"`, `"medium"`).
    pub answer: String,
    /// All admissible answers for this template, gold included.
    pub candidates: Vec<String>,
    /// Source dataset name.
    pub dataset: String,
    /// Source record id.
    pub record_id: usize,
    /// Binary label when the underlying task is binary (positive class).
    pub label: Option<bool>,
    /// Time period for sequential behavior data.
    pub time: Option<u32>,
    /// User id for sequential behavior data.
    pub user: Option<usize>,
}

impl InstructExample {
    /// The full training text: prompt plus gold answer.
    pub fn full_text(&self) -> String {
        format!("{} {}", self.prompt, self.answer)
    }
}

/// The question asked for each task family (Table 1 "Classification" row,
/// instantiated per dataset as in CALM).
pub fn question_for(task: TaskKind) -> &'static str {
    match task {
        TaskKind::CreditScoring => {
            "based on the applicant profile above, is the credit risk good or bad"
        }
        TaskKind::FraudDetection => "is this transaction or application fraudulent, Yes or No",
        TaskKind::ClaimAnalysis => "is this insurance claim fraudulent, Yes or No",
        TaskKind::DistressIdentification => {
            "based on these financial ratios, will the company face financial distress, Yes or No"
        }
        TaskKind::BehaviorRisk => {
            "based on this behavior record, will the user default on their loan, Yes or No"
        }
        TaskKind::FinancialAuditing => {
            "does this journal entry show signs of irregularity requiring audit review, Yes or No"
        }
    }
}

/// Render the classification template for one record of `ds`.
pub fn render_classification(ds: &Dataset, record: &Record) -> InstructExample {
    let answer = if record.label {
        ds.positive_name.clone()
    } else {
        ds.negative_name.clone()
    };
    InstructExample {
        prompt: format!(
            "{}\nQuestion: {}? Answer:",
            record.feature_text(),
            question_for(ds.task)
        ),
        answer,
        candidates: vec![ds.negative_name.clone(), ds.positive_name.clone()],
        dataset: ds.name.clone(),
        record_id: record.id,
        label: Some(record.label),
        time: record.time,
        user: record.user,
    }
}

/// Render every record of a dataset.
pub fn render_dataset(ds: &Dataset) -> Vec<InstructExample> {
    ds.records
        .iter()
        .map(|r| render_classification(ds, r))
        .collect()
}

/// Render the sentiment template (Table 1 first row).
pub fn render_sentiment(ex: &SentimentExample, id: usize) -> InstructExample {
    InstructExample {
        prompt: format!("{}\nQuestion: what is the sentiment? Answer:", ex.text),
        answer: ex.label.text().to_string(),
        candidates: Sentiment::ALL
            .iter()
            .map(|s| s.text().to_string())
            .collect(),
        dataset: "Sentiment".to_string(),
        record_id: id,
        label: None,
        time: None,
        user: None,
    }
}

/// Render the generative QA income template (paper §3.2).
pub fn render_income(rec: &IncomeRecord) -> InstructExample {
    InstructExample {
        prompt: format!(
            "{}\nQuestion: what is the user's expected income level, low, medium or high? Answer:",
            rec.feature_text()
        ),
        answer: rec.bucket().text().to_string(),
        candidates: zg_data::IncomeBucket::ALL
            .iter()
            .map(|b| b.text().to_string())
            .collect(),
        dataset: "Income".to_string(),
        record_id: rec.id,
        label: None,
        time: None,
        user: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::{german, income_dataset, sentiment_dataset};

    #[test]
    fn classification_template_shape() {
        let ds = german(10, 1);
        let ex = render_classification(&ds, &ds.records[0]);
        assert!(ex.prompt.contains("Question: "));
        assert!(ex.prompt.ends_with("Answer:"));
        assert!(ex.prompt.contains("credit amount: "));
        assert!(ex.answer == "good" || ex.answer == "bad");
        assert_eq!(ex.candidates, vec!["good".to_string(), "bad".to_string()]);
        assert_eq!(ex.label, Some(ds.records[0].label));
    }

    #[test]
    fn full_text_joins_prompt_and_answer() {
        let ds = german(5, 2);
        let ex = render_classification(&ds, &ds.records[1]);
        assert!(ex.full_text().ends_with(&format!("Answer: {}", ex.answer)));
    }

    #[test]
    fn render_dataset_covers_all() {
        let ds = german(25, 3);
        let exs = render_dataset(&ds);
        assert_eq!(exs.len(), 25);
        assert!(exs.iter().any(|e| e.answer == "bad"));
        assert!(exs.iter().any(|e| e.answer == "good"));
    }

    #[test]
    fn sentiment_template_matches_table1() {
        let s = sentiment_dataset(3, 4);
        let ex = render_sentiment(&s[0], 0);
        assert!(ex
            .prompt
            .ends_with("Question: what is the sentiment? Answer:"));
        assert_eq!(ex.candidates.len(), 3);
    }

    #[test]
    fn income_template_generative() {
        let recs = income_dataset(3, 5);
        let ex = render_income(&recs[0]);
        assert!(ex.prompt.contains("phone brand"));
        assert!(["low", "medium", "high"].contains(&ex.answer.as_str()));
    }

    #[test]
    fn behavior_question_mentions_default() {
        assert!(question_for(TaskKind::BehaviorRisk).contains("default"));
    }
}
