//! `lint.toml` parsing: a hand-rolled subset of TOML (the container has
//! no registry access, so no `toml` crate). Supported grammar:
//!
//! ```toml
//! # comment
//! [rules]
//! warn = ["D2"]            # rules downgraded to warnings (still reported)
//!
//! [r1]                     # panic-reachability roots (rule R1)
//! roots = ["Server::tick", "ZiGongEngine::execute"]
//!
//! [r2]                     # inference-root discovery prefixes (rule R2)
//! entry_prefixes = ["evaluate_", "generate", "serve_"]
//!
//! [[allow]]                # one allowlist entry
//! rule = "D1"
//! path = "crates/zg-tensor/src/autograd.rs"   # file or directory prefix
//! reason = "membership-only HashSet; never iterated"
//! # kind = "index"         # optional: restrict to one finding kind
//!
//! [[g1]]                   # inference entry point manifest (rule G1)
//! file = "crates/zg-model/src/lm.rs"
//! function = "CausalLm::generate"
//! ```
//!
//! Every `[[allow]]` entry **must** carry a `reason` — the config format
//! itself enforces that suppressions are justified.

use std::fmt;

/// One allowlist entry: suppress `rule` under `path` (exact file or
/// directory prefix), with a mandatory human justification.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// Rule id, e.g. `"D1"`.
    pub rule: String,
    /// Workspace-relative path; a trailing-slash-free prefix also matches
    /// whole directories (`crates/zg-bench` covers every file under it).
    pub path: String,
    /// Why this suppression is sound.
    pub reason: String,
    /// Optional finding kind this entry is scoped to (`"index"`,
    /// `"panic"`, `"taint"`, ...); empty matches every kind.
    pub kind: String,
    /// 1-based line of the `[[allow]]` header in the config file, for
    /// staleness diagnostics (rule A1). 0 for hand-built configs.
    pub line: usize,
}

/// One G1 manifest entry: the inference root `function`
/// (`Type::name` / free-fn name) discovered in `file`.
#[derive(Debug, Clone, PartialEq)]
pub struct G1Entry {
    /// Workspace-relative file path.
    pub file: String,
    /// Qualified function name (`Type::name` for methods).
    pub function: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Allowlist entries.
    pub allow: Vec<AllowEntry>,
    /// G1 inference entry point manifest.
    pub g1: Vec<G1Entry>,
    /// Rules reported as warnings instead of errors (unless `--deny-all`).
    pub warn: Vec<String>,
    /// R1 panic-reachability roots (qualified fn names).
    pub r1_roots: Vec<String>,
    /// R2 inference-root discovery name prefixes.
    pub r2_prefixes: Vec<String>,
}

/// Config parse failure with line context.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    None,
    Rules,
    R1,
    R2,
    Allow,
    G1,
}

impl Config {
    /// Parse config text. See module docs for the accepted grammar.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                cfg.allow.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    kind: String::new(),
                    line: lineno,
                });
                section = Section::Allow;
            } else if line == "[[g1]]" {
                cfg.g1.push(G1Entry {
                    file: String::new(),
                    function: String::new(),
                });
                section = Section::G1;
            } else if line == "[rules]" {
                section = Section::Rules;
            } else if line == "[r1]" {
                section = Section::R1;
            } else if line == "[r2]" {
                section = Section::R2;
            } else if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown section {line}"),
                });
            } else {
                let (key, value) = split_assignment(&line, lineno)?;
                match section {
                    Section::Rules => match key.as_str() {
                        "warn" => cfg.warn = parse_string_array(&value, lineno)?,
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown key `{key}` in [rules]"),
                            })
                        }
                    },
                    Section::R1 => match key.as_str() {
                        "roots" => cfg.r1_roots = parse_string_array(&value, lineno)?,
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown key `{key}` in [r1]"),
                            })
                        }
                    },
                    Section::R2 => match key.as_str() {
                        "entry_prefixes" => cfg.r2_prefixes = parse_string_array(&value, lineno)?,
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown key `{key}` in [r2]"),
                            })
                        }
                    },
                    Section::Allow => {
                        // INVARIANT: entering Section::Allow pushes an entry.
                        let entry = cfg.allow.last_mut().expect("allow entry exists");
                        let slot = match key.as_str() {
                            "rule" => &mut entry.rule,
                            "path" => &mut entry.path,
                            "reason" => &mut entry.reason,
                            "kind" => &mut entry.kind,
                            _ => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!("unknown key `{key}` in [[allow]]"),
                                })
                            }
                        };
                        *slot = parse_string(&value, lineno)?;
                    }
                    Section::G1 => {
                        // INVARIANT: entering Section::G1 pushes an entry.
                        let entry = cfg.g1.last_mut().expect("g1 entry exists");
                        let slot = match key.as_str() {
                            "file" => &mut entry.file,
                            "function" => &mut entry.function,
                            _ => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!("unknown key `{key}` in [[g1]]"),
                                })
                            }
                        };
                        *slot = parse_string(&value, lineno)?;
                    }
                    Section::None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("key `{key}` outside any section"),
                        })
                    }
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for entry in &self.allow {
            if entry.rule.is_empty() || entry.path.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: "[[allow]] entry needs both `rule` and `path`".into(),
                });
            }
            if entry.reason.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: format!(
                        "[[allow]] entry for {} / {} has no `reason` — every \
                         suppression must be justified",
                        entry.rule, entry.path
                    ),
                });
            }
        }
        for entry in &self.g1 {
            if entry.file.is_empty() || entry.function.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: "[[g1]] entry needs both `file` and `function`".into(),
                });
            }
        }
        Ok(())
    }

    /// Whether `rule` at `path` is suppressed by an allowlist entry
    /// (kind-agnostic entries only — lexical rules carry no kind).
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.matching_allow(rule, path, "").is_some()
    }

    /// Index of the first allowlist entry suppressing (`rule`, `path`,
    /// `kind`). An entry with an empty `kind` matches every kind; an
    /// entry with a concrete kind matches only that kind. Returning the
    /// index lets the engine track which entries ever fire (rule A1).
    pub fn matching_allow(&self, rule: &str, path: &str, kind: &str) -> Option<usize> {
        self.allow.iter().position(|e| {
            e.rule == rule
                && (e.kind.is_empty() || e.kind == kind)
                && (e.path == path
                    || (path.starts_with(&e.path)
                        && path.as_bytes().get(e.path.len()) == Some(&b'/')))
        })
    }
}

/// Drop a `#`-to-end-of-line comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_assignment(line: &str, lineno: usize) -> Result<(String, String), ConfigError> {
    match line.split_once('=') {
        Some((k, v)) => Ok((k.trim().to_string(), v.trim().to_string())),
        None => Err(ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        }),
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{value}`"),
        })
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected an array of strings, got `{value}`"),
        });
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|s| parse_string(s.trim(), lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# top comment
[rules]
warn = ["D2"]

[[allow]]
rule = "D1"
path = "crates/x/src/a.rs"   # trailing comment
reason = "lookup only"

[[g1]]
file = "crates/m/src/lm.rs"
function = "generate"
"#,
        )
        .expect("parse");
        assert_eq!(cfg.warn, vec!["D2"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].path, "crates/x/src/a.rs");
        assert_eq!(cfg.g1.len(), 1);
        assert_eq!(cfg.g1[0].function, "generate");
    }

    #[test]
    fn allow_without_reason_rejected() {
        let err =
            Config::parse("[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\n").expect_err("must reject");
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_key_rejected() {
        assert!(Config::parse("[[allow]]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("[weird]\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
    }

    #[test]
    fn allow_prefix_matches_directories() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"D2\"\npath = \"crates/zg-bench\"\nreason = \"timing harness\"\n",
        )
        .expect("parse");
        assert!(cfg.is_allowed("D2", "crates/zg-bench/src/lib.rs"));
        assert!(cfg.is_allowed("D2", "crates/zg-bench/src/bin/t.rs"));
        assert!(!cfg.is_allowed("D2", "crates/zg-benchmark/src/lib.rs"));
        assert!(!cfg.is_allowed("D1", "crates/zg-bench/src/lib.rs"));
    }

    #[test]
    fn empty_warn_array() {
        let cfg = Config::parse("[rules]\nwarn = []\n").expect("parse");
        assert!(cfg.warn.is_empty());
    }

    #[test]
    fn r1_and_r2_sections_parse() {
        let cfg = Config::parse(
            "[r1]\nroots = [\"Server::tick\", \"ZiGongEngine::execute\"]\n\n\
             [r2]\nentry_prefixes = [\"evaluate_\", \"generate\"]\n",
        )
        .expect("parse");
        assert_eq!(cfg.r1_roots, vec!["Server::tick", "ZiGongEngine::execute"]);
        assert_eq!(cfg.r2_prefixes, vec!["evaluate_", "generate"]);
        assert!(Config::parse("[r1]\nbogus = []\n").is_err());
        assert!(Config::parse("[r2]\nbogus = []\n").is_err());
    }

    #[test]
    fn kind_scoped_allow_matches_only_its_kind() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"R1\"\npath = \"crates/zg-tensor\"\n\
             kind = \"index\"\nreason = \"shape-checked kernels\"\n",
        )
        .expect("parse");
        assert!(cfg
            .matching_allow("R1", "crates/zg-tensor/src/ops.rs", "index")
            .is_some());
        assert!(cfg
            .matching_allow("R1", "crates/zg-tensor/src/ops.rs", "panic")
            .is_none());
        // Kind-agnostic lookup (lexical rules) skips kind-scoped entries.
        assert!(!cfg.is_allowed("R1", "crates/zg-tensor/src/ops.rs"));
    }

    #[test]
    fn allow_entries_record_their_config_line() {
        let cfg = Config::parse(
            "# header\n\n[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\nreason = \"r\"\n",
        )
        .expect("parse");
        assert_eq!(cfg.allow[0].line, 3);
    }
}
