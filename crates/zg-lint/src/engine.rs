//! Workspace walker: collects `.rs` files under the scan roots, lexes
//! each one, runs the rules, and filters against the allowlist. All
//! ordering is explicit (sorted paths, sorted violations) so two runs
//! over the same tree produce byte-identical reports.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer::lex;
use crate::rules::{check_file, Violation};

/// Directory names never scanned: generated/vendored code and test-only
/// trees (integration tests, benches, examples are test code wholesale).
const SKIP_DIRS: [&str; 6] = [
    "target", "vendor", "tests", "benches", "examples", "fixtures",
];

/// Roots scanned relative to the workspace root.
const SCAN_ROOTS: [&str; 2] = ["crates", "src"];

/// Outcome of a full workspace scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Violations not covered by the allowlist, sorted.
    pub violations: Vec<Violation>,
    /// Violations suppressed by lint.toml allow entries, sorted.
    pub allowed: Vec<Violation>,
    /// Workspace-relative paths scanned, sorted.
    pub files: Vec<String>,
}

/// Scan failure (I/O or config).
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Walk the workspace at `root` and run every rule over every library
/// source file.
pub fn scan_workspace(root: &Path, config: &Config) -> Result<ScanResult, ScanError> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut rel_files: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(path_to_slash)
        .collect();
    rel_files.sort();

    let mut result = ScanResult::default();
    for rel in &rel_files {
        let full = root.join(rel);
        let src =
            fs::read_to_string(&full).map_err(|e| ScanError(format!("reading {rel}: {e}")))?;
        let model = lex(&src);
        for v in check_file(rel, &model, config) {
            if config.is_allowed(v.rule, rel) {
                result.allowed.push(v);
            } else {
                result.violations.push(v);
            }
        }
    }
    result.violations.sort();
    result.allowed.sort();
    result.files = rel_files;
    Ok(result)
}

/// Check a single in-memory source (fixture tests and editor integration).
pub fn scan_source(path: &str, src: &str, config: &Config) -> Vec<Violation> {
    check_file(path, &lex(src), config)
        .into_iter()
        .filter(|v| !config.is_allowed(v.rule, path))
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries =
        fs::read_dir(dir).map_err(|e| ScanError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError(format!("walking {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn path_to_slash(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root from a starting directory by walking up to
/// the first directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
