//! The two-phase scan pipeline.
//!
//! Phase 0 walks the workspace, lexes every `.rs` file, and runs the
//! lexical rules (D1/D2/P1/U1). Phase 1 parses each lexed file into its
//! item model ([`crate::model`]); phase 2 links the workspace call graph
//! ([`crate::graph`]) and runs the reachability rules R1–R4 plus the
//! emitted G1 manifest ([`crate::reach`]). Allowlist filtering and
//! staleness tracking (rule A1) are shared across phases.
//!
//! All ordering is explicit — input files are sorted by path before any
//! rule runs and violations are sorted by `(path, line, rule)` — so two
//! scans over the same tree produce byte-identical reports regardless of
//! directory-walk order.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{Config, G1Entry};
use crate::graph::CallGraph;
use crate::lexer::{lex, SourceModel};
use crate::model::{parse_file, FileModel};
use crate::reach::{self, GraphStats};
use crate::rules::{check_file, Violation};

/// Directory names never scanned: build output, vendored crates, and
/// lint fixture corpora.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", "fixtures"];

/// Directory names scanned *as test scope*: integration tests, benches,
/// and examples get the same rule relaxation as `#[cfg(test)]` code.
const TEST_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Roots scanned relative to the workspace root.
const SCAN_ROOTS: [&str; 2] = ["crates", "src"];

/// Outcome of a full workspace scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Violations not covered by the allowlist, sorted.
    pub violations: Vec<Violation>,
    /// Violations suppressed by lint.toml allow entries, sorted.
    pub allowed: Vec<Violation>,
    /// Workspace-relative paths scanned, sorted.
    pub files: Vec<String>,
    /// The emitted G1 manifest (discovered inference roots), sorted.
    pub manifest: Vec<G1Entry>,
    /// Call-graph shape counters.
    pub stats: GraphStats,
}

/// Scan failure (I/O or config).
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Does this workspace-relative path live in a test-scope directory?
pub fn is_test_path(path: &str) -> bool {
    path.split('/').any(|seg| TEST_DIRS.contains(&seg))
}

/// Walk the workspace at `root` and run the full two-phase pipeline.
pub fn scan_workspace(root: &Path, config: &Config) -> Result<ScanResult, ScanError> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut sources: Vec<(String, String)> = Vec::new();
    for full in &files {
        let Ok(rel) = full.strip_prefix(root) else {
            continue;
        };
        let rel = path_to_slash(rel);
        let src = fs::read_to_string(full).map_err(|e| ScanError(format!("reading {rel}: {e}")))?;
        sources.push((rel, src));
    }
    Ok(run_pipeline(sources, config))
}

/// Run the full pipeline over in-memory sources (reachability fixture
/// tests; multi-file). Input order does not matter — the pipeline sorts.
pub fn scan_sources(sources: &[(&str, &str)], config: &Config) -> ScanResult {
    run_pipeline(
        sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
        config,
    )
}

/// Check a single in-memory source with the lexical rules only (fixture
/// tests and editor integration; no call graph is linked).
pub fn scan_source(path: &str, src: &str, config: &Config) -> Vec<Violation> {
    let mut model = lex(src);
    if is_test_path(path) {
        force_test_scope(&mut model);
    }
    check_file(path, &model, config)
        .into_iter()
        .filter(|v| !config.is_allowed(v.rule, path))
        .collect()
}

fn force_test_scope(model: &mut SourceModel) {
    for line in &mut model.lines {
        line.in_test = true;
    }
}

fn run_pipeline(mut sources: Vec<(String, String)>, config: &Config) -> ScanResult {
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    sources.dedup_by(|a, b| a.0 == b.0);

    let mut result = ScanResult::default();
    let mut matched = vec![false; config.allow.len()];

    // Lexical G1 (token-in-body) is superseded in graph mode by R2
    // guard domination + manifest equality; strip the manifest so
    // phase 0 doesn't double-report against qualified entries.
    let mut lexical_config = config.clone();
    lexical_config.g1.clear();

    let mut models: Vec<FileModel> = Vec::new();
    for (path, src) in &sources {
        let mut model = lex(src);
        if is_test_path(path) {
            force_test_scope(&mut model);
        }
        for v in check_file(path, &model, &lexical_config) {
            match config.matching_allow(v.rule, path, "") {
                Some(i) => {
                    matched[i] = true;
                    result.allowed.push(v);
                }
                None => result.violations.push(v),
            }
        }
        models.push(parse_file(path, &model));
    }

    let graph = CallGraph::link(&models);
    let outcome = reach::analyze(&graph, config);
    for f in outcome.findings {
        match config.matching_allow(f.violation.rule, &f.violation.path, f.kind) {
            Some(i) => {
                matched[i] = true;
                result.allowed.push(f.violation);
            }
            None => result.violations.push(f.violation),
        }
    }

    // A1: reviewed exceptions must keep earning their place — an allow
    // entry that no longer suppresses anything is itself a finding.
    for (i, entry) in config.allow.iter().enumerate() {
        if !matched[i] {
            let kind = if entry.kind.is_empty() {
                String::new()
            } else {
                format!(", kind \"{}\"", entry.kind)
            };
            result.violations.push(Violation {
                path: "lint.toml".to_string(),
                line: entry.line.max(1),
                col: 1,
                rule: "A1",
                message: format!(
                    "stale [[allow]] entry: rule {} under `{}`{kind} matches no \
                     violation — the exception has rotted; remove it or fix the \
                     rule/path",
                    entry.rule, entry.path
                ),
            });
        }
    }

    result.violations.sort();
    result.allowed.sort();
    result.manifest = outcome.manifest;
    result.stats = outcome.stats;
    result.files = sources.into_iter().map(|(p, _)| p).collect();
    result
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries =
        fs::read_dir(dir).map_err(|e| ScanError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError(format!("walking {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn path_to_slash(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root from a starting directory by walking up to
/// the first directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
