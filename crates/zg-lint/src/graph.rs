//! Phase 2 of the two-phase engine: link the per-file item models
//! ([`crate::model`]) into one workspace call graph.
//!
//! ## Name resolution
//!
//! Resolution is heuristic and *conservatively over-approximating*: when
//! a call target cannot be pinned down, the linker adds an edge to
//! **every** workspace function with that name, so reachability rules
//! can report false positives (handled via justifications and reviewed
//! `lint.toml` allows) but not silently miss a real path.
//!
//! * `Type::method(..)` — exact: methods of `Type`'s impl blocks
//!   (`Self` maps to the enclosing impl type). An unknown type is
//!   external: no edge.
//! * `module::func(..)` (lowercase qualifier) — free fns named `func`.
//! * `recv.chain.method(..)` — the receiver chain is resolved through
//!   local/parameter types and struct field types (`self.model.lm` →
//!   `Replica.model: ZiGongModel`, `ZiGongModel.lm: CausalLm`). A chain
//!   that resolves to a known workspace type links only that type's
//!   methods; a chain that resolves to a known *external* type (`Vec`,
//!   `Option`, ...) links nothing; an unresolvable chain links every
//!   method with that name (the trait-call over-approximation).
//! * `func(..)` — free fns named `func`; unknown names are external.
//!
//! Test-scope functions are excluded from the graph entirely: they are
//! neither nodes nor resolution candidates, so a test helper sharing a
//! hot-path method name cannot bend reachability.

use std::collections::BTreeMap;

use crate::model::{CallKind, FileModel, FnItem};

/// Method names that collide with std primitive / iterator / slice
/// methods (`f64::clamp`, `Iterator::sum`, `[T]::len`, ...). An
/// *unresolvable* receiver calling one of these is treated as external
/// rather than over-approximated: linking every workspace method named
/// `sum` would wire every `xs.iter().sum()` into `Tensor::sum` and
/// drown the reachability rules in false paths. Distinctively-named
/// methods (`prefill`, `log_softmax`, ...) keep the conservative
/// link-to-all fallback.
const STD_METHOD_NAMES: [&str; 48] = [
    "abs", "ceil", "clamp", "clear", "clone", "collect", "contains", "count", "drain", "entry",
    "exp", "extend", "filter", "find", "first", "floor", "fold", "get", "insert", "is_empty",
    "iter", "join", "keys", "last", "len", "ln", "log10", "log2", "map", "max", "min", "next",
    "parse", "pop", "position", "powf", "powi", "product", "push", "recip", "remove", "retain",
    "round", "signum", "sqrt", "sum", "take", "values",
];

/// Common std/vendored receiver types treated as external: a chain that
/// resolves to one of these links no workspace edge even if a workspace
/// method shares the name.
const EXTERNAL_TYPES: [&str; 28] = [
    "Vec",
    "String",
    "str",
    "Option",
    "Result",
    "Box",
    "Rc",
    "Arc",
    "RefCell",
    "Cell",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "HashMap",
    "HashSet",
    "OnceLock",
    "Mutex",
    "RwLock",
    "Instant",
    "Duration",
    "SystemTime",
    "PathBuf",
    "Path",
    "File",
    "Sender",
    "Receiver",
    "JoinHandle",
    "StdRng",
];

/// One function node, flattened from [`FnItem`] with its file path.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative path.
    pub path: String,
    /// The parsed item.
    pub item: FnItem,
}

impl Node {
    /// `Type::name` / `name` — display and root-matching form.
    pub fn qname(&self) -> String {
        self.item.qualified_name()
    }
}

/// The linked workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Non-test functions, sorted by `(path, line)`.
    pub nodes: Vec<Node>,
    /// Forward adjacency (callee ids per node), sorted and deduped.
    pub edges: Vec<Vec<usize>>,
    /// Reverse adjacency (caller ids per node).
    pub redges: Vec<Vec<usize>>,
    /// Call sites that resolved to at least one workspace function.
    pub resolved_calls: usize,
    /// Call sites treated as external (no workspace target).
    pub external_calls: usize,
}

impl CallGraph {
    /// Link the item models of every scanned file.
    pub fn link(files: &[FileModel]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        for f in files {
            for item in &f.fns {
                if item.in_test {
                    continue;
                }
                nodes.push(Node {
                    path: f.path.clone(),
                    item: item.clone(),
                });
            }
        }
        nodes.sort_by(|a, b| (&a.path, a.item.line).cmp(&(&b.path, b.item.line)));

        // Resolution indexes. All BTreeMaps: iteration order (and hence
        // edge order) is deterministic.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        // `Type::method` keys are owned so lookups can be built from
        // locally-resolved receiver types.
        let mut typed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut known_types: BTreeMap<&str, ()> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            match &n.item.impl_type {
                Some(t) => {
                    methods.entry(&n.item.name).or_default().push(id);
                    typed
                        .entry(format!("{t}::{}", n.item.name))
                        .or_default()
                        .push(id);
                    known_types.insert(t, ());
                }
                None => free.entry(&n.item.name).or_default().push(id),
            }
        }
        let mut fields: BTreeMap<&str, BTreeMap<&str, &str>> = BTreeMap::new();
        for f in files {
            for s in &f.structs {
                let entry = fields.entry(&s.name).or_default();
                for (field, ty) in &s.fields {
                    entry.insert(field, ty);
                }
                known_types.insert(&s.name, ());
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut resolved_calls = 0usize;
        let mut external_calls = 0usize;
        for id in 0..nodes.len() {
            let mut targets: Vec<usize> = Vec::new();
            for call in &nodes[id].item.calls {
                let resolved: &[usize] = match &call.kind {
                    CallKind::Free(name) => free.get(name.as_str()).map_or(&[], Vec::as_slice),
                    CallKind::Path { qualifier, name } => {
                        let q = if qualifier == "Self" {
                            nodes[id].item.impl_type.as_deref().unwrap_or("Self")
                        } else {
                            qualifier.as_str()
                        };
                        if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                            typed
                                .get(&format!("{q}::{name}"))
                                .map_or(&[], Vec::as_slice)
                        } else {
                            // Module-qualified free call.
                            free.get(name.as_str()).map_or(&[], Vec::as_slice)
                        }
                    }
                    CallKind::Method { name, chain } => {
                        match resolve_chain(&nodes[id].item, chain, &fields) {
                            Some(ty) if EXTERNAL_TYPES.contains(&ty.as_str()) => &[],
                            Some(ty) if known_types.contains_key(ty.as_str()) => typed
                                .get(&format!("{ty}::{name}"))
                                .map_or(&[], Vec::as_slice),
                            // Unknown receiver type: the conservative
                            // over-approximation — every method with
                            // this name — unless the name collides with
                            // a std method, where the overwhelmingly
                            // likely target is the std one.
                            _ if STD_METHOD_NAMES.contains(&name.as_str()) => &[],
                            _ => methods.get(name.as_str()).map_or(&[], Vec::as_slice),
                        }
                    }
                };
                if resolved.is_empty() {
                    external_calls += 1;
                } else {
                    resolved_calls += 1;
                    targets.extend_from_slice(resolved);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            edges[id] = targets;
        }

        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (from, outs) in edges.iter().enumerate() {
            for &to in outs {
                redges[to].push(from);
            }
        }
        for r in &mut redges {
            r.sort_unstable();
            r.dedup();
        }

        CallGraph {
            nodes,
            edges,
            redges,
            resolved_calls,
            external_calls,
        }
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Node ids whose qualified name equals `qname` (`Type::method` or a
    /// free-fn name).
    pub fn find(&self, qname: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.qname() == qname)
            .map(|(id, _)| id)
            .collect()
    }

    /// Forward BFS from `roots`; returns the reachable set (including
    /// the roots), in ascending id order.
    pub fn reachable(&self, roots: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            for &c in &self.edges[n] {
                if !seen[c] {
                    seen[c] = true;
                    queue.push(c);
                }
            }
        }
        let mut out: Vec<usize> = queue;
        out.sort_unstable();
        out
    }

    /// Shortest call chain from any of `roots` to `target` (inclusive),
    /// by BFS with smallest-id tie-breaking; `None` if unreachable.
    pub fn witness_path(&self, roots: &[usize], target: usize) -> Option<Vec<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            if n == target {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &c in &self.edges[n] {
                if !seen[c] {
                    seen[c] = true;
                    parent[c] = Some(n);
                    queue.push(c);
                }
            }
        }
        None
    }

    /// Render a witness chain as `a → b → c`, elided in the middle when
    /// longer than six hops.
    pub fn render_chain(&self, path: &[usize]) -> String {
        let names: Vec<String> = path.iter().map(|&id| self.nodes[id].qname()).collect();
        if names.len() <= 6 {
            names.join(" -> ")
        } else {
            format!(
                "{} -> {} -> ... -> {} -> {}",
                names[0],
                names[1],
                names[names.len() - 2],
                names[names.len() - 1]
            )
        }
    }
}

/// Resolve a dotted receiver chain to a type name: the head through
/// locals (`self` → impl type), subsequent segments through struct
/// fields. `None` when any hop is unknown.
fn resolve_chain(
    item: &FnItem,
    chain: &[String],
    fields: &BTreeMap<&str, BTreeMap<&str, &str>>,
) -> Option<String> {
    let (head, rest) = chain.split_first()?;
    let mut ty: String = if head == "self" {
        item.impl_type.clone()?
    } else {
        item.locals.get(head)?.clone()
    };
    for seg in rest {
        let next = fields.get(ty.as_str())?.get(seg.as_str())?;
        ty = (*next).to_string();
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::parse_file;

    fn link(srcs: &[(&str, &str)]) -> CallGraph {
        let files: Vec<FileModel> = srcs.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        CallGraph::link(&files)
    }

    #[test]
    fn free_calls_link_across_files() {
        let g = link(&[
            ("a.rs", "pub fn caller() { helper(); }\n"),
            ("b.rs", "pub fn helper() {}\n"),
        ]);
        let caller = g.find("caller")[0];
        let helper = g.find("helper")[0];
        assert_eq!(g.edges[caller], vec![helper]);
        assert_eq!(g.redges[helper], vec![caller]);
    }

    #[test]
    fn typed_method_resolution_through_fields() {
        let src = "\
pub struct Engine { replica: Replica }
pub struct Replica { pool: Pool }
pub struct Pool;
impl Pool { pub fn acquire(&self) {} }
impl Engine {
    pub fn run(&self) { self.replica.pool.acquire(); }
}
";
        let g = link(&[("a.rs", src)]);
        let run = g.find("Engine::run")[0];
        let acquire = g.find("Pool::acquire")[0];
        assert_eq!(g.edges[run], vec![acquire]);
    }

    #[test]
    fn unknown_receiver_over_approximates_known_external_does_not() {
        let src = "\
pub struct Queue;
impl Queue { pub fn enqueue(&self) {} }
pub fn a(q: Queue) { q.enqueue(); }
pub fn b(v: Vec<u32>) { v.enqueue(1); }
pub fn c(x: Mystery) { x.enqueue(); }
";
        let g = link(&[("a.rs", src)]);
        let push = g.find("Queue::enqueue")[0];
        // Known workspace type: exact edge.
        assert_eq!(g.edges[g.find("a")[0]], vec![push]);
        // Known external type (Vec): no edge.
        assert!(g.edges[g.find("b")[0]].is_empty());
        // Unknown type: over-approximation links every `enqueue` method.
        assert_eq!(g.edges[g.find("c")[0]], vec![push]);
    }

    #[test]
    fn std_colliding_names_skip_the_fallback() {
        let src = "\
pub struct Tensor;
impl Tensor {
    pub fn sum(&self) {}
    pub fn log_softmax(&self) {}
}
pub fn iter_sum(xs: Vec<f32>) -> f32 { xs.iter().sum() }
pub fn model_call(x: Mystery) { x.log_softmax(); }
";
        let g = link(&[("a.rs", src)]);
        // `sum` collides with `Iterator::sum`: an unresolved receiver
        // must NOT be wired into `Tensor::sum`.
        assert!(g.edges[g.find("iter_sum")[0]].is_empty());
        // Distinctive names keep the conservative fallback.
        assert_eq!(
            g.edges[g.find("model_call")[0]],
            vec![g.find("Tensor::log_softmax")[0]]
        );
    }

    #[test]
    fn self_path_calls_resolve_to_enclosing_type() {
        let src = "\
pub struct E;
impl E {
    fn chunks() {}
    pub fn exec(&self) { Self::chunks(); }
}
";
        let g = link(&[("a.rs", src)]);
        assert_eq!(g.edges[g.find("E::exec")[0]], vec![g.find("E::chunks")[0]]);
    }

    #[test]
    fn test_fns_excluded_from_nodes_and_resolution() {
        let src = "\
pub fn lib() { helper(); }
#[cfg(test)]
mod tests {
    pub fn helper() {}
}
";
        let g = link(&[("a.rs", src)]);
        assert_eq!(g.nodes.len(), 1);
        // The test-only `helper` is not a resolution candidate.
        assert!(g.edges[g.find("lib")[0]].is_empty());
    }

    #[test]
    fn reachability_and_witness() {
        let g = link(&[(
            "a.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn d() {}\n",
        )]);
        let (a, c, d) = (g.find("a")[0], g.find("c")[0], g.find("d")[0]);
        let reach = g.reachable(&[a]);
        assert!(reach.contains(&c));
        assert!(!reach.contains(&d));
        let path = g.witness_path(&[a], c).expect("reachable");
        assert_eq!(g.render_chain(&path), "a -> b -> c");
    }
}
