//! A minimal Rust source lexer for lint purposes: no AST, no `syn` (the
//! build box has no network), just a character-level state machine that
//! separates *code* from comments and literal contents, plus a brace-depth
//! pass that marks `#[cfg(test)]` / `mod tests` scopes.
//!
//! The output preserves line and column structure: every stripped region
//! (comment text, string/char literal interior) is replaced by spaces in
//! the `code` view, so rule matches report the same `line:col` a reader
//! sees in the original file.

/// One source line, split into the views rules care about.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments and literal interiors blanked to spaces.
    /// Quote characters themselves are kept so string boundaries stay
    /// visible; everything between them is whitespace.
    pub code: String,
    /// Concatenated comment text appearing on this line (line comments,
    /// doc comments, and any block-comment portion), without the comment
    /// markers. Used for `// SAFETY:` / `// INVARIANT:` justifications.
    pub comment: String,
    /// Whether this line sits inside test-only code: a `#[cfg(test)]`
    /// item or a `mod tests { .. }` body.
    pub in_test: bool,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct SourceModel {
    /// Per-line views, index 0 = line 1.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    /// Inside a `"`-delimited string; `raw_hashes` is `Some(n)` for raw
    /// strings terminated by `"` followed by `n` hashes.
    Str {
        raw_hashes: Option<usize>,
    },
    CharLit,
}

/// Lex `src` into per-line code/comment views and mark test scopes.
pub fn lex(src: &str) -> SourceModel {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Newlines always flush, whatever the state; multi-line
            // constructs keep their state across the flush.
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    // Skip doc-comment thirds slashes / bangs into the
                    // comment text; they are harmless either way.
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw-string / byte-string / byte-char prefix.
                    if let Some((hashes, consumed)) = raw_string_start(&chars, i) {
                        state = State::Str {
                            raw_hashes: Some(hashes),
                        };
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        code.push('"');
                        i += consumed + 1;
                    } else if c == 'b' && next == Some('"') {
                        state = State::Str { raw_hashes: None };
                        code.push(' ');
                        code.push('"');
                        i += 2;
                    } else if c == 'b' && next == Some('\'') {
                        state = State::CharLit;
                        code.push(' ');
                        code.push('\'');
                        i += 2;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit;
                        code.push('\'');
                        i += 1;
                    } else {
                        // Lifetime marker: keep it, it is code.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        code.push(' ');
                        if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Some(hashes) => {
                    if c == '"' && has_hashes(&chars, i + 1, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    mark_test_scopes(&mut lines);
    SourceModel { lines }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// If `chars[i..]` starts a raw (byte) string (`r"`, `r#"`, `br##"` ...),
/// return `(hash_count, chars_consumed_before_quote)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j).copied() == Some('"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

fn has_hashes(chars: &[char], start: usize, n: usize) -> bool {
    (0..n).all(|k| chars.get(start + k).copied() == Some('#'))
}

/// Distinguish a char literal (`'a'`, `'\n'`, `'é'`) from a lifetime
/// (`'a`, `'static`): a literal closes with a quote within a short window.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2).copied() == Some('\''),
        None => false,
    }
}

/// Markers that open a test-only scope when followed by a braced item.
const TEST_MARKERS: [&str; 4] = ["#[cfg(test)]", "#[cfg(any(test", "#[test]", "mod tests"];

/// Mark lines inside `#[cfg(test)]` items / `mod tests` bodies.
///
/// Brace-depth tracking on the *code* view: a marker arms a pending flag;
/// the next `{` at or below the marker's depth opens a test scope that
/// closes with its matching `}`. A `;` before any brace (e.g.
/// `#[cfg(test)] use ...;`) disarms the flag.
fn mark_test_scopes(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Depths (post-increment) at which open test scopes started.
    let mut scopes: Vec<i64> = Vec::new();
    let mut pending = false;
    let mut pending_depth: i64 = 0;
    for line in lines.iter_mut() {
        let marker_at = TEST_MARKERS.iter().filter_map(|m| line.code.find(m)).min();
        // Snapshot: a line that starts inside a scope (or under a pending
        // marker) is test code even if the scope closes — or the marker is
        // disarmed by `;` — on this very line.
        let was_in_scope = !scopes.is_empty();
        let was_pending = pending;
        let mut armed_this_line = false;
        for (pos, c) in line.code.char_indices() {
            if let Some(at) = marker_at {
                if pos == at {
                    pending = true;
                    pending_depth = depth;
                    armed_this_line = true;
                    line.in_test = true;
                }
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        scopes.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if scopes.last().copied() == Some(depth) {
                        scopes.pop();
                    }
                    depth -= 1;
                }
                ';' if pending && depth == pending_depth => pending = false,
                _ => {}
            }
        }
        if !scopes.is_empty() || was_in_scope || pending || was_pending || armed_this_line {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments_keeps_text() {
        let m = lex("let x = 1; // SAFETY: fine\n");
        assert!(m.lines[0].code.contains("let x = 1;"));
        assert!(!m.lines[0].code.contains("SAFETY"));
        assert!(m.lines[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn strips_string_interiors_preserving_columns() {
        let c = code_of("let s = \"HashMap here\";\n");
        assert!(!c[0].contains("HashMap"));
        assert_eq!(c[0].len(), "let s = \"HashMap here\";".len());
    }

    #[test]
    fn raw_strings_and_hashes() {
        let c = code_of("let s = r#\"unsafe \" inside\"#; let t = 1;\n");
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a /* x /* y */ z */ b\n");
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[0].contains('x') && !c[0].contains('z'));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n");
        // The quote inside the char literal must not open a string state.
        assert!(c[0].contains("fn f<'a>"));
        let c2 = code_of("let c = 'x'; let bad = \"unsafe\";\n");
        assert!(!c2[0].contains("unsafe"));
    }

    #[test]
    fn multiline_string_spans_lines() {
        let c = code_of("let s = \"line one\nHashMap line two\";\nlet y = 2;\n");
        assert!(!c[1].contains("HashMap"));
        assert!(c[2].contains("let y = 2;"));
    }

    #[test]
    fn cfg_test_mod_scope_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let m = lex(src);
        let flags: Vec<bool> = m.lines.iter().map(|l| l.in_test).collect();
        assert!(!flags[0]);
        assert!(flags[1] && flags[2] && flags[3] && flags[4]);
        assert!(!flags[5]);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {\n    body();\n}\n";
        let m = lex(src);
        assert!(m.lines[1].in_test);
        assert!(!m.lines[3].in_test, "scope must not extend past the `;`");
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "#[test]\nfn check() {\n    boom();\n}\nfn lib() {}\n";
        let m = lex(src);
        assert!(m.lines[2].in_test);
        assert!(!m.lines[4].in_test);
    }
}
