//! `zg-lint`: the workspace invariant checker.
//!
//! The parallel TracSeq engine and the tiled GEMM fast path are pinned
//! bit-identical to their reference implementations; the KS/pruning
//! numbers in the paper reproduction depend on stable rankings. Those
//! guarantees die silently the first time a result-affecting `HashMap`
//! iteration or an unseeded RNG slips in — so the invariants are
//! machine-checked here, as five rule families (see [`rules`]):
//!
//! * **D1** — determinism: no `HashMap`/`HashSet` in library code.
//! * **D2** — determinism: no wall-clock / OS entropy in library code.
//! * **P1** — panic-freedom: no unjustified `unwrap`/`expect`/`panic!`.
//! * **U1** — unsafe hygiene: every `unsafe` carries a `// SAFETY:` note.
//! * **G1** — no-grad coverage: manifest-listed inference entry points
//!   run under `no_grad`.
//!
//! The scanner is a hand-rolled lexer (no `syn`; the build box has no
//! network) that strips comments/strings and tracks `#[cfg(test)]` /
//! `mod tests` scopes so rules only see non-test library code. Rules are
//! suppressed per file via `lint.toml` allow entries, each of which must
//! carry a written reason. The same pass runs three ways: the `zg-lint`
//! binary (CI gate), the `workspace_clean` integration test (tier-1
//! `cargo test` gate), and [`engine::scan_source`] for fixture tests.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::Config;
pub use engine::{find_workspace_root, scan_source, scan_workspace, ScanResult};
pub use rules::{Violation, RULE_IDS};
