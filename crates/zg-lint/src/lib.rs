//! `zg-lint`: the workspace invariant checker.
//!
//! The parallel TracSeq engine and the tiled GEMM fast path are pinned
//! bit-identical to their reference implementations; the KS/pruning
//! numbers in the paper reproduction depend on stable rankings. Those
//! guarantees die silently the first time a result-affecting `HashMap`
//! iteration or an unseeded RNG slips in — so the invariants are
//! machine-checked here, as five rule families (see [`rules`]):
//!
//! * **D1** — determinism: no `HashMap`/`HashSet` in library code.
//! * **D2** — determinism: no wall-clock / OS entropy in library code.
//! * **P1** — panic-freedom: no unjustified `unwrap`/`expect`/`panic!`.
//! * **U1** — unsafe hygiene: every `unsafe` carries a `// SAFETY:` note.
//! * **G1** — no-grad coverage: manifest-listed inference entry points
//!   run under `no_grad`.
//!
//! Those lexical families are phase 0 of a two-phase engine. Phase 1
//! parses every file into a lightweight item model ([`model`]); phase 2
//! links a workspace call graph ([`graph`]) and runs interprocedural
//! reachability rules over it ([`reach`]):
//!
//! * **R1** — panic-reachability: nothing reachable from the serve
//!   roots may panic or index unjustified.
//! * **R2** — no_grad domination: auto-discovered inference roots must
//!   be guarded on every tape-reaching path; the discovered set *is*
//!   the G1 manifest, emitted into `lint_graph.json` and diffed
//!   against `lint.toml` (rule G1) so it cannot rot.
//! * **R3** — interprocedural D2: wall-clock / entropy taint through
//!   calls, three crates away if need be.
//! * **R4** — unsafe propagation: `#[target_feature]` callees require
//!   a runtime CPUID gate or an `unsafe` contract.
//! * **A1** — allowlist hygiene: stale `[[allow]]` entries are flagged.
//!
//! The scanner is a hand-rolled lexer (no `syn`; the build box has no
//! network) that strips comments/strings and tracks `#[cfg(test)]` /
//! `mod tests` scopes so rules only see non-test library code —
//! `tests/`, `benches/`, and `examples/` directories are walked too,
//! wholesale as test scope. Rules are suppressed per file via
//! `lint.toml` allow entries, each of which must carry a written reason
//! (and may be scoped to one finding `kind`). The same pass runs three
//! ways: the `zg-lint` binary (CI gate), the `workspace_clean`
//! integration test (tier-1 `cargo test` gate), and
//! [`engine::scan_source`] / [`engine::scan_sources`] for fixture tests.

pub mod config;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod reach;
pub mod report;
pub mod rules;

pub use config::Config;
pub use engine::{
    find_workspace_root, is_test_path, scan_source, scan_sources, scan_workspace, ScanResult,
};
pub use graph::CallGraph;
pub use rules::{Violation, RULE_IDS};
