//! The `zg-lint` binary: scan the workspace and report invariant
//! violations rustc-style.
//!
//! ```text
//! zg-lint [ROOT] [--config PATH] [--json] [--deny-all] [--quiet] [--emit PATH]
//! ```
//!
//! * `ROOT` — workspace root (default: walk up from the current dir).
//! * `--config PATH` — lint config (default: `ROOT/lint.toml`).
//! * `--json` — print a machine-readable summary instead of diagnostics.
//! * `--deny-all` — treat `[rules] warn` downgrades as errors too.
//! * `--quiet` — suppress per-violation diagnostics, print the summary only.
//! * `--emit PATH` — write the deterministic `lint_graph.json` document
//!   (call-graph stats, per-rule findings, emitted G1 manifest) to PATH.
//!
//! Exit code 0 when no error-level violations remain, 1 otherwise, 2 on
//! usage/config errors.

use std::path::PathBuf;
use std::process::ExitCode;

use zg_lint::{config::Config, engine, report};

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    quiet: bool,
    emit: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        json: false,
        deny_all: false,
        quiet: false,
        emit: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--deny-all" => args.deny_all = true,
            "--quiet" => args.quiet = true,
            "--config" => {
                let path = it.next().ok_or("--config needs a path")?;
                args.config = Some(PathBuf::from(path));
            }
            "--emit" => {
                let path = it.next().ok_or("--emit needs a path")?;
                args.emit = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: zg-lint [ROOT] [--config PATH] [--json] [--deny-all] [--quiet] \
                     [--emit PATH]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => args.root = Some(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| engine::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("zg-lint: could not locate a workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let mut config = if config_path.is_file() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("zg-lint: reading {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("zg-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    if args.deny_all {
        config.warn.clear();
    }

    let result = match engine::scan_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("zg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(emit) = &args.emit {
        let path = if emit.is_absolute() {
            emit.clone()
        } else {
            root.join(emit)
        };
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, report::graph_json(&result)) {
            eprintln!("zg-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.json {
        println!("{}", report::to_json(&result));
    } else if args.quiet {
        let rendered = report::render(&result, &config, None);
        // Summary is the final line of the rendered report.
        if let Some(last) = rendered.lines().next_back() {
            println!("{last}");
        }
    } else {
        print!("{}", report::render(&result, &config, Some(&root)));
    }

    if report::count_errors(&result, &config) > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
