//! Phase 1 of the two-phase engine: a lightweight per-file *item model*
//! parsed from the lexed code view — no `syn`, no full grammar. The
//! parser recognizes exactly what the reachability rules need:
//!
//! * `fn` items (free and inside `impl`/`trait` blocks) with their
//!   visibility, `unsafe`-ness, and `#[target_feature]` attributes;
//! * every call site in a body, classified as a free call (`foo(..)`),
//!   a method call (`x.y.foo(..)`, receiver chain kept for
//!   field-type resolution), or a path call (`Type::foo(..)`);
//! * panic tokens (`.unwrap()` / `.expect(` / `panic!` family) and
//!   slice-index expressions (`x[..]`), each with its `// INVARIANT:`
//!   justification status;
//! * guard tokens: `no_grad(` calls, `is_x86_feature_detected!` CPUID
//!   gates, and direct wall-clock / OS-entropy reads (the D2 set);
//! * `struct` field types and simple `let`/parameter types, which feed
//!   the receiver-type heuristics in [`crate::graph`].
//!
//! Everything the parser cannot classify it skips; the linker treats
//! unresolved receivers conservatively (over-approximation), so a parse
//! miss can only add edges downstream, never silently remove a finding
//! the lexical rules would have caught.

use std::collections::BTreeMap;

use crate::lexer::SourceModel;

/// One token of the code view: identifiers/numbers keep their text,
/// punctuation is a single char. Whitespace and blanked literal/comment
/// interiors never become tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Identifier or number text; empty for punctuation.
    pub text: String,
    /// Punctuation char; `'\0'` for identifiers/numbers.
    pub punct: char,
    /// 0-based source line.
    pub line: usize,
}

impl Tok {
    fn is_ident(&self) -> bool {
        self.punct == '\0'
            && !self.text.is_empty()
            && !self.text.starts_with(|c: char| c.is_ascii_digit())
    }
    fn is(&self, p: char) -> bool {
        self.punct == p
    }
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `foo(..)` — a free function (or an in-scope closure; the linker
    /// only links names that resolve to workspace free fns).
    Free(String),
    /// `recv.chain.foo(..)` — `chain` is the dotted receiver path
    /// (`["self", "model", "lm"]` for `self.model.lm.prefill(..)`);
    /// empty when the receiver is an expression (`f(x).foo(..)`).
    Method { name: String, chain: Vec<String> },
    /// `Qual::foo(..)` — `qualifier` is the last path segment before the
    /// function name (`Tensor` in `zg_tensor::Tensor::from_op(..)`).
    Path { qualifier: String, name: String },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 0-based source line.
    pub line: usize,
    pub kind: CallKind,
}

/// A potentially-panicking token site inside a body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 0-based source line.
    pub line: usize,
    /// 1-based column of the token.
    pub col: usize,
    /// The token (`"unwrap"`, `"panic!"`, `"index"` ...).
    pub what: String,
    /// Whether an `// INVARIANT:` justification covers the line.
    pub justified: bool,
}

/// One `fn` item with everything the reachability rules inspect.
#[derive(Debug, Clone, Default)]
pub struct FnItem {
    /// Function name (unqualified).
    pub name: String,
    /// Enclosing `impl`/`trait` self-type, if any.
    pub impl_type: Option<String>,
    /// 0-based declaration line.
    pub line: usize,
    /// Declared with any `pub` visibility (incl. `pub(crate)`).
    pub is_pub: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(..)]` attribute.
    pub has_target_feature: bool,
    /// Declaration sits in test scope (`#[cfg(test)]` / `mod tests` /
    /// a test-only directory).
    pub in_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic tokens (`unwrap`/`expect`/`panic!` family) in the body.
    pub panic_sites: Vec<PanicSite>,
    /// Slice-index expressions (`x[..]`) in the body.
    pub index_sites: Vec<PanicSite>,
    /// Body calls `no_grad(..)` — a grad-guard node for R2.
    pub calls_no_grad: bool,
    /// Body contains `is_x86_feature_detected!` — a CPUID gate for R4.
    pub has_cpuid_gate: bool,
    /// Direct wall-clock / OS-entropy token (`Instant::now`,
    /// `SystemTime`, `thread_rng`), with its line, for R3.
    pub d2_token: Option<(usize, String)>,
    /// Known local types: parameter and simple `let` bindings,
    /// name → type's last path segment.
    pub locals: BTreeMap<String, String>,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` for free fns — the form
    /// used by rule roots and the emitted G1 manifest.
    pub fn qualified_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `struct` definition's named fields (field → type's last segment).
#[derive(Debug, Clone, Default)]
pub struct StructDef {
    pub name: String,
    pub fields: BTreeMap<String, String>,
}

/// Parsed item model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructDef>,
}

/// Tokenize the code view of a lexed file.
pub fn tokenize(model: &SourceModel) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (lineno, line) in model.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' || c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    punct: '\0',
                    line: lineno,
                });
            } else {
                toks.push(Tok {
                    text: String::new(),
                    punct: c,
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    toks
}

/// A justification comment (`tag`) on the flagged line or in the
/// contiguous comment block directly above it. Shared with the lexical
/// P1/U1 rules.
pub(crate) fn justified(model: &SourceModel, idx: usize, tag: &str) -> bool {
    if model.lines[idx].comment.contains(tag) {
        return true;
    }
    for line in model.lines[..idx].iter().rev() {
        if !line.code.trim().is_empty() {
            return false;
        }
        if line.comment.contains(tag) {
            return true;
        }
    }
    false
}

const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "ref", "mut", "box", "break", "continue", "where", "impl", "dyn", "use", "await",
];

struct Parser<'a> {
    toks: &'a [Tok],
    src: &'a SourceModel,
    i: usize,
    out: FileModel,
}

/// Parse a lexed file into its item model. `path` is workspace-relative.
pub fn parse_file(path: &str, src: &SourceModel) -> FileModel {
    let toks = tokenize(src);
    let mut p = Parser {
        toks: &toks,
        src,
        i: 0,
        out: FileModel {
            path: path.to_string(),
            ..FileModel::default()
        },
    };
    p.parse_items(None);
    p.out
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.i + off)
    }

    fn in_test_at(&self, line: usize) -> bool {
        self.src.lines.get(line).is_some_and(|l| l.in_test)
    }

    /// Skip a balanced `#[..]` / `#![..]` attribute starting at `#`,
    /// returning the identifiers seen inside.
    fn skip_attr(&mut self) -> Vec<String> {
        let mut idents = Vec::new();
        self.i += 1; // '#'
        if self.peek(0).is_some_and(|t| t.is('!')) {
            self.i += 1;
        }
        if !self.peek(0).is_some_and(|t| t.is('[')) {
            return idents;
        }
        let mut depth = 0i64;
        while let Some(t) = self.toks.get(self.i) {
            if t.is('[') {
                depth += 1;
            } else if t.is(']') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    break;
                }
            } else if t.is_ident() {
                idents.push(t.text.clone());
            }
            self.i += 1;
        }
        idents
    }

    /// Skip a balanced token group opened by the char at the cursor.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i64;
        while let Some(t) = self.toks.get(self.i) {
            if t.is(open) {
                depth += 1;
            } else if t.is(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            } else if open == '<' && t.is('-') && self.peek(1).is_some_and(|n| n.is('>')) {
                // `->` inside generic bounds (`Fn(..) -> T`): the `>` is
                // not a closer.
                self.i += 2;
                continue;
            }
            self.i += 1;
        }
    }

    /// Item-level loop: runs at file top level and inside `impl`/`trait`
    /// and `mod` bodies. Returns on the closing `}` of the enclosing
    /// block (consumed) or at end of input.
    fn parse_items(&mut self, impl_type: Option<&str>) {
        let mut pending_pub = false;
        let mut pending_unsafe = false;
        let mut pending_target_feature = false;
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is('#') {
                let idents = self.skip_attr();
                if idents.iter().any(|s| s == "target_feature") {
                    pending_target_feature = true;
                }
                continue;
            }
            if t.is('}') {
                self.i += 1;
                return;
            }
            if t.is('{') {
                // Stray block at item level (const initializer etc).
                self.skip_balanced('{', '}');
                continue;
            }
            if t.is_ident() {
                match t.text.as_str() {
                    "pub" => {
                        pending_pub = true;
                        self.i += 1;
                        // `pub(crate)` / `pub(super)` restriction group.
                        if self.peek(0).is_some_and(|n| n.is('(')) {
                            self.skip_balanced('(', ')');
                        }
                        continue;
                    }
                    "unsafe" => {
                        pending_unsafe = true;
                        self.i += 1;
                        continue;
                    }
                    "fn" => {
                        self.i += 1;
                        self.parse_fn(
                            impl_type,
                            pending_pub,
                            pending_unsafe,
                            pending_target_feature,
                        );
                        pending_pub = false;
                        pending_unsafe = false;
                        pending_target_feature = false;
                        continue;
                    }
                    "impl" | "trait" => {
                        self.i += 1;
                        self.parse_impl();
                        pending_pub = false;
                        pending_unsafe = false;
                        pending_target_feature = false;
                        continue;
                    }
                    "struct" => {
                        self.i += 1;
                        self.parse_struct();
                        pending_pub = false;
                        pending_unsafe = false;
                        pending_target_feature = false;
                        continue;
                    }
                    "mod" => {
                        // `mod name { .. }` shares the item grammar;
                        // `mod name;` is a file reference.
                        self.i += 1;
                        if self.peek(0).is_some_and(|n| n.is_ident()) {
                            self.i += 1;
                        }
                        if self.peek(0).is_some_and(|n| n.is('{')) {
                            self.i += 1;
                            self.parse_items(None);
                        }
                        pending_pub = false;
                        pending_unsafe = false;
                        continue;
                    }
                    _ => {
                        self.i += 1;
                        pending_pub = false;
                        pending_unsafe = false;
                        continue;
                    }
                }
            }
            self.i += 1;
        }
    }

    /// After `impl`/`trait`: find the self-type name, then parse the
    /// braced body as an item scope. The self-type is the last
    /// identifier before `{`, outside generic args and before `where`
    /// (`impl<E: Engine> Server<E> { ..` → `Server`;
    /// `impl Engine for ZiGongEngine { ..` → `ZiGongEngine`).
    fn parse_impl(&mut self) {
        let mut name: Option<String> = None;
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is('<') {
                self.skip_balanced('<', '>');
                continue;
            }
            if t.is('{') {
                self.i += 1;
                let ty = name.clone();
                self.parse_items(ty.as_deref());
                return;
            }
            if t.is(';') {
                self.i += 1;
                return;
            }
            if t.is_ident() {
                if t.text == "where" {
                    // Skip the where clause without capturing bound types.
                    while let Some(w) = self.toks.get(self.i) {
                        if w.is('{') || w.is(';') {
                            break;
                        }
                        if w.is('<') {
                            self.skip_balanced('<', '>');
                        } else {
                            self.i += 1;
                        }
                    }
                    continue;
                }
                if t.text != "for" && t.text != "dyn" && t.text != "mut" {
                    name = Some(t.text.clone());
                }
            }
            self.i += 1;
        }
    }

    /// After `struct`: record named-field types; skip tuple/unit forms.
    fn parse_struct(&mut self) {
        let name = match self.peek(0) {
            Some(t) if t.is_ident() => t.text.clone(),
            _ => return,
        };
        self.i += 1;
        if self.peek(0).is_some_and(|t| t.is('<')) {
            self.skip_balanced('<', '>');
        }
        // Skip a where clause, stop at the defining `{` / `;` / `(`.
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is('(') {
                self.skip_balanced('(', ')');
                return; // tuple struct — fields untyped for our purposes
            }
            if t.is(';') {
                self.i += 1;
                return;
            }
            if t.is('{') {
                break;
            }
            if t.is('<') {
                self.skip_balanced('<', '>');
                continue;
            }
            self.i += 1;
        }
        self.i += 1; // '{'
        let mut def = StructDef {
            name,
            fields: BTreeMap::new(),
        };
        let mut depth = 1i64;
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is('#') {
                self.skip_attr();
                continue;
            }
            if t.is('{') || t.is('(') {
                let close = if t.is('{') { '}' } else { ')' };
                if t.is('{') {
                    depth += 1;
                    self.i += 1;
                    let _ = close;
                } else {
                    self.skip_balanced('(', ')');
                }
                continue;
            }
            if t.is('}') {
                depth -= 1;
                self.i += 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            if t.is('<') {
                self.skip_balanced('<', '>');
                continue;
            }
            if depth == 1
                && t.is_ident()
                && t.text != "pub"
                && self.peek(1).is_some_and(|n| n.is(':'))
                && !self.peek(2).is_some_and(|n| n.is(':'))
            {
                let field = t.text.clone();
                self.i += 2; // name ':'
                if let Some(ty) = self.parse_type_last_segment() {
                    def.fields.insert(field, ty);
                }
                continue;
            }
            self.i += 1;
        }
        self.out.structs.push(def);
    }

    /// At the start of a type: skip `&`/`mut`/`dyn`/`impl`/lifetimes and
    /// return the last path segment before any generic args, leaving the
    /// cursor on the delimiter (`,` `)` `}` `;` `=`). Returns `None` for
    /// non-path types (slices, tuples, fn pointers).
    fn parse_type_last_segment(&mut self) -> Option<String> {
        let mut last: Option<String> = None;
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is(',') || t.is(')') || t.is('}') || t.is(';') || t.is('=') || t.is('{') {
                return last;
            }
            if t.is('<') {
                self.skip_balanced('<', '>');
                continue;
            }
            if t.is('[') {
                self.skip_balanced('[', ']');
                // Slice/array type: no single path segment.
                return last;
            }
            if t.is('(') {
                self.skip_balanced('(', ')');
                return last;
            }
            if t.is_ident() && t.text != "mut" && t.text != "dyn" && t.text != "impl" {
                last = Some(t.text.clone());
            }
            self.i += 1;
        }
        last
    }

    /// After the `fn` keyword: parse name, signature, and body.
    fn parse_fn(&mut self, impl_type: Option<&str>, is_pub: bool, is_unsafe: bool, tf: bool) {
        let (name, decl_line) = match self.peek(0) {
            Some(t) if t.is_ident() => (t.text.clone(), t.line),
            // `fn(..)` pointer type or malformed input: not a decl.
            _ => return,
        };
        self.i += 1;
        let mut item = FnItem {
            name,
            impl_type: impl_type.map(str::to_string),
            line: decl_line,
            is_pub,
            is_unsafe,
            has_target_feature: tf,
            in_test: self.in_test_at(decl_line),
            ..FnItem::default()
        };
        if self.peek(0).is_some_and(|t| t.is('<')) {
            self.skip_balanced('<', '>');
        }
        // Parameter list: capture `name: Type` pairs at depth 1.
        if self.peek(0).is_some_and(|t| t.is('(')) {
            self.i += 1;
            let mut depth = 1i64;
            while let Some(t) = self.toks.get(self.i).cloned() {
                if t.is('(') {
                    depth += 1;
                    self.i += 1;
                    continue;
                }
                if t.is(')') {
                    depth -= 1;
                    self.i += 1;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                if t.is('<') {
                    self.skip_balanced('<', '>');
                    continue;
                }
                if depth == 1
                    && t.is_ident()
                    && t.text != "mut"
                    && t.text != "self"
                    && self.peek(1).is_some_and(|n| n.is(':'))
                    && !self.peek(2).is_some_and(|n| n.is(':'))
                {
                    let pname = t.text.clone();
                    self.i += 2;
                    if let Some(ty) = self.parse_type_last_segment() {
                        item.locals.insert(pname, ty);
                    }
                    continue;
                }
                self.i += 1;
            }
        }
        // Return type / where clause: skip to the body `{` or a
        // bodiless `;` (trait method declaration — no node).
        loop {
            match self.toks.get(self.i).cloned() {
                Some(t) if t.is(';') => {
                    self.i += 1;
                    return;
                }
                Some(t) if t.is('{') => break,
                Some(t) if t.is('<') => self.skip_balanced('<', '>'),
                Some(t) if t.is('-') && self.peek(1).is_some_and(|n| n.is('>')) => self.i += 2,
                Some(_) => self.i += 1,
                None => return,
            }
        }
        self.i += 1; // body '{'
        self.parse_body(&mut item, impl_type);
        self.out.fns.push(item);
    }

    /// Walk a body to its matching `}`, collecting call sites, panic and
    /// index tokens, guard tokens, and simple `let` types. Nested `fn`
    /// items are parsed as their own [`FnItem`]s.
    fn parse_body(&mut self, item: &mut FnItem, impl_type: Option<&str>) {
        let mut depth = 1i64;
        while let Some(t) = self.toks.get(self.i).cloned() {
            if t.is('#') {
                self.skip_attr();
                continue;
            }
            if t.is('{') {
                depth += 1;
                self.i += 1;
                continue;
            }
            if t.is('}') {
                depth -= 1;
                self.i += 1;
                if depth == 0 {
                    return;
                }
                continue;
            }
            if t.is('[') {
                // Index expression: `expr[..]` — previous token is an
                // identifier (not a keyword), a number, `)` or `]`.
                let prev = self.i.checked_sub(1).and_then(|j| self.toks.get(j));
                let is_index = prev.is_some_and(|p| {
                    (p.punct == '\0' && !KEYWORDS.contains(&p.text.as_str()))
                        || p.is(')')
                        || p.is(']')
                });
                if is_index && !item.in_test {
                    item.index_sites.push(PanicSite {
                        line: t.line,
                        col: 1,
                        what: "index".to_string(),
                        justified: justified(self.src, t.line, "INVARIANT:"),
                    });
                }
                self.i += 1;
                continue;
            }
            if t.is_ident() {
                let name = t.text.as_str();
                // `let` bindings: record simple explicit or `Type::new`
                // inferred local types.
                if name == "let" {
                    self.i += 1;
                    if self
                        .peek(0)
                        .is_some_and(|n| n.is_ident() && n.text == "mut")
                    {
                        self.i += 1;
                    }
                    if let Some(n) = self.peek(0).cloned() {
                        if n.is_ident() && !KEYWORDS.contains(&n.text.as_str()) {
                            let lname = n.text.clone();
                            if self.peek(1).is_some_and(|c| c.is(':'))
                                && !self.peek(2).is_some_and(|c| c.is(':'))
                            {
                                self.i += 2;
                                if let Some(ty) = self.parse_type_last_segment() {
                                    item.locals.insert(lname, ty);
                                }
                                continue;
                            }
                            // `let x = Type::..` — first segment names
                            // the type when capitalized.
                            if self.peek(1).is_some_and(|c| c.is('='))
                                && self.peek(2).is_some_and(|c| {
                                    c.is_ident()
                                        && c.text.starts_with(|ch: char| ch.is_ascii_uppercase())
                                })
                                && self.peek(3).is_some_and(|c| c.is(':'))
                                && self.peek(4).is_some_and(|c| c.is(':'))
                            {
                                let ty = self.peek(2).map(|c| c.text.clone());
                                if let Some(ty) = ty {
                                    item.locals.insert(lname, ty);
                                }
                            }
                        }
                    }
                    continue;
                }
                // Macro invocation `name!..`: panic-family macros are
                // panic sites; all macros are otherwise skipped as calls.
                if self.peek(1).is_some_and(|n| n.is('!')) {
                    if name == "is_x86_feature_detected" {
                        item.has_cpuid_gate = true;
                    }
                    if ["panic", "unreachable", "todo", "unimplemented"].contains(&name)
                        && !item.in_test
                        && !self.in_test_at(t.line)
                    {
                        item.panic_sites.push(PanicSite {
                            line: t.line,
                            col: 1,
                            what: format!("{name}!"),
                            justified: justified(self.src, t.line, "INVARIANT:"),
                        });
                    }
                    self.i += 2;
                    continue;
                }
                // D2 tokens.
                if name == "SystemTime" || name == "thread_rng" {
                    item.d2_token.get_or_insert((t.line, name.to_string()));
                }
                if name == "Instant"
                    && self.peek(1).is_some_and(|n| n.is(':'))
                    && self.peek(2).is_some_and(|n| n.is(':'))
                    && self
                        .peek(3)
                        .is_some_and(|n| n.is_ident() && n.text == "now")
                {
                    item.d2_token
                        .get_or_insert((t.line, "Instant::now".to_string()));
                }
                // Call site: identifier directly followed by `(`.
                if self.peek(1).is_some_and(|n| n.is('(')) && !KEYWORDS.contains(&name) {
                    self.record_call(item, impl_type, &t);
                    self.i += 1;
                    continue;
                }
                self.i += 1;
                continue;
            }
            self.i += 1;
        }
    }

    /// Classify the call at `toks[self.i]` (an ident followed by `(`).
    fn record_call(&mut self, item: &mut FnItem, _impl_type: Option<&str>, t: &Tok) {
        let name = t.text.clone();
        let prev = self
            .i
            .checked_sub(1)
            .and_then(|j| self.toks.get(j))
            .cloned();
        let kind = match prev {
            Some(p) if p.is('.') => {
                // Panic tokens ride on method syntax.
                if !item.in_test && !self.in_test_at(t.line) {
                    let bare_unwrap = name == "unwrap"
                        && self.peek(1).is_some_and(|n| n.is('('))
                        && self.peek(2).is_some_and(|n| n.is(')'));
                    if bare_unwrap || name == "expect" {
                        item.panic_sites.push(PanicSite {
                            line: t.line,
                            col: 1,
                            what: name.clone(),
                            justified: justified(self.src, t.line, "INVARIANT:"),
                        });
                    }
                }
                // Receiver chain: walk `ident(.ident)*` leftward.
                let mut chain = Vec::new();
                let mut j = self.i - 1; // at '.'
                while let Some(recv) = j.checked_sub(1).and_then(|k| self.toks.get(k)) {
                    if recv.is_ident() && !KEYWORDS.contains(&recv.text.as_str()) {
                        chain.push(recv.text.clone());
                        match j.checked_sub(2).and_then(|k| self.toks.get(k)) {
                            Some(d) if d.is('.') => j -= 2,
                            // Chain head must not itself be a field
                            // projection of an expression (`f(x).a.b(..)`).
                            Some(d) if d.is(')') || d.is(']') || d.is('?') => {
                                chain.clear();
                                break;
                            }
                            _ => break,
                        }
                    } else {
                        // Expression receiver: unknown chain.
                        chain.clear();
                        break;
                    }
                }
                chain.reverse();
                CallKind::Method { name, chain }
            }
            Some(p)
                if p.is(':')
                    && self
                        .i
                        .checked_sub(2)
                        .and_then(|j| self.toks.get(j))
                        .is_some_and(|q| q.is(':')) =>
            {
                let qual = self
                    .i
                    .checked_sub(3)
                    .and_then(|j| self.toks.get(j))
                    .filter(|q| q.is_ident())
                    .map(|q| q.text.clone())
                    .unwrap_or_default();
                CallKind::Path {
                    qualifier: qual,
                    name,
                }
            }
            _ => CallKind::Free(name.clone()),
        };
        if matches!(&kind, CallKind::Free(n) | CallKind::Path { name: n, .. } if n == "no_grad") {
            item.calls_no_grad = true;
        }
        item.calls.push(CallSite { line: t.line, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/demo/src/lib.rs", &lex(src))
    }

    #[test]
    fn free_fn_with_calls_and_params() {
        let m = parse("pub fn f(x: Foo, n: usize) -> u32 {\n    helper(x);\n    x.go()\n}\n");
        assert_eq!(m.fns.len(), 1);
        let f = &m.fns[0];
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        assert_eq!(f.impl_type, None);
        assert_eq!(f.locals.get("x").map(String::as_str), Some("Foo"));
        assert_eq!(f.calls.len(), 2);
        assert_eq!(f.calls[0].kind, CallKind::Free("helper".into()));
        assert_eq!(
            f.calls[1].kind,
            CallKind::Method {
                name: "go".into(),
                chain: vec!["x".into()]
            }
        );
    }

    #[test]
    fn impl_methods_get_self_type_incl_trait_impls() {
        let src = "\
impl<E: Engine> Server<E> {
    pub fn tick(&mut self) { self.queue.pop(); }
}
impl Engine for ZiGongEngine {
    fn execute(&mut self) { Self::chunks(1); }
}
";
        let m = parse(src);
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("Server"));
        assert_eq!(m.fns[1].impl_type.as_deref(), Some("ZiGongEngine"));
        assert_eq!(
            m.fns[0].calls[0].kind,
            CallKind::Method {
                name: "pop".into(),
                chain: vec!["self".into(), "queue".into()]
            }
        );
        assert_eq!(
            m.fns[1].calls[0].kind,
            CallKind::Path {
                qualifier: "Self".into(),
                name: "chunks".into()
            }
        );
    }

    #[test]
    fn struct_fields_recorded_with_last_type_segment() {
        let src = "pub struct Replica {\n    model: ZiGongModel,\n    tx: Sender<Msg>,\n    n: usize,\n}\n";
        let m = parse(src);
        assert_eq!(m.structs.len(), 1);
        let s = &m.structs[0];
        assert_eq!(
            s.fields.get("model").map(String::as_str),
            Some("ZiGongModel")
        );
        assert_eq!(s.fields.get("tx").map(String::as_str), Some("Sender"));
    }

    #[test]
    fn panic_and_index_sites_with_justification() {
        let src = "\
pub fn f(v: &[u32], o: Option<u32>) -> u32 {
    let a = v[0];
    // INVARIANT: checked non-empty above.
    let b = v[1];
    o.unwrap();
    o.expect(\"set\"); // INVARIANT: always set
    panic!(\"boom\");
    a + b
}
";
        let m = parse(src);
        let f = &m.fns[0];
        assert_eq!(f.index_sites.len(), 2);
        assert!(!f.index_sites[0].justified);
        assert!(f.index_sites[1].justified);
        let whats: Vec<&str> = f.panic_sites.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec!["unwrap", "expect", "panic!"]);
        assert!(!f.panic_sites[0].justified);
        assert!(f.panic_sites[1].justified);
    }

    #[test]
    fn unwrap_or_and_macros_are_not_panic_sites() {
        let m = parse(
            "pub fn f(o: Option<u32>) -> u32 {\n    let v = vec![1];\n    o.unwrap_or(v[0])\n}\n",
        );
        assert!(m.fns[0].panic_sites.is_empty());
        // vec![..] is a macro, not an index expression; v[0] is an index.
        assert_eq!(m.fns[0].index_sites.len(), 1);
    }

    #[test]
    fn guards_detected() {
        let src = "\
pub fn g() { no_grad(|| body()); }
pub fn s() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }
pub fn w() -> f64 { let t = std::time::Instant::now(); drop(t); 0.0 }
";
        let m = parse(src);
        assert!(m.fns[0].calls_no_grad);
        assert!(m.fns[1].has_cpuid_gate);
        assert_eq!(
            m.fns[2].d2_token.as_ref().map(|d| d.1.as_str()),
            Some("Instant::now")
        );
    }

    #[test]
    fn unsafe_and_target_feature_attrs() {
        let src = "\
#[cfg(target_arch = \"x86_64\")]
#[target_feature(enable = \"avx2\")]
unsafe fn mk(kc: usize) {}
pub unsafe fn raw(p: *const f32) -> f32 { *p }
fn safe() {}
";
        let m = parse(src);
        assert!(m.fns[0].is_unsafe && m.fns[0].has_target_feature);
        assert!(m.fns[1].is_unsafe && !m.fns[1].has_target_feature);
        assert!(!m.fns[2].is_unsafe);
    }

    #[test]
    fn trait_method_decls_without_body_are_skipped() {
        let src = "\
pub trait Engine {
    fn execute(&mut self, batch: &[u32]) -> Vec<u32>;
    fn shutdown(&mut self) { cleanup(); }
}
";
        let m = parse(src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "shutdown");
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("Engine"));
    }

    #[test]
    fn test_scope_fns_marked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
";
        let m = parse(src);
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
        // Panic sites inside test scope are not collected.
        assert!(m.fns[1].panic_sites.is_empty());
    }

    #[test]
    fn let_type_inference_simple() {
        let src = "\
pub fn f() {
    let q: BoundedQueue = make();
    let r = StdRng::seed_from_u64(0);
    q.push(1);
    r.next();
}
";
        let m = parse(src);
        let f = &m.fns[0];
        assert_eq!(f.locals.get("q").map(String::as_str), Some("BoundedQueue"));
        assert_eq!(f.locals.get("r").map(String::as_str), Some("StdRng"));
    }

    #[test]
    fn attribute_contents_are_not_calls_or_indexes() {
        let src = "\
pub fn f() {
    #[cfg(target_arch = \"x86_64\")]
    let avx = detect();
    avx
}
";
        let m = parse(src);
        let names: Vec<String> = m.fns[0]
            .calls
            .iter()
            .map(|c| match &c.kind {
                CallKind::Free(n) => n.clone(),
                CallKind::Method { name, .. } | CallKind::Path { name, .. } => name.clone(),
            })
            .collect();
        assert_eq!(names, vec!["detect"]);
        assert!(m.fns[0].index_sites.is_empty());
    }
}
