//! The reachability rule families (R1–R4) run over the linked call
//! graph, plus the emitted G1 manifest.
//!
//! | id | invariant |
//! |----|-----------|
//! | R1 | no unjustified `panic!`/`unwrap`/`expect`/index reachable from the serve roots (`[r1] roots` in lint.toml) |
//! | R2 | every auto-discovered inference root (`[r2] entry_prefixes` match + reaches `Tensor::from_op`) is dominated by a `no_grad` guard on every tape-reaching path |
//! | R3 | interprocedural D2: no non-test fn transitively reaches a wall-clock / OS-entropy read (D2-allowed files are sanctioned sources and stop the taint) |
//! | R4 | every fn calling a `#[target_feature]` `unsafe fn` (transitively through `unsafe` wrappers) is CPUID-gated or `unsafe` itself |
//!
//! R2 also *emits* the G1 manifest — the sorted `(file, qualified
//! function)` set of discovered inference roots — and reports drift
//! between it and the committed `[[g1]]` manifest as G1 findings, so the
//! manifest in `lint.toml` can no longer rot silently.

use crate::config::{Config, G1Entry};
use crate::graph::CallGraph;
use crate::model::CallKind;
use crate::rules::Violation;

/// A reachability finding: a [`Violation`] plus the finding *kind* used
/// for kind-scoped `[[allow]]` entries (`kind = "index"` suppresses R1
/// index findings under a path without blanket-allowing panics).
#[derive(Debug, Clone)]
pub struct ReachFinding {
    pub violation: Violation,
    /// `"panic"` / `"index"` (R1), `"no_grad"` (R2), `"taint"` (R3),
    /// `"unsafe"` (R4), `"manifest"` (G1 drift).
    pub kind: &'static str,
}

/// Call-graph shape counters, exported into `lint_graph.json`.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Non-test function nodes.
    pub nodes: usize,
    /// Directed call edges.
    pub edges: usize,
    /// Call sites resolved to at least one workspace fn.
    pub resolved_calls: usize,
    /// Call sites with no workspace target.
    pub external_calls: usize,
    /// Nodes reachable from the R1 serve roots.
    pub r1_reachable: usize,
    /// Auto-discovered R2 inference roots.
    pub r2_roots: usize,
    /// Nodes carrying wall-clock / entropy taint (R3).
    pub r3_tainted: usize,
    /// `#[target_feature]` unsafe fns (R4 sources).
    pub r4_dangerous: usize,
}

/// Output of the phase-2 analysis.
#[derive(Debug, Default)]
pub struct ReachOutcome {
    /// Findings before allowlist filtering, sorted.
    pub findings: Vec<ReachFinding>,
    /// The emitted G1 manifest: discovered inference roots, sorted by
    /// `(file, function)` with `function` in `Type::name` form.
    pub manifest: Vec<G1Entry>,
    pub stats: GraphStats,
}

/// Run R1–R4 over a linked graph.
pub fn analyze(graph: &CallGraph, config: &Config) -> ReachOutcome {
    let mut out = ReachOutcome {
        stats: GraphStats {
            nodes: graph.nodes.len(),
            edges: graph.edge_count(),
            resolved_calls: graph.resolved_calls,
            external_calls: graph.external_calls,
            ..GraphStats::default()
        },
        ..ReachOutcome::default()
    };
    check_r1(graph, config, &mut out);
    check_r2(graph, config, &mut out);
    check_r3(graph, config, &mut out);
    check_r4(graph, &mut out);
    out.findings
        .sort_by(|a, b| a.violation.cmp(&b.violation).then(a.kind.cmp(b.kind)));
    out
}

fn finding(
    rule: &'static str,
    kind: &'static str,
    path: &str,
    line: usize,
    message: String,
) -> ReachFinding {
    ReachFinding {
        violation: Violation {
            path: path.to_string(),
            line,
            col: 1,
            rule,
            message,
        },
        kind,
    }
}

/// R1: panic-freedom of the serve hot path. Every unjustified panic or
/// slice-index site in any fn reachable from the configured roots is a
/// finding, with the shortest call chain as a witness.
fn check_r1(graph: &CallGraph, config: &Config, out: &mut ReachOutcome) {
    if config.r1_roots.is_empty() {
        return;
    }
    let mut roots: Vec<usize> = Vec::new();
    for name in &config.r1_roots {
        let ids = graph.find(name);
        if ids.is_empty() {
            out.findings.push(finding(
                "R1",
                "panic",
                "lint.toml",
                1,
                format!(
                    "[r1] root `{name}` does not name any workspace function — \
                     update lint.toml or the code"
                ),
            ));
        }
        roots.extend(ids);
    }
    let reach = graph.reachable(&roots);
    out.stats.r1_reachable = reach.len();
    for &id in &reach {
        let n = &graph.nodes[id];
        let chain = graph
            .witness_path(&roots, id)
            .map(|p| graph.render_chain(&p))
            .unwrap_or_default();
        for site in n.item.panic_sites.iter().filter(|s| !s.justified) {
            out.findings.push(finding(
                "R1",
                "panic",
                &n.path,
                site.line + 1,
                format!(
                    "`{}` reachable from serve root ({chain}): the request hot \
                     path must not panic — handle the error or justify with \
                     `// INVARIANT:`",
                    site.what
                ),
            ));
        }
        for site in n.item.index_sites.iter().filter(|s| !s.justified) {
            out.findings.push(finding(
                "R1",
                "index",
                &n.path,
                site.line + 1,
                format!(
                    "slice index reachable from serve root ({chain}): indexing \
                     can panic on the hot path — use `get(..)`, justify with \
                     `// INVARIANT:`, or add a reviewed kind=\"index\" allow"
                ),
            ));
        }
    }
}

/// Does this node's body call `from_op` (the autograd tape constructor)?
fn touches_tape(graph: &CallGraph, id: usize) -> bool {
    graph.nodes[id].item.calls.iter().any(|c| match &c.kind {
        CallKind::Free(n) => n == "from_op",
        CallKind::Method { name, .. } | CallKind::Path { name, .. } => name == "from_op",
    })
}

/// R2: no_grad domination of inference roots. Discovery: a non-test fn
/// whose name starts with an `[r2] entry_prefixes` prefix and that can
/// reach `Tensor::from_op` is an inference root. Verification: a root
/// violates when some tape-reaching path avoids every guard (a fn whose
/// body calls `no_grad`). The discovered set is emitted as the G1
/// manifest and diffed against the committed `[[g1]]` entries.
fn check_r2(graph: &CallGraph, config: &Config, out: &mut ReachOutcome) {
    if config.r2_prefixes.is_empty() {
        return;
    }
    let n = graph.nodes.len();
    let touches: Vec<bool> = (0..n).map(|id| touches_tape(graph, id)).collect();
    let guard: Vec<bool> = graph.nodes.iter().map(|nd| nd.item.calls_no_grad).collect();

    // reaches_tape: forward closure over all edges (guards included —
    // discovery asks "does inference happen here", not "is it guarded").
    let mut reaches = touches.clone();
    fixpoint(graph, &mut reaches, |_| true);

    // utr: "unguarded-tape-reachable" — can reach `from_op` without
    // passing through any guard node. Guards never become UTR and never
    // propagate it.
    let mut utr: Vec<bool> = (0..n).map(|id| touches[id] && !guard[id]).collect();
    fixpoint(graph, &mut utr, |id| !guard[id]);

    let mut manifest: Vec<G1Entry> = Vec::new();
    for id in 0..n {
        let node = &graph.nodes[id];
        if !reaches[id]
            || !config
                .r2_prefixes
                .iter()
                .any(|p| node.item.name.starts_with(p.as_str()))
        {
            continue;
        }
        manifest.push(G1Entry {
            file: node.path.clone(),
            function: node.qname(),
        });
        if utr[id] && !guard[id] {
            let chain = unguarded_witness(graph, id, &touches, &guard)
                .map(|p| graph.render_chain(&p))
                .unwrap_or_default();
            out.findings.push(finding(
                "R2",
                "no_grad",
                &node.path,
                node.item.line + 1,
                format!(
                    "inference root `{}` reaches the autograd tape without a \
                     `no_grad` guard on the path ({chain}): wrap the tape-touching \
                     region in `no_grad(..)`",
                    node.qname()
                ),
            ));
        }
    }
    manifest.sort_by(|a, b| (&a.file, &a.function).cmp(&(&b.file, &b.function)));
    manifest.dedup();
    out.stats.r2_roots = manifest.len();

    // Manifest drift: committed [[g1]] must equal the emitted set.
    for entry in &manifest {
        if !config.g1.iter().any(|e| e == entry) {
            out.findings.push(finding(
                "G1",
                "manifest",
                "lint.toml",
                1,
                format!(
                    "G1 manifest drift: discovered inference root `{}` ({}) is \
                     missing from the [[g1]] manifest — copy the emitted manifest \
                     from lint_graph.json into lint.toml",
                    entry.function, entry.file
                ),
            ));
        }
    }
    for entry in &config.g1 {
        if !manifest.iter().any(|e| e == entry) {
            out.findings.push(finding(
                "G1",
                "manifest",
                "lint.toml",
                1,
                format!(
                    "G1 manifest drift: [[g1]] entry `{}` ({}) matches no \
                     discovered inference root — remove the stale entry",
                    entry.function, entry.file
                ),
            ));
        }
    }
    out.manifest = manifest;
}

/// R3: interprocedural nondeterminism taint. A fn carrying a direct D2
/// token (wall clock / OS entropy) in a *non-allowed* file is a taint
/// source; taint propagates to every transitive caller. D2/R3-allowed
/// paths are sanctioned (injected-clock impls, timing harnesses): they
/// are neither sources nor carriers.
fn check_r3(graph: &CallGraph, config: &Config, out: &mut ReachOutcome) {
    let n = graph.nodes.len();
    let sanctioned: Vec<bool> = graph
        .nodes
        .iter()
        // D2-allowed files are the sanctioned real-clock sources: they
        // neither fire nor carry taint. R3 allows are NOT barriers —
        // they suppress individual findings downstream in the engine's
        // allow filter, which also keeps A1 staleness tracking honest.
        .map(|nd| config.matching_allow("D2", &nd.path, "").is_some())
        .collect();
    let source: Vec<bool> = (0..n)
        .map(|id| graph.nodes[id].item.d2_token.is_some() && !sanctioned[id])
        .collect();
    let mut tainted = source.clone();
    fixpoint(graph, &mut tainted, |id| !sanctioned[id]);
    out.stats.r3_tainted = tainted.iter().filter(|&&t| t).count();

    for id in 0..n {
        if !tainted[id] || source[id] {
            // Direct token sites are lexical D2's findings; R3 owns the
            // transitive callers.
            continue;
        }
        let node = &graph.nodes[id];
        let chain = taint_witness(graph, id, &source, &sanctioned)
            .map(|(p, tok)| format!("{} -> `{tok}`", graph.render_chain(&p)))
            .unwrap_or_default();
        out.findings.push(finding(
            "R3",
            "taint",
            &node.path,
            node.item.line + 1,
            format!(
                "`{}` transitively reaches a wall-clock / OS-entropy read \
                 ({chain}): results become run-dependent — inject a Clock / \
                 seeded RNG through the API instead",
                node.qname()
            ),
        ));
    }
}

/// R4: unsafe propagation. `#[target_feature]` unsafe fns are dangerous
/// (calling one without the CPU feature is UB). Every caller must hold a
/// runtime CPUID gate (`is_x86_feature_detected!` in its body, or a call
/// to a detection helper containing one) or be `unsafe` itself — in
/// which case *its* callers inherit the obligation.
fn check_r4(graph: &CallGraph, out: &mut ReachOutcome) {
    let n = graph.nodes.len();
    let mut exposed: Vec<bool> = graph
        .nodes
        .iter()
        .map(|nd| nd.item.is_unsafe && nd.item.has_target_feature)
        .collect();
    out.stats.r4_dangerous = exposed.iter().filter(|&&d| d).count();
    let gated: Vec<bool> = (0..n)
        .map(|id| {
            graph.nodes[id].item.has_cpuid_gate
                || graph.edges[id]
                    .iter()
                    .any(|&c| graph.nodes[c].item.has_cpuid_gate)
        })
        .collect();
    // Unsafe, ungated wrappers around dangerous fns re-export the
    // contract to their own callers.
    loop {
        let mut changed = false;
        for id in 0..n {
            if exposed[id] || gated[id] || !graph.nodes[id].item.is_unsafe {
                continue;
            }
            if graph.edges[id].iter().any(|&c| exposed[c]) {
                exposed[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for id in 0..n {
        let node = &graph.nodes[id];
        if exposed[id] || gated[id] || node.item.is_unsafe {
            continue;
        }
        if let Some(&callee) = graph.edges[id].iter().find(|&&c| exposed[c]) {
            out.findings.push(finding(
                "R4",
                "unsafe",
                &node.path,
                node.item.line + 1,
                format!(
                    "`{}` calls `#[target_feature]` unsafe fn `{}` without a \
                     runtime CPUID gate: guard the dispatch with \
                     `is_x86_feature_detected!` (or a detection helper) or mark \
                     the fn `unsafe`",
                    node.qname(),
                    graph.nodes[callee].qname()
                ),
            ));
        }
    }
}

/// Reverse-propagate a boolean property to callers: `set[n] |= any
/// callee in `set``, restricted to nodes passing `carrier`. Runs to a
/// fixpoint (deterministic: pure set semantics).
fn fixpoint(graph: &CallGraph, set: &mut [bool], carrier: impl Fn(usize) -> bool) {
    let mut queue: Vec<usize> = (0..set.len()).filter(|&i| set[i]).collect();
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        for &caller in &graph.redges[id] {
            if !set[caller] && carrier(caller) {
                set[caller] = true;
                queue.push(caller);
            }
        }
    }
}

/// Shortest guard-free path from `root` to a tape-touching node.
fn unguarded_witness(
    graph: &CallGraph,
    root: usize,
    touches: &[bool],
    guard: &[bool],
) -> Option<Vec<usize>> {
    bfs_witness(graph, root, |id| touches[id] && !guard[id], |id| !guard[id])
}

/// Shortest sanctioned-free path from `node` to a taint source, plus the
/// source's D2 token text.
fn taint_witness(
    graph: &CallGraph,
    node: usize,
    source: &[bool],
    sanctioned: &[bool],
) -> Option<(Vec<usize>, String)> {
    let path = bfs_witness(graph, node, |id| source[id], |id| !sanctioned[id])?;
    let tok = graph.nodes[*path.last()?]
        .item
        .d2_token
        .as_ref()
        .map(|(_, t)| t.clone())
        .unwrap_or_default();
    Some((path, tok))
}

/// Forward BFS from `start` through nodes passing `carrier`, stopping at
/// the first node satisfying `is_target`; returns the path inclusive.
fn bfs_witness(
    graph: &CallGraph,
    start: usize,
    is_target: impl Fn(usize) -> bool,
    carrier: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut seen = vec![false; graph.nodes.len()];
    seen[start] = true;
    let mut queue = vec![start];
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        if is_target(id) {
            let mut path = vec![id];
            let mut cur = id;
            while let Some(p) = parent[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &c in &graph.edges[id] {
            if !seen[c] && carrier(c) {
                seen[c] = true;
                parent[c] = Some(id);
                queue.push(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::parse_file;

    fn analyze_srcs(srcs: &[(&str, &str)], cfg_text: &str) -> ReachOutcome {
        let files: Vec<_> = srcs.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        let graph = CallGraph::link(&files);
        let config = Config::parse(cfg_text).expect("config");
        analyze(&graph, &config)
    }

    fn rules_of(out: &ReachOutcome) -> Vec<&'static str> {
        out.findings.iter().map(|f| f.violation.rule).collect()
    }

    #[test]
    fn r1_flags_deep_panic_and_index_with_witness() {
        let out = analyze_srcs(
            &[
                (
                    "crates/s/src/a.rs",
                    "pub struct Server;\nimpl Server {\n    pub fn tick(&mut self) { helper(); }\n}\n",
                ),
                (
                    "crates/s/src/b.rs",
                    "pub fn helper() { deep(); }\npub fn deep(v: &[u32]) -> u32 { v.first().unwrap(); v[0] }\n",
                ),
            ],
            "[r1]\nroots = [\"Server::tick\"]\n",
        );
        assert_eq!(rules_of(&out), vec!["R1", "R1"]);
        assert!(out.findings[0]
            .violation
            .message
            .contains("Server::tick -> helper -> deep"));
        let kinds: Vec<_> = out.findings.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!["panic", "index"]);
    }

    #[test]
    fn r1_justified_sites_and_unreachable_fns_pass() {
        let out = analyze_srcs(
            &[(
                "crates/s/src/a.rs",
                "pub struct Server;\nimpl Server {\n    pub fn tick(&mut self) {\n        // INVARIANT: queue always non-empty here.\n        self_unwrap();\n    }\n}\npub fn self_unwrap() {}\npub fn cold(o: Option<u32>) -> u32 { o.unwrap() }\n",
            )],
            "[r1]\nroots = [\"Server::tick\"]\n",
        );
        // `cold` is not reachable from the root: R1 stays quiet (P1 owns it).
        assert!(rules_of(&out).is_empty());
    }

    #[test]
    fn r1_missing_root_is_reported() {
        let out = analyze_srcs(
            &[("crates/s/src/a.rs", "pub fn other() {}\n")],
            "[r1]\nroots = [\"Server::run_batch\"]\n",
        );
        assert_eq!(rules_of(&out), vec!["R1"]);
        assert!(out.findings[0].violation.message.contains("run_batch"));
    }

    #[test]
    fn r2_guarded_root_clean_unguarded_flagged() {
        let srcs = [(
            "crates/m/src/lm.rs",
            "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn generate() { no_grad(); decode(); }
pub fn generate_raw() { decode(); }
fn decode() { Tensor::from_op(); }
",
        )];
        let out = analyze_srcs(&srcs, "[r2]\nentry_prefixes = [\"generate\"]\n");
        // Both roots are discovered (manifest drift G1 findings expected
        // since no [[g1]] is committed), but only the unguarded one is R2.
        let r2: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.violation.rule == "R2")
            .collect();
        assert_eq!(r2.len(), 1);
        assert!(r2[0].violation.message.contains("generate_raw"));
        assert_eq!(out.manifest.len(), 2);
        assert_eq!(out.manifest[0].function, "generate");
        assert_eq!(out.manifest[1].function, "generate_raw");
    }

    #[test]
    fn r2_guard_in_callee_dominates() {
        let srcs = [(
            "crates/m/src/lm.rs",
            "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn evaluate_item() { score(); }
fn score() { no_grad(); decode(); }
fn decode() { Tensor::from_op(); }
",
        )];
        let out = analyze_srcs(&srcs, "[r2]\nentry_prefixes = [\"evaluate_\"]\n");
        assert!(out.findings.iter().all(|f| f.violation.rule != "R2"));
        assert_eq!(out.manifest.len(), 1);
        assert_eq!(out.manifest[0].function, "evaluate_item");
    }

    #[test]
    fn g1_manifest_drift_both_directions() {
        let srcs = [(
            "crates/m/src/lm.rs",
            "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn generate() { no_grad(); Tensor::from_op(); }
",
        )];
        // Committed manifest lists a stale fn and misses `generate`.
        let cfg = "[r2]\nentry_prefixes = [\"generate\"]\n\n[[g1]]\nfile = \"crates/m/src/lm.rs\"\nfunction = \"gone\"\n";
        let out = analyze_srcs(&srcs, cfg);
        let g1: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.violation.rule == "G1")
            .collect();
        assert_eq!(g1.len(), 2);
        assert!(g1
            .iter()
            .any(|f| f.violation.message.contains("missing from")));
        assert!(g1.iter().any(|f| f.violation.message.contains("stale")));
        // And with the emitted manifest committed verbatim: no drift.
        let good = "[r2]\nentry_prefixes = [\"generate\"]\n\n[[g1]]\nfile = \"crates/m/src/lm.rs\"\nfunction = \"generate\"\n";
        let out = analyze_srcs(&srcs, good);
        assert!(rules_of(&out).is_empty());
    }

    #[test]
    fn r3_taints_transitive_callers_not_sources() {
        let out = analyze_srcs(
            &[
                (
                    "crates/a/src/lib.rs",
                    "pub fn helper() { stamp(); }\npub fn clean() {}\n",
                ),
                (
                    "crates/b/src/lib.rs",
                    "pub fn stamp() -> u64 { let t = std::time::Instant::now(); 0 }\n",
                ),
            ],
            "",
        );
        // `stamp` is lexical D2's business; R3 flags `helper` only.
        assert_eq!(rules_of(&out), vec!["R3"]);
        assert!(out.findings[0].violation.message.contains("helper"));
        assert!(out.findings[0].violation.message.contains("Instant::now"));
    }

    #[test]
    fn r3_allowed_files_are_barriers() {
        let cfg = "[[allow]]\nrule = \"D2\"\npath = \"crates/trace/src/clock.rs\"\nreason = \"sanctioned injectable clock source\"\n";
        let out = analyze_srcs(
            &[
                ("crates/a/src/lib.rs", "pub fn tick() { wall_clock(); }\n"),
                (
                    "crates/trace/src/clock.rs",
                    "pub fn wall_clock() -> u64 { let t = std::time::Instant::now(); 0 }\n",
                ),
            ],
            cfg,
        );
        // The sanctioned clock impl neither fires nor propagates taint.
        assert!(rules_of(&out).is_empty());
    }

    #[test]
    fn r4_ungated_caller_flagged_gated_and_unsafe_pass() {
        let src = "\
pub fn detect() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }
#[target_feature(enable = \"avx2\")]
unsafe fn mk8x8(p: *const f32) {}
pub fn gated(p: *const f32) { if detect() { unsafe { mk8x8(p) } } }
pub fn ungated(p: *const f32) { unsafe { mk8x8(p) } }
pub unsafe fn wrapper(p: *const f32) { mk8x8(p); }
pub fn calls_wrapper(p: *const f32) { unsafe { wrapper(p) } }
";
        let out = analyze_srcs(&[("crates/t/src/simd.rs", src)], "");
        let r4: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.violation.rule == "R4")
            .collect();
        // `ungated` calls the dangerous fn directly; `calls_wrapper`
        // inherits the obligation through the unsafe wrapper. `gated`
        // holds a detection-helper gate and passes.
        assert_eq!(r4.len(), 2);
        assert!(r4[0].violation.message.contains("`ungated`"));
        assert!(r4[1].violation.message.contains("`calls_wrapper`"));
        assert_eq!(out.stats.r4_dangerous, 1);
    }

    #[test]
    fn findings_sorted_by_path_line_rule() {
        let out = analyze_srcs(
            &[
                (
                    "crates/s/src/a.rs",
                    "pub struct Server;\nimpl Server {\n    pub fn tick(&mut self, v: &[u32]) { v[0]; x.unwrap(); }\n}\n",
                ),
                (
                    "crates/b/src/lib.rs",
                    "pub fn helper() { stamp(); }\npub fn stamp() -> u64 { let t = std::time::Instant::now(); 0 }\n",
                ),
            ],
            "[r1]\nroots = [\"Server::tick\"]\n",
        );
        let keys: Vec<(String, usize, &str)> = out
            .findings
            .iter()
            .map(|f| (f.violation.path.clone(), f.violation.line, f.violation.rule))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
