//! rustc-style diagnostic rendering and machine-readable JSON summaries.
//! Rendering is pure string building over already-sorted violations, so
//! the report for a given tree is byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::config::Config;
use crate::engine::ScanResult;
use crate::rules::{Violation, RULE_IDS};

/// Render violations rustc-style, with the offending source line when the
/// workspace `root` is available to read it from.
pub fn render(result: &ScanResult, config: &Config, root: Option<&Path>) -> String {
    let mut out = String::new();
    for v in &result.violations {
        let level = if config.warn.iter().any(|r| r == v.rule) {
            "warning"
        } else {
            "error"
        };
        render_one(&mut out, v, level, root);
    }
    let errors = count_errors(result, config);
    let warnings = result.violations.len() - errors;
    let _ = writeln!(
        out,
        "zg-lint: {} file(s) scanned, {errors} error(s), {warnings} warning(s), {} allowed",
        result.files.len(),
        result.allowed.len()
    );
    out
}

fn render_one(out: &mut String, v: &Violation, level: &str, root: Option<&Path>) {
    let _ = writeln!(out, "{level}[{}]: {}", v.rule, v.message);
    let _ = writeln!(out, "  --> {}:{}:{}", v.path, v.line, v.col);
    if let Some(root) = root {
        if let Ok(src) = std::fs::read_to_string(root.join(&v.path)) {
            if let Some(line) = src.lines().nth(v.line - 1) {
                let gutter = v.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{gutter} | {}", line.trim_end());
                let _ = writeln!(out, "{pad} |");
            }
        }
    }
    out.push('\n');
}

/// Violations counted at error level (not downgraded by `[rules] warn`).
pub fn count_errors(result: &ScanResult, config: &Config) -> usize {
    result
        .violations
        .iter()
        .filter(|v| !config.warn.iter().any(|r| r == v.rule))
        .count()
}

/// JSON summary: per-rule violation counts plus scan totals. Key order is
/// fixed (BTreeMap + the static rule list) for byte-stable output.
pub fn to_json(result: &ScanResult) -> serde_json::Value {
    let mut counts: BTreeMap<&str, usize> = RULE_IDS.iter().map(|&r| (r, 0)).collect();
    for v in &result.violations {
        if let Some(slot) = counts.get_mut(v.rule) {
            *slot += 1;
        }
    }
    let mut by_rule_map = serde_json::Map::new();
    for (rule, n) in counts {
        by_rule_map.insert(rule.to_string(), serde_json::json!(n));
    }
    let by_rule = serde_json::Value::Object(by_rule_map);
    let violations: Vec<serde_json::Value> = result
        .violations
        .iter()
        .map(|v| {
            serde_json::json!({
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
            })
        })
        .collect();
    serde_json::json!({
        "files_scanned": result.files.len(),
        "total_violations": result.violations.len(),
        "allowed": result.allowed.len(),
        "by_rule": by_rule,
        "violations": violations,
    })
}

/// The `lint_graph.json` document: call-graph shape, per-rule findings,
/// and the emitted G1 manifest. Committed to `results/` and diffed in CI
/// so manifest drift fails the build — the serializer (BTreeMap-backed
/// maps, pre-sorted vectors) makes the bytes a pure function of the
/// scanned tree.
pub fn graph_json(result: &ScanResult) -> String {
    let mut counts: BTreeMap<&str, usize> = RULE_IDS.iter().map(|&r| (r, 0)).collect();
    for v in &result.violations {
        if let Some(slot) = counts.get_mut(v.rule) {
            *slot += 1;
        }
    }
    let mut findings = serde_json::Map::new();
    for (rule, n) in counts {
        findings.insert(rule.to_string(), serde_json::json!(n));
    }
    let violations: Vec<serde_json::Value> = result
        .violations
        .iter()
        .map(|v| {
            serde_json::json!({
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "message": v.message,
            })
        })
        .collect();
    let manifest: Vec<serde_json::Value> = result
        .manifest
        .iter()
        .map(|e| serde_json::json!({ "file": e.file, "function": e.function }))
        .collect();
    // The vendored json! macro only builds flat objects; nested ones are
    // composed from sub-values.
    let graph = serde_json::json!({
        "nodes": result.stats.nodes,
        "edges": result.stats.edges,
        "resolved_calls": result.stats.resolved_calls,
        "external_calls": result.stats.external_calls,
        "r1_reachable": result.stats.r1_reachable,
        "r2_roots": result.stats.r2_roots,
        "r3_tainted": result.stats.r3_tainted,
        "r4_dangerous": result.stats.r4_dangerous,
    });
    let doc = serde_json::json!({
        "schema": "zg-lint/graph-v1",
        "files_scanned": result.files.len(),
        "graph": graph,
        "findings": serde_json::Value::Object(findings),
        "allowed": result.allowed.len(),
        "g1_manifest": manifest,
        "violations": violations,
    });
    let mut out = serde_json::to_string_pretty(&doc)
        // INVARIANT: the document is built from plain strings/ints above;
        // serialization cannot fail.
        .unwrap_or_default();
    out.push('\n');
    out
}
