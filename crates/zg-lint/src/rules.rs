//! The five rule families enforced over the lexed code view.
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | no `HashMap`/`HashSet` in non-test library code (iteration order is nondeterministic; use `BTreeMap`/`BTreeSet`/sorted vecs, or allowlist membership-only uses) |
//! | D2 | no wall-clock / OS entropy in library code (`Instant::now`, `SystemTime`, `thread_rng`); randomness must flow through seeded RNGs |
//! | P1 | no `unwrap()` / `expect(..)` / `panic!` in non-test library code without an `// INVARIANT:` justification on the same line or the comment block above |
//! | U1 | every `unsafe` must carry a `// SAFETY:` comment on the same line or in the comment block above |
//! | G1 | manifest-listed public inference entry points must call `no_grad` |

use crate::config::Config;
use crate::lexer::SourceModel;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the match in the source line.
    pub col: usize,
    /// Rule id (`"D1"` .. `"G1"`, `"R1"` .. `"R4"`, `"A1"`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

// Diagnostic order is part of the output contract: path, then line,
// then rule id (col/message only break exact ties), so multi-rule
// findings on one line render in a stable, documented order.
impl Ord for Violation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.path, self.line, self.rule, self.col, &self.message).cmp(&(
            &other.path,
            other.line,
            other.rule,
            other.col,
            &other.message,
        ))
    }
}

impl PartialOrd for Violation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// All rule ids, in report order: lexical families first, then the
/// call-graph reachability families, then allowlist hygiene.
pub const RULE_IDS: [&str; 10] = ["D1", "D2", "P1", "U1", "G1", "R1", "R2", "R3", "R4", "A1"];

/// One-line summary per rule (used by `--explain` and the docs).
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "D1" => "HashMap/HashSet in library code: iteration order is nondeterministic",
        "D2" => "wall-clock or OS entropy in library code: breaks seeded reproducibility",
        "P1" => "unwrap()/expect()/panic! in library code without // INVARIANT: justification",
        "U1" => "unsafe without a // SAFETY: comment",
        "G1" => "committed [[g1]] manifest diverges from the discovered inference roots",
        "R1" => "panic/unwrap/expect/index reachable from a serve root without justification",
        "R2" => "inference root reaches the autograd tape without a dominating no_grad guard",
        "R3" => "fn transitively reaches a wall-clock / OS-entropy read (interprocedural D2)",
        "R4" => "target_feature unsafe fn called without a runtime CPUID gate",
        "A1" => "stale lint.toml [[allow]] entry matches no violation",
        _ => "unknown rule",
    }
}

/// Run every rule over one lexed file. `path` is workspace-relative and
/// only used for reporting and G1 manifest matching; allowlist filtering
/// happens in the engine, not here.
pub fn check_file(path: &str, model: &SourceModel, config: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    check_d1(path, model, &mut out);
    check_d2(path, model, &mut out);
    check_p1(path, model, &mut out);
    check_u1(path, model, &mut out);
    check_g1(path, model, config, &mut out);
    out.sort();
    out
}

/// Is the match at `pos..pos+len` a standalone word (not an identifier
/// fragment like `FxHashMap` or `unsafe_name`)?
fn word_bounded(code: &str, pos: usize, len: usize) -> bool {
    let before = code[..pos].chars().next_back();
    let after = code[pos + len..].chars().next();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    !before.is_some_and(is_ident) && !after.is_some_and(is_ident)
}

/// All word-bounded occurrences of `needle` in `code`, as byte offsets.
fn find_word(code: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let pos = from + rel;
        if word_bounded(code, pos, needle.len()) {
            hits.push(pos);
        }
        from = pos + needle.len();
    }
    hits
}

fn check_d1(path: &str, model: &SourceModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            for pos in find_word(&line.code, needle) {
                out.push(Violation {
                    path: path.to_string(),
                    line: idx + 1,
                    col: pos + 1,
                    rule: "D1",
                    message: format!(
                        "`{needle}` in non-test library code: iteration order is \
                         nondeterministic and breaks bit-identical reduction; use \
                         `BTreeMap`/`BTreeSet`/sorted vecs, or allowlist a \
                         membership-only use in lint.toml"
                    ),
                });
            }
        }
    }
}

fn check_d2(path: &str, model: &SourceModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in ["Instant::now", "SystemTime", "thread_rng"] {
            for pos in find_word(&line.code, needle) {
                out.push(Violation {
                    path: path.to_string(),
                    line: idx + 1,
                    col: pos + 1,
                    rule: "D2",
                    message: format!(
                        "`{needle}` in library code: wall-clock time and OS entropy \
                         make results run-dependent; thread a seeded RNG / explicit \
                         timestamp through the API instead"
                    ),
                });
            }
        }
    }
}

/// A justification comment counts when it appears on the flagged line
/// itself or anywhere in the contiguous comment block directly above it
/// (lines whose code view is blank — pure comment or empty lines).
fn justified(model: &SourceModel, idx: usize, tag: &str) -> bool {
    if model.lines[idx].comment.contains(tag) {
        return true;
    }
    for line in model.lines[..idx].iter().rev() {
        if !line.code.trim().is_empty() {
            return false;
        }
        if line.comment.contains(tag) {
            return true;
        }
    }
    false
}

fn check_p1(path: &str, model: &SourceModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!"] {
            let hits: Vec<usize> = if needle.starts_with('.') {
                // Method calls: exact match (keeps `.unwrap_or(..)` legal).
                let mut v = Vec::new();
                let mut from = 0;
                while let Some(rel) = line.code[from..].find(needle) {
                    v.push(from + rel);
                    from += rel + needle.len();
                }
                v
            } else {
                // Macros: word-bounded so `dont_panic!` style names pass.
                find_word(&line.code, needle.trim_end_matches('!'))
                    .into_iter()
                    .filter(|&p| line.code[p..].starts_with(needle))
                    .collect()
            };
            for pos in hits {
                if justified(model, idx, "INVARIANT:") {
                    continue;
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: idx + 1,
                    col: pos + 1,
                    rule: "P1",
                    message: format!(
                        "`{needle}` in non-test library code: return an error or \
                         justify with `// INVARIANT: <why this cannot fail>`",
                        needle = needle.trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

fn check_u1(path: &str, model: &SourceModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pos in find_word(&line.code, "unsafe") {
            if justified(model, idx, "SAFETY:") {
                continue;
            }
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                col: pos + 1,
                rule: "U1",
                message: "`unsafe` without a `// SAFETY:` comment on the same line \
                          or in the comment block above: state the invariant that \
                          makes this sound"
                    .to_string(),
            });
        }
    }
}

/// G1: each manifest entry (`file`, `function`) must resolve to a
/// non-test `fn` whose brace-matched body mentions `no_grad`.
fn check_g1(path: &str, model: &SourceModel, config: &Config, out: &mut Vec<Violation>) {
    for entry in config.g1.iter().filter(|e| e.file == path) {
        // Manifest entries may be qualified (`Type::name`); the body
        // lookup wants the bare fn name.
        let bare = entry
            .function
            .rsplit("::")
            .next()
            .unwrap_or(&entry.function);
        match fn_body_lines(model, bare) {
            None => out.push(Violation {
                path: path.to_string(),
                line: 1,
                col: 1,
                rule: "G1",
                message: format!(
                    "manifest lists inference entry point `{}` but no such \
                     function exists here — update lint.toml ([[g1]]) or the code",
                    entry.function
                ),
            }),
            Some((decl_line, lo, hi)) => {
                let calls = model.lines[lo..hi]
                    .iter()
                    .any(|l| !find_word(&l.code, "no_grad").is_empty());
                if !calls {
                    out.push(Violation {
                        path: path.to_string(),
                        line: decl_line + 1,
                        col: 1,
                        rule: "G1",
                        message: format!(
                            "inference entry point `{}` never calls `no_grad`: \
                             inference must not build autograd tape",
                            entry.function
                        ),
                    });
                }
            }
        }
    }
}

/// Locate `fn <name>` outside test code and brace-match its body.
/// Returns `(decl_line_idx, body_start_idx, body_end_idx_exclusive)`.
fn fn_body_lines(model: &SourceModel, name: &str) -> Option<(usize, usize, usize)> {
    let decl = model.lines.iter().enumerate().find(|(_, l)| {
        !l.in_test
            && find_word(&l.code, name)
                .iter()
                .any(|&p| l.code[..p].trim_end().ends_with("fn"))
    });
    let (decl_idx, _) = decl?;
    // Scan forward from the declaration for the opening brace, then match.
    let mut depth: i64 = 0;
    let mut opened = false;
    for (idx, line) in model.lines.iter().enumerate().skip(decl_idx) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth == 0 {
            return Some((decl_idx, decl_idx, idx + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        check_file("lib.rs", &lex(src), &Config::default())
    }

    #[test]
    fn d1_fires_on_hashmap_not_on_btreemap() {
        let v = run("use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D1");
        assert!(run("use std::collections::BTreeMap;\n").is_empty());
        // Identifier fragments do not count.
        assert!(run("struct MyHashMapLike;\n").is_empty());
    }

    #[test]
    fn p1_unwrap_or_is_legal() {
        assert!(run("let x = opt.unwrap_or(3);\n").is_empty());
        assert!(run("let x = opt.unwrap_or_else(f);\n").is_empty());
        let v = run("let x = opt.unwrap();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
    }

    #[test]
    fn p1_invariant_comment_justifies() {
        assert!(run("// INVARIANT: checked non-empty above\nlet x = opt.unwrap();\n").is_empty());
        assert!(run("let x = opt.unwrap(); // INVARIANT: len checked\n").is_empty());
    }

    #[test]
    fn u1_requires_safety_comment() {
        let v = run("let p = unsafe { *ptr };\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "U1");
        assert!(run("// SAFETY: ptr is valid for reads\nlet p = unsafe { *ptr };\n").is_empty());
    }

    #[test]
    fn u1_covers_target_feature_unsafe_fn() {
        // The SIMD kernels' shape: a cfg/target_feature-gated `unsafe fn`
        // with the SAFETY contract in the comment block directly above
        // the signature (below the attributes) is justified...
        let good = "#[cfg(target_arch = \"x86_64\")]\n\
                    #[target_feature(enable = \"avx2\")]\n\
                    // SAFETY: caller checks AVX2 and passes valid panel pointers\n\
                    unsafe fn mk(kc: usize) {\n}\n";
        assert!(run(good).is_empty());
        // ...and without it the declaration itself is flagged.
        let bad = "#[cfg(target_arch = \"x86_64\")]\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn mk(kc: usize) {\n}\n";
        let v = run(bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "U1");
    }

    #[test]
    fn g1_missing_no_grad_flagged() {
        let cfg =
            Config::parse("[[g1]]\nfile = \"lib.rs\"\nfunction = \"generate\"\n").expect("cfg");
        let bad = "pub fn generate(&self) -> Vec<u32> {\n    self.decode()\n}\n";
        let v = check_file("lib.rs", &lex(bad), &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "G1");
        let good = "pub fn generate(&self) -> Vec<u32> {\n    no_grad(|| self.decode())\n}\n";
        assert!(check_file("lib.rs", &lex(good), &cfg).is_empty());
    }

    #[test]
    fn g1_manifest_drift_flagged() {
        let cfg = Config::parse("[[g1]]\nfile = \"lib.rs\"\nfunction = \"gone\"\n").expect("cfg");
        let v = check_file("lib.rs", &lex("pub fn other() {}\n"), &cfg);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no such function"));
    }

    #[test]
    fn test_scope_excluded_from_all_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap(); panic!(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn string_and_comment_content_ignored() {
        assert!(run("let s = \"HashMap unsafe panic!\"; // HashMap in comment\n").is_empty());
    }
}
