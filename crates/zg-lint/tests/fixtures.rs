//! Per-rule fixture tests: every rule family must fire on a known-bad
//! snippet and stay silent on the corresponding known-good one. These
//! run through [`zg_lint::scan_source`], the same entry the engine uses
//! per file, so they exercise lexing + rules + allowlist filtering
//! end-to-end on in-memory sources.

use zg_lint::{scan_source, Config};

fn rules_for(src: &str) -> Vec<&'static str> {
    scan_source("crates/zg-demo/src/lib.rs", src, &Config::default())
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

// ---------------------------------------------------------------- D1 ---

#[test]
fn d1_bad_hashmap_in_library_code() {
    let src = "use std::collections::HashMap;\n\
               pub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let rules = rules_for(src);
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|&r| r == "D1"), "{rules:?}");
}

#[test]
fn d1_good_btreemap_and_lookalikes() {
    let src = "use std::collections::BTreeMap;\n\
               pub struct FxHashMapLike;\n\
               pub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
    assert!(rules_for(src).is_empty());
}

// ---------------------------------------------------------------- D2 ---

#[test]
fn d2_bad_wall_clock_and_entropy() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n\
               pub fn g() { let _ = rand::thread_rng(); }\n\
               pub fn h() { let _ = std::time::SystemTime::now(); }\n";
    let rules = rules_for(src);
    assert_eq!(rules.len(), 3, "{rules:?}");
    assert!(rules.iter().all(|&r| r == "D2"));
}

#[test]
fn d2_good_seeded_rng() {
    let src = "use rand::SeedableRng;\n\
               pub fn f(seed: u64) -> rand::rngs::StdRng { rand::rngs::StdRng::seed_from_u64(seed) }\n";
    assert!(rules_for(src).is_empty());
}

#[test]
fn d2_trace_clock_allowlist_is_scoped_to_the_clock_module() {
    // Mirrors the real lint.toml entry: zg-trace's wall_clock() is the one
    // reviewed real-clock source; the same code anywhere else still fires.
    let cfg = Config::parse(
        "[[allow]]\n\
         rule = \"D2\"\n\
         path = \"crates/zg-trace/src/clock.rs\"\n\
         reason = \"the single reviewed real-clock source\"\n",
    )
    .expect("config parses");
    let src = "pub fn wall_clock() { let _ = std::time::Instant::now(); }\n";
    assert!(
        scan_source("crates/zg-trace/src/clock.rs", src, &cfg).is_empty(),
        "the clock module is allowlisted"
    );
    let elsewhere = scan_source("crates/zg-trace/src/tracer.rs", src, &cfg);
    assert!(
        elsewhere.iter().any(|v| v.rule == "D2"),
        "the allowlist must not leak beyond clock.rs: {elsewhere:?}"
    );
}

#[test]
fn d2_good_instrumented_callsites() {
    // The shape tracing instrumentation takes in library crates: spans,
    // counters, and injected clocks — no direct wall-clock reads.
    let src = "\
pub fn step(clock: &zg_trace::Clock) -> f64 {
    let _span = zg_trace::span(\"train.forward\");
    zg_trace::counter_add(\"train.microbatches\", 1.0);
    zg_trace::hist_record(\"gemm.mnk\", 64.0);
    clock()
}
";
    assert!(rules_for(src).is_empty());
}

// ---------------------------------------------------------------- P1 ---

#[test]
fn p1_bad_unjustified_panics() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               pub fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
               pub fn h() { panic!(\"boom\"); }\n\
               pub fn i() { unreachable!(); }\n\
               pub fn j() { todo!(); }\n";
    let rules = rules_for(src);
    assert_eq!(rules.len(), 5, "{rules:?}");
    assert!(rules.iter().all(|&r| r == "P1"));
}

#[test]
fn p1_good_justified_or_fallible() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    // INVARIANT: caller checked is_some above.
    x.unwrap()
}
pub fn g(x: Option<u32>) -> u32 {
    x.expect(\"set\") // INVARIANT: construction always sets this
}
pub fn h(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
pub fn i(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| \"missing\".to_string())
}
";
    assert!(rules_for(src).is_empty());
}

#[test]
fn p1_justification_carries_across_comment_block() {
    // The INVARIANT tag may sit anywhere in the contiguous comment block
    // directly above the flagged line — but a code line breaks the chain.
    let good = "\
pub fn f(x: Option<u32>) -> u32 {
    // INVARIANT: x is Some here because new() always
    // populates it before any call site can observe f.
    x.unwrap()
}
";
    assert!(rules_for(good).is_empty());
    let bad = "\
pub fn f(x: Option<u32>) -> u32 {
    // INVARIANT: stale note about the line below
    let y = x;
    y.unwrap()
}
";
    assert_eq!(rules_for(bad), vec!["P1"]);
}

// ---------------------------------------------------------------- U1 ---

#[test]
fn u1_bad_bare_unsafe() {
    let src = "pub fn f(p: *const f32) -> f32 { unsafe { *p } }\n";
    assert_eq!(rules_for(src), vec!["U1"]);
}

#[test]
fn u1_good_safety_comment() {
    let src = "\
pub fn f(p: *const f32) -> f32 {
    // SAFETY: caller guarantees p is valid for reads and aligned.
    unsafe { *p }
}
";
    assert!(rules_for(src).is_empty());
}

// ---------------------------------------------------------------- G1 ---

#[test]
fn g1_bad_entry_point_without_no_grad() {
    let cfg =
        Config::parse("[[g1]]\nfile = \"crates/zg-demo/src/lib.rs\"\nfunction = \"generate\"\n")
            .expect("valid config");
    let bad = "pub fn generate(n: usize) -> Vec<u32> {\n    (0..n as u32).collect()\n}\n";
    let v = scan_source("crates/zg-demo/src/lib.rs", bad, &cfg);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "G1");
    let good =
        "pub fn generate(n: usize) -> Vec<u32> {\n    no_grad(|| (0..n as u32).collect())\n}\n";
    assert!(scan_source("crates/zg-demo/src/lib.rs", good, &cfg).is_empty());
}

#[test]
fn g1_only_checks_the_manifested_file() {
    let cfg =
        Config::parse("[[g1]]\nfile = \"crates/zg-demo/src/lm.rs\"\nfunction = \"generate\"\n")
            .expect("valid config");
    // Same bad source, different path: G1 does not apply.
    let bad = "pub fn generate(n: usize) -> Vec<u32> {\n    (0..n as u32).collect()\n}\n";
    assert!(scan_source("crates/zg-demo/src/other.rs", bad, &cfg).is_empty());
}

// --------------------------------------------------- test-scope gating ---

#[test]
fn cfg_test_module_is_exempt_from_all_rules() {
    let src = "\
pub fn lib_code() -> u32 { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = std::time::Instant::now();
        m.get(&0).unwrap();
        let p = &1.0f32 as *const f32;
        let _ = unsafe { *p };
    }
}
";
    assert!(rules_for(src).is_empty());
}

#[test]
fn violations_after_test_module_still_fire() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}

pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
    assert_eq!(rules_for(src), vec!["P1"]);
}

// -------------------------------------------------- allowlist handling ---

#[test]
fn allowlist_suppresses_by_file_and_prefix() {
    let cfg = Config::parse(
        "[[allow]]\nrule = \"D1\"\npath = \"crates/zg-demo\"\nreason = \"membership-only\"\n",
    )
    .expect("valid config");
    let src = "use std::collections::HashMap;\n";
    // Covered by the directory prefix: suppressed.
    assert!(scan_source("crates/zg-demo/src/lib.rs", src, &cfg).is_empty());
    // Different crate: still fires.
    assert_eq!(
        scan_source("crates/zg-other/src/lib.rs", src, &cfg).len(),
        1
    );
    // Allow entry is per-rule: a D2 hit in the allowed path still fires.
    let d2 = "pub fn f() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(scan_source("crates/zg-demo/src/lib.rs", d2, &cfg).len(), 1);
}

#[test]
fn allowlist_without_reason_is_a_config_error() {
    let err = Config::parse("[[allow]]\nrule = \"D1\"\npath = \"crates/x\"\n")
        .expect_err("reason is mandatory");
    assert!(err.message.contains("reason"), "{}", err.message);
}

// ----------------------------------------------------- lexer edge cases ---

#[test]
fn raw_strings_hide_their_contents_from_rules() {
    // Tokens inside r#"..."# (including embedded quotes) are string
    // content, not code — neither D1 nor P1 may fire.
    let src = "pub fn f() -> &'static str {\n    r#\"HashMap::new() panic!(\"not code\") .unwrap()\"#\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

#[test]
fn raw_string_terminator_restores_scanning() {
    // The token after the raw string closes must be visible again.
    let src = "pub fn f() {\n    let _s = r#\"quiet \"inner\" text\"#;\n    let _m = std::collections::HashMap::<u32, u32>::new();\n}\n";
    assert_eq!(rules_for(src), vec!["D1"]);
}

#[test]
fn nested_block_comments_balance() {
    // Rust block comments nest: the first */ closes the INNER comment
    // only. Everything up to the second */ is still comment text, and
    // code after it is scanned again.
    let src = "/* outer /* inner HashMap */ still comment .unwrap() */\npub fn f() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(rules_for(src), vec!["D2"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    // A naive char-literal scanner would treat `'a` as an unterminated
    // char and swallow the rest of the file, hiding the HashMap.
    let src = "pub fn f<'a>(v: &'a [u32]) -> &'a [u32] {\n    let _m = std::collections::HashMap::<u32, u32>::new();\n    v\n}\n";
    assert_eq!(rules_for(src), vec!["D1"]);
}

#[test]
fn char_literals_hide_contents_but_terminate() {
    // A real char literal (even a quote character) is stripped as
    // content; scanning resumes after it.
    let src = "pub fn f() -> char {\n    let q = '\"';\n    let _m = std::collections::HashMap::<u32, u32>::new();\n    q\n}\n";
    assert_eq!(rules_for(src), vec!["D1"]);
}

#[test]
fn cfg_test_on_impl_block_relaxes_the_whole_impl() {
    let src = "\
pub struct Fixture;
#[cfg(test)]
impl Fixture {
    pub fn must(x: Option<u32>) -> u32 { x.unwrap() }
}
pub fn lib(x: Option<u32>) -> u32 { x.unwrap() }
";
    // Only the non-test `lib` fires.
    assert_eq!(rules_for(src), vec!["P1"]);
}
