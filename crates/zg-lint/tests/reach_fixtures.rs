//! Per-rule fixture tests for the call-graph phase: every reachability
//! rule (R1–R4) must fire on a known-bad workspace, stay silent on the
//! corresponding known-good one, and be suppressible by a reviewed
//! `[[allow]]` entry. These run through [`zg_lint::scan_sources`] — the
//! same full pipeline (lex → item model → link → reach → allow-filter)
//! the workspace scan uses, just over in-memory sources.

use zg_lint::{scan_sources, Config};

fn scan(srcs: &[(&str, &str)], cfg: &str) -> zg_lint::ScanResult {
    scan_sources(srcs, &Config::parse(cfg).expect("fixture config parses"))
}

fn rules(result: &zg_lint::ScanResult) -> Vec<&'static str> {
    result.violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- R1 ---

const R1_CFG: &str = "[r1]\nroots = [\"Server::tick\"]\n";

#[test]
fn r1_bad_panic_reachable_from_root_across_files() {
    let result = scan(
        &[
            (
                "crates/s/src/server.rs",
                "pub struct Server;\nimpl Server { pub fn tick(&mut self) { dispatch(); } }\n",
            ),
            (
                "crates/s/src/work.rs",
                "pub fn dispatch() { step(); }\npub fn step(v: &[u32]) -> u32 { v[0] }\n",
            ),
        ],
        R1_CFG,
    );
    assert_eq!(rules(&result), vec!["R1"]);
    let v = &result.violations[0];
    assert!(
        v.message.contains("Server::tick -> dispatch -> step"),
        "{}",
        v.message
    );
}

#[test]
fn r1_good_justified_site_and_unreachable_panic() {
    let result = scan(
        &[
            (
                "crates/s/src/server.rs",
                "pub struct Server;\nimpl Server { pub fn tick(&mut self) { dispatch(); } }\n",
            ),
            (
                "crates/s/src/work.rs",
                "pub fn dispatch(v: &[u32]) -> u32 {\n    // INVARIANT: caller guarantees v is non-empty.\n    v[0]\n}\npub fn cold(v: &[u32]) -> u32 { v[1] }\n",
            ),
        ],
        R1_CFG,
    );
    // The justified index passes, and `cold`'s index is not reachable
    // from the root, so R1 stays quiet about it.
    assert_eq!(rules(&result), Vec::<&str>::new());
}

#[test]
fn r1_allowlisted_kernel_crate_index_is_suppressed() {
    let cfg = "\
[r1]
roots = [\"Server::tick\"]

[[allow]]
rule = \"R1\"
kind = \"index\"
path = \"crates/kernel\"
reason = \"inner loops index by shape invariants\"
";
    let result = scan(
        &[
            (
                "crates/s/src/server.rs",
                "pub struct Server;\nimpl Server { pub fn tick(&mut self) { gemm(); } }\n",
            ),
            (
                "crates/kernel/src/gemm.rs",
                "pub fn gemm(a: &[f32]) -> f32 { a[0] }\n",
            ),
        ],
        cfg,
    );
    assert_eq!(rules(&result), Vec::<&str>::new());
    assert!(
        !result.allowed.is_empty(),
        "the index finding must be counted as allowed"
    );
}

// ---------------------------------------------------------------- R2 ---

const R2_SRC_BAD: &str = "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn generate() { no_grad(); decode(); }
pub fn generate_raw() { decode(); }
fn decode() { Tensor::from_op(); }
";

#[test]
fn r2_bad_unguarded_root_builds_tape() {
    let cfg = "\
[r2]
entry_prefixes = [\"generate\"]

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"generate\"

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"generate_raw\"
";
    let result = scan(&[("crates/m/src/lm.rs", R2_SRC_BAD)], cfg);
    assert_eq!(rules(&result), vec!["R2"]);
    assert!(result.violations[0].message.contains("generate_raw"));
    // The emitted manifest carries both discovered roots either way.
    let names: Vec<&str> = result
        .manifest
        .iter()
        .map(|e| e.function.as_str())
        .collect();
    assert_eq!(names, vec!["generate", "generate_raw"]);
}

#[test]
fn r2_good_every_tape_path_is_guarded() {
    let src = "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn evaluate_item() { score(); }
fn score() { no_grad(); Tensor::from_op(); }
";
    let cfg = "\
[r2]
entry_prefixes = [\"evaluate_\"]

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"evaluate_item\"
";
    let result = scan(&[("crates/m/src/lm.rs", src)], cfg);
    assert_eq!(rules(&result), Vec::<&str>::new());
}

#[test]
fn r2_allowlisted_legacy_baseline_is_suppressed() {
    let cfg = "\
[r2]
entry_prefixes = [\"generate\"]

[[allow]]
rule = \"R2\"
path = \"crates/m/src/lm.rs\"
reason = \"legacy benchmark baseline measures the tape-building path on purpose\"

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"generate\"

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"generate_raw\"
";
    let result = scan(&[("crates/m/src/lm.rs", R2_SRC_BAD)], cfg);
    assert_eq!(rules(&result), Vec::<&str>::new());
}

#[test]
fn g1_manifest_drift_fails_in_both_directions() {
    let cfg = "\
[r2]
entry_prefixes = [\"generate\"]

[[g1]]
file = \"crates/m/src/lm.rs\"
function = \"renamed_away\"
";
    let src = "\
pub struct Tensor;
impl Tensor { pub fn from_op() -> Tensor { Tensor } }
pub fn no_grad() {}
pub fn generate() { no_grad(); Tensor::from_op(); }
";
    let result = scan(&[("crates/m/src/lm.rs", src)], cfg);
    let g1: Vec<_> = result
        .violations
        .iter()
        .filter(|v| v.rule == "G1")
        .collect();
    assert_eq!(g1.len(), 2, "{:?}", rules(&result));
    assert!(g1.iter().any(|v| v.message.contains("missing from")));
    assert!(g1.iter().any(|v| v.message.contains("stale")));
}

// ---------------------------------------------------------------- R3 ---

const R3_SRCS: [(&str, &str); 2] = [
    ("crates/a/src/lib.rs", "pub fn pipeline() { stamp(); }\n"),
    (
        "crates/b/src/clock.rs",
        "pub fn stamp() -> u64 { let _t = std::time::Instant::now(); 0 }\n",
    ),
];

#[test]
fn r3_bad_taint_crosses_crates() {
    let result = scan(&R3_SRCS, "");
    // The source itself is lexical D2's finding; R3 adds the caller.
    let mut got = rules(&result);
    got.sort_unstable();
    assert_eq!(got, vec!["D2", "R3"]);
    let r3 = result
        .violations
        .iter()
        .find(|v| v.rule == "R3")
        .expect("R3");
    assert!(r3.message.contains("pipeline"), "{}", r3.message);
}

#[test]
fn r3_good_sanctioned_clock_is_a_barrier() {
    let cfg = "\
[[allow]]
rule = \"D2\"
path = \"crates/b/src/clock.rs\"
reason = \"the reviewed injectable clock source\"
";
    let result = scan(&R3_SRCS, cfg);
    assert_eq!(rules(&result), Vec::<&str>::new());
}

#[test]
fn r3_allowlisted_caller_kind_taint() {
    // The source keeps its lexical D2 finding (no barrier configured),
    // but the tainted caller is explicitly allowed by a kind-scoped
    // entry — R3 is suppressed and counted as allowed.
    let cfg = "\
[[allow]]
rule = \"R3\"
kind = \"taint\"
path = \"crates/a\"
reason = \"binary crate wiring the real clock in\"
";
    let result = scan(&R3_SRCS, cfg);
    assert_eq!(rules(&result), vec!["D2"]);
    assert!(result.allowed.iter().any(|v| v.rule == "R3"));
}

// ---------------------------------------------------------------- R4 ---

const R4_SRC_BAD: &str = "\
#[target_feature(enable = \"avx2\")]
// SAFETY: caller must have verified AVX2 support.
unsafe fn mk8x8(p: *const f32) {}
// SAFETY: p is valid for reads.
pub fn ungated(p: *const f32) { unsafe { mk8x8(p) } }
";

#[test]
fn r4_bad_ungated_safe_caller() {
    let result = scan(&[("crates/t/src/simd.rs", R4_SRC_BAD)], "");
    assert_eq!(rules(&result), vec!["R4"]);
    assert!(result.violations[0].message.contains("ungated"));
}

#[test]
fn r4_good_cpuid_gate_before_dispatch() {
    let src = "\
pub fn detect() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }
#[target_feature(enable = \"avx2\")]
// SAFETY: caller must have verified AVX2 support.
unsafe fn mk8x8(p: *const f32) {}
// SAFETY: gated on runtime AVX2 detection just above.
pub fn gated(p: *const f32) { if detect() { unsafe { mk8x8(p) } } }
";
    let result = scan(&[("crates/t/src/simd.rs", src)], "");
    assert_eq!(rules(&result), Vec::<&str>::new());
}

#[test]
fn r4_allowlisted_unsafe_kind() {
    let cfg = "\
[[allow]]
rule = \"R4\"
kind = \"unsafe\"
path = \"crates/t/src/simd.rs\"
reason = \"binary-local dispatch, gate lives in main\"
";
    let result = scan(&[("crates/t/src/simd.rs", R4_SRC_BAD)], cfg);
    assert_eq!(rules(&result), Vec::<&str>::new());
}

// ---------------------------------------------------------------- A1 ---

#[test]
fn a1_stale_allow_entry_is_flagged_at_its_config_line() {
    let cfg = "\
[[allow]]
rule = \"D1\"
path = \"crates/nowhere\"
reason = \"matches nothing any more\"
";
    let result = scan(&[("crates/a/src/lib.rs", "pub fn f() {}\n")], cfg);
    assert_eq!(rules(&result), vec!["A1"]);
    let v = &result.violations[0];
    assert_eq!(v.path, "lint.toml");
    assert_eq!(v.line, 1, "A1 must point at the [[allow]] entry's line");
    assert!(v.message.contains("crates/nowhere"));
}

#[test]
fn a1_matching_allow_entries_stay_quiet() {
    let cfg = "\
[[allow]]
rule = \"D1\"
path = \"crates/a\"
reason = \"membership-only set\"
";
    let result = scan(
        &[(
            "crates/a/src/lib.rs",
            "use std::collections::HashSet;\npub fn f() -> HashSet<u32> { HashSet::new() }\n",
        )],
        cfg,
    );
    assert_eq!(rules(&result), Vec::<&str>::new());
    assert!(!result.allowed.is_empty());
}

// ------------------------------------------------- determinism (walk) ---

#[test]
fn scan_is_byte_identical_across_shuffled_input_order() {
    let srcs: Vec<(&str, &str)> = vec![
        (
            "crates/s/src/server.rs",
            "pub struct Server;\nimpl Server { pub fn tick(&mut self) { dispatch(); } }\n",
        ),
        (
            "crates/s/src/work.rs",
            "pub fn dispatch() { step(); }\npub fn step(v: &[u32]) -> u32 { v[0] }\n",
        ),
        (
            "crates/m/src/lm.rs",
            "pub struct Tensor;\nimpl Tensor { pub fn from_op() -> Tensor { Tensor } }\npub fn no_grad() {}\npub fn generate() { decode(); }\nfn decode() { Tensor::from_op(); }\n",
        ),
        (
            "crates/b/src/clock.rs",
            "pub fn stamp() -> u64 { let _t = std::time::Instant::now(); 0 }\n",
        ),
    ];
    let cfg = Config::parse(
        "[r1]\nroots = [\"Server::tick\"]\n\n[r2]\nentry_prefixes = [\"generate\"]\n",
    )
    .expect("config");

    // Three walk orders, including reversed and an interleaved rotation.
    let forward = scan_sources(&srcs, &cfg);
    let reversed: Vec<_> = srcs.iter().rev().cloned().collect();
    let rotated: Vec<_> = srcs[2..].iter().chain(&srcs[..2]).cloned().collect();
    let b = scan_sources(&reversed, &cfg);
    let c = scan_sources(&rotated, &cfg);

    for other in [&b, &c] {
        assert_eq!(forward.files, other.files);
        assert_eq!(forward.violations, other.violations);
        assert_eq!(forward.manifest, other.manifest);
    }
    let ja = zg_lint::report::graph_json(&forward);
    let jb = zg_lint::report::graph_json(&b);
    let jc = zg_lint::report::graph_json(&c);
    assert_eq!(ja, jb, "graph JSON must not depend on walk order");
    assert_eq!(ja, jc, "graph JSON must not depend on walk order");

    // And the ordering contract itself: (path, line, rule) ascending.
    let keys: Vec<_> = forward
        .violations
        .iter()
        .map(|v| (v.path.clone(), v.line, v.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "violations must be sorted by (path, line, rule)"
    );
}
