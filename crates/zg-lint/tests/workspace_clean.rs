//! The lint pass over the real workspace, as a `#[test]` — this puts the
//! invariant checker inside the tier-1 `cargo test` gate (the `zg-lint`
//! binary run in CI is the same pass with a CLI front-end).

use std::path::Path;

use zg_lint::{find_workspace_root, scan_workspace, Config};

fn workspace() -> (std::path::PathBuf, Config) {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above zg-lint");
    let cfg_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&cfg_path).expect("lint.toml at workspace root");
    let cfg = Config::parse(&text).expect("lint.toml parses");
    (root, cfg)
}

#[test]
fn workspace_has_no_lint_violations() {
    let (root, cfg) = workspace();
    let result = scan_workspace(&root, &cfg).expect("scan succeeds");
    assert!(
        result.files.len() > 50,
        "scan saw only {} files — scan roots misconfigured?",
        result.files.len()
    );
    assert!(
        result.violations.is_empty(),
        "workspace must stay lint-clean:\n{}",
        zg_lint::report::render(&result, &cfg, Some(&root))
    );
}

#[test]
fn g1_manifest_resolves_against_the_tree() {
    // Manifest drift (an entry pointing at a renamed function, or a
    // discovered root missing from lint.toml) surfaces as a G1
    // violation; the clean scan above therefore also proves the
    // committed manifest equals the discovered one. Here we additionally
    // pin that the manifest is non-trivial and fully qualified.
    let (root, cfg) = workspace();
    assert!(
        cfg.g1.len() >= 15,
        "expected the discovered inference entry points in lint.toml, found {}",
        cfg.g1.len()
    );
    let result = scan_workspace(&root, &cfg).expect("scan succeeds");
    assert_eq!(
        result.manifest, cfg.g1,
        "committed [[g1]] manifest must byte-match the discovered one"
    );
    assert!(
        cfg.g1.iter().any(|e| e.function.contains("::")),
        "manifest entries must use qualified names"
    );
}

#[test]
fn walk_covers_test_dirs_and_skips_build_output() {
    let (root, cfg) = workspace();
    let result = scan_workspace(&root, &cfg).expect("scan succeeds");
    // tests/, benches/, and examples/ directories are part of the walk
    // (in test scope), so a determinism bug in a bench harness is still
    // visible to the kind-scoped allows and the file-set stays honest.
    for marker in ["/tests/", "/benches/", "/examples/"] {
        assert!(
            result.files.iter().any(|f| f.contains(marker)),
            "walk must include {marker} files, got {} files",
            result.files.len()
        );
    }
    for banned in ["target/", "vendor/", "fixtures/"] {
        assert!(
            result.files.iter().all(|f| !f.contains(banned)),
            "walk must skip {banned}"
        );
    }
    // And the graph phase actually linked something non-trivial.
    assert!(result.stats.nodes > 500, "nodes = {}", result.stats.nodes);
    assert!(result.stats.edges > 1000, "edges = {}", result.stats.edges);
}

#[test]
fn report_is_byte_identical_across_runs() {
    let (root, cfg) = workspace();
    let a = scan_workspace(&root, &cfg).expect("first scan");
    let b = scan_workspace(&root, &cfg).expect("second scan");
    assert_eq!(a.files, b.files);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.allowed, b.allowed);
    let ra = zg_lint::report::render(&a, &cfg, Some(&root));
    let rb = zg_lint::report::render(&b, &cfg, Some(&root));
    assert_eq!(ra, rb, "rendered reports must be byte-identical");
    let ja = zg_lint::report::to_json(&a).to_string();
    let jb = zg_lint::report::to_json(&b).to_string();
    assert_eq!(ja, jb, "JSON summaries must be byte-identical");
    let ga = zg_lint::report::graph_json(&a);
    let gb = zg_lint::report::graph_json(&b);
    assert_eq!(ga, gb, "emitted graph JSON must be byte-identical");
    assert_eq!(a.manifest, b.manifest);
}
