//! Adapter construction, attachment, freezing, and merging.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zg_model::{Adapter, CausalLm, Linear};
use zg_tensor::{gemm, Tensor};

/// Which attention projections receive adapters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetModule {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Output projection.
    O,
}

/// LoRA hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Adapter rank `r`. Paper Table 3: 8.
    pub rank: usize,
    /// Scaling numerator `α`; effective scale is `α / r`. Paper Table 3: 16.
    pub alpha: f32,
    /// Projections to adapt. Paper Table 3: {query, key, value}.
    pub targets: Vec<TargetModule>,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig {
            rank: 8,
            alpha: 16.0,
            targets: vec![TargetModule::Q, TargetModule::K, TargetModule::V],
        }
    }
}

impl LoraConfig {
    /// Effective adapter scaling `α / r`.
    pub fn scale(&self) -> f32 {
        self.alpha / self.rank as f32
    }
}

fn make_adapter(linear: &Linear, cfg: &LoraConfig, rng: &mut impl Rng) -> Adapter {
    let (fin, fout) = (linear.in_features(), linear.out_features());
    // Standard LoRA init: A ~ N(0, 1/r), B = 0, so ΔW starts at zero and
    // the adapted model is exactly the base model at step 0.
    let a = Tensor::randn([fin, cfg.rank], 0.0, 1.0 / cfg.rank as f32, rng);
    a.set_requires_grad(true);
    let b = Tensor::param(vec![0.0; cfg.rank * fout], [cfg.rank, fout]);
    Adapter {
        a,
        b,
        scale: cfg.scale(),
    }
}

fn targeted<'a>(projections: [&'a mut Linear; 4], targets: &[TargetModule]) -> Vec<&'a mut Linear> {
    let [q, k, v, o] = projections;
    let mut out = Vec::new();
    // Preserve q/k/v/o order regardless of target order in the config.
    let mut slots = [Some(q), Some(k), Some(v), Some(o)];
    for (idx, module) in [
        TargetModule::Q,
        TargetModule::K,
        TargetModule::V,
        TargetModule::O,
    ]
    .iter()
    .enumerate()
    {
        if targets.contains(module) {
            // INVARIANT: each TargetModule appears once in the array, so each slot is taken at most once.
            out.push(slots[idx].take().expect("slot taken once"));
        }
    }
    out
}

/// Attach LoRA adapters to the configured projections of every layer and
/// freeze all base parameters. After this call,
/// [`CausalLm::trainable_params`] returns exactly the adapter matrices.
pub fn attach(lm: &mut CausalLm, cfg: &LoraConfig, rng: &mut impl Rng) {
    assert!(cfg.rank >= 1, "LoRA rank must be >= 1");
    assert!(!cfg.targets.is_empty(), "no target modules configured");
    // Freeze the base model.
    for (_, p) in lm.params() {
        p.set_requires_grad(false);
    }
    for block in &mut lm.blocks {
        for linear in targeted(block.attn.projections_mut(), &cfg.targets) {
            linear.adapter = Some(make_adapter(linear, cfg, rng));
        }
    }
}

/// Remove all adapters (without merging) and unfreeze the base model.
pub fn detach(lm: &mut CausalLm) {
    for block in &mut lm.blocks {
        for linear in block.attn.projections_mut() {
            linear.adapter = None;
        }
    }
    for (_, p) in lm.params() {
        p.set_requires_grad(true);
    }
}

/// Fold every adapter into its base weight (`W += scale·A·B`) and remove
/// it. The merged model computes identical outputs without the adapter
/// forward cost.
pub fn merge(lm: &mut CausalLm) {
    for block in &mut lm.blocks {
        for linear in block.attn.projections_mut() {
            let Some(ad) = linear.adapter.take() else {
                continue;
            };
            let (fin, fout) = (linear.in_features(), linear.out_features());
            let rank = ad.a.dims()[1];
            let mut delta = vec![0.0f32; fin * fout];
            gemm(
                false,
                false,
                fin,
                fout,
                rank,
                &ad.a.data(),
                &ad.b.data(),
                &mut delta,
            );
            let mut w = linear.weight.data_mut();
            for (wv, dv) in w.iter_mut().zip(&delta) {
                *wv += ad.scale * dv;
            }
        }
    }
}

/// Quantize the frozen base weights of a LoRA model to int8: every dense
/// projection whose weight is frozen (`requires_grad == false`) gets a
/// per-output-channel absmax calibration, while the f32 adapter deltas
/// stay exact. Returns the number of calibrated projections.
///
/// Panics when any projection base weight is still trainable — quantizing
/// weights the optimizer is about to move would silently serve stale
/// calibrations; call [`attach`] (which freezes the base) first.
pub fn quantize_frozen_base(lm: &CausalLm) -> usize {
    for linear in lm.linears() {
        assert!(
            !linear.weight.requires_grad(),
            "quantize_frozen_base: base weight still trainable; attach adapters (freezing the base) first"
        );
    }
    lm.set_quantized(true)
}

/// Drop every int8 calibration, returning the model to pure-f32 inference.
pub fn dequantize_base(lm: &CausalLm) {
    lm.set_quantized(false);
}

/// The adapter parameters of `lm` (name, tensor) — the LoRA subspace.
pub fn lora_params(lm: &CausalLm) -> Vec<(String, Tensor)> {
    lm.params()
        .into_iter()
        .filter(|(name, _)| name.ends_with(".lora_a") || name.ends_with(".lora_b"))
        .collect()
}

/// Total number of adapter parameters.
pub fn lora_param_count(lm: &CausalLm) -> usize {
    lora_params(lm).iter().map(|(_, p)| p.numel()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zg_model::ModelConfig;

    fn tiny_lm(seed: u64) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::mistral_miniature(32);
        cfg.n_layers = 2;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        CausalLm::new(cfg, &mut rng)
    }

    #[test]
    fn attach_freezes_base_and_exposes_adapters() {
        let mut lm = tiny_lm(1);
        let total_before = lm.params().len();
        let mut rng = StdRng::seed_from_u64(2);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        let trainable = lm.trainable_params();
        // q,k,v adapters per layer × 2 matrices × 2 layers = 12.
        assert_eq!(trainable.len(), 12);
        assert!(trainable
            .iter()
            .all(|(n, _)| n.contains("lora_a") || n.contains("lora_b")));
        assert_eq!(lm.params().len(), total_before + 12);
    }

    #[test]
    fn zero_init_preserves_base_outputs() {
        let mut lm = tiny_lm(3);
        let before = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        let mut rng = StdRng::seed_from_u64(4);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        let after = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-6, "LoRA must start as identity");
        }
    }

    #[test]
    fn training_only_updates_adapters() {
        let mut lm = tiny_lm(5);
        let mut rng = StdRng::seed_from_u64(6);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        let loss = lm.sft_loss(&[1, 2, 3, 4], &[2, 3, 4, 2], 1, 4, 0);
        loss.backward();
        for (name, p) in lm.params() {
            let has_grad = p.grad().is_some();
            let is_adapter = name.contains("lora");
            assert_eq!(
                has_grad, is_adapter,
                "{name}: grad {has_grad}, adapter {is_adapter}"
            );
        }
    }

    #[test]
    fn merge_reproduces_adapted_outputs() {
        let mut lm = tiny_lm(7);
        let mut rng = StdRng::seed_from_u64(8);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        // Give B nonzero values so the adapter actually does something.
        for (name, p) in lora_params(&lm) {
            if name.ends_with("lora_b") {
                let d: Vec<f32> = (0..p.numel()).map(|i| 0.01 * (i % 7) as f32).collect();
                p.set_data(&d);
            }
        }
        let adapted = lm.forward(&[3, 1, 4], 1, 3).to_vec();
        merge(&mut lm);
        assert!(lora_params(&lm).is_empty(), "adapters removed after merge");
        let merged = lm.forward(&[3, 1, 4], 1, 3).to_vec();
        for (a, b) in adapted.iter().zip(&merged) {
            assert!((a - b).abs() < 1e-4, "merge changed outputs: {a} vs {b}");
        }
    }

    #[test]
    fn detach_restores_full_training() {
        let mut lm = tiny_lm(9);
        let all = lm.params().len();
        let mut rng = StdRng::seed_from_u64(10);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        detach(&mut lm);
        assert_eq!(lm.trainable_params().len(), all);
        assert_eq!(lora_param_count(&lm), 0);
    }

    #[test]
    fn rank_controls_param_count() {
        for rank in [1usize, 4, 8] {
            let mut lm = tiny_lm(11);
            let mut rng = StdRng::seed_from_u64(12);
            let cfg = LoraConfig {
                rank,
                ..Default::default()
            };
            attach(&mut lm, &cfg, &mut rng);
            // Per adapted linear: rank*(in+out). d_model=16, kv dim=8.
            // q: 16*(16+16)r/8... just check proportionality to rank.
            let count = lora_param_count(&lm);
            assert_eq!(count % rank, 0);
            assert_eq!(count / rank, {
                let mut base_lm = tiny_lm(11);
                let mut rng2 = StdRng::seed_from_u64(12);
                attach(
                    &mut base_lm,
                    &LoraConfig {
                        rank: 1,
                        ..Default::default()
                    },
                    &mut rng2,
                );
                lora_param_count(&base_lm)
            });
        }
    }

    #[test]
    fn target_selection_respected() {
        let mut lm = tiny_lm(13);
        let mut rng = StdRng::seed_from_u64(14);
        attach(
            &mut lm,
            &LoraConfig {
                targets: vec![TargetModule::O],
                ..Default::default()
            },
            &mut rng,
        );
        let names: Vec<String> = lora_params(&lm).into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().all(|n| n.contains(".wo.")), "{names:?}");
        assert_eq!(names.len(), 4); // 2 layers × (A, B)
    }

    #[test]
    fn quantize_frozen_base_close_to_f32_with_exact_adapters() {
        let mut lm = tiny_lm(15);
        let mut rng = StdRng::seed_from_u64(16);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        // Nonzero B so the adapter contributes through the quantized path.
        for (name, p) in lora_params(&lm) {
            if name.ends_with("lora_b") {
                let d: Vec<f32> = (0..p.numel()).map(|i| 0.02 * (i % 5) as f32).collect();
                p.set_data(&d);
            }
        }
        let prev = zg_tensor::set_quantized_inference(false);
        let f32_score = lm.score_continuation(&[1, 2, 5], &[3, 7]);
        zg_tensor::set_quantized_inference(prev);
        let calibrated = quantize_frozen_base(&lm);
        // 2 layers × (q,k,v,o + gate,up,down) + lm_head = 15.
        assert_eq!(calibrated, 15);
        let q_score = lm.score_continuation(&[1, 2, 5], &[3, 7]);
        assert!(
            (q_score - f32_score).abs() < 0.35,
            "quantized log-prob drifted: {q_score} vs {f32_score}"
        );
        dequantize_base(&lm);
        assert!(!lm.is_quantized());
        // Under ZG_QUANT=1 the next no_grad forward would lazily
        // re-calibrate by design, so the restores-f32 check only holds
        // without the env override.
        if !zg_tensor::quant_env_enabled() {
            let back = lm.score_continuation(&[1, 2, 5], &[3, 7]);
            let prev = zg_tensor::set_quantized_inference(false);
            let f32_again = lm.score_continuation(&[1, 2, 5], &[3, 7]);
            zg_tensor::set_quantized_inference(prev);
            assert_eq!(back, f32_again, "dequantize must restore the f32 path");
        }
    }

    #[test]
    #[should_panic(expected = "base weight still trainable")]
    fn quantize_unfrozen_base_panics() {
        let lm = tiny_lm(17);
        quantize_frozen_base(&lm);
    }

    #[test]
    fn scale_is_alpha_over_rank() {
        let cfg = LoraConfig {
            rank: 8,
            alpha: 16.0,
            ..Default::default()
        };
        assert_eq!(cfg.scale(), 2.0);
    }
}
