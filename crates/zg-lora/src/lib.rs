//! # zg-lora
//!
//! Low-Rank Adaptation (LoRA, Hu et al. 2021) for the `zg-model`
//! transformer, matching the paper's fine-tuning recipe (Table 3):
//! rank 8, alpha 16, target modules {query, key, value}.
//!
//! `attach` injects `ΔW = (α/r)·A·B` adapters into the selected attention
//! projections and freezes every base parameter, so that
//! `CausalLm::trainable_params()` returns exactly the adapter matrices —
//! which is also the gradient subspace `zg-influence` uses for TracIn /
//! TracSeq (per-sample gradients of the *trainable* parameters).

mod adapter;

pub use adapter::{
    attach, dequantize_base, detach, lora_param_count, lora_params, merge, quantize_frozen_base,
    LoraConfig, TargetModule,
};
