//! Multi-head self-attention with grouped-query heads (GQA), sliding-window
//! causal masking, RoPE, and an incremental KV cache for decoding — the
//! Mistral attention stack.

use rand::Rng;
use zg_tensor::Tensor;

use crate::layers::Linear;
use crate::rope::RopeCache;

/// Additive attention mask for `t_q` queries attending over `t_kv` keys,
/// where the first `n_cached` keys precede the current chunk. Entry is `0`
/// when key `j` is visible to query `i` (causal and within the sliding
/// window), `-1e9` otherwise.
pub fn attn_mask(t_q: usize, t_kv: usize, n_cached: usize, window: usize) -> Tensor {
    debug_assert_eq!(t_kv, n_cached + t_q);
    let mut m = vec![0.0f32; t_q * t_kv];
    for i in 0..t_q {
        let qpos = n_cached + i;
        for j in 0..t_kv {
            let visible = j <= qpos && qpos < j + window;
            if !visible {
                m[i * t_kv + j] = -1e9;
            }
        }
    }
    Tensor::from_vec(m, [t_q, t_kv])
}

/// Per-layer KV cache holding keys/values of already-processed positions,
/// shape `(1, n_kv_heads, cached_len, head_dim)` each.
///
/// Cloning is cheap: the K/V tensors are `Rc` handles onto immutable
/// buffers, and [`LayerKvCache::append`] replaces them with freshly
/// concatenated tensors rather than mutating in place — so a clone
/// *forks* the cache, and both branches can continue independently.
#[derive(Default, Clone)]
pub struct LayerKvCache {
    k: Option<Tensor>,
    v: Option<Tensor>,
}

impl LayerKvCache {
    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.k.as_ref().map_or(0, |k| k.dims()[2])
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached entries.
    pub fn clear(&mut self) {
        self.k = None;
        self.v = None;
    }

    /// Append new keys/values and return the full concatenated K/V for
    /// this forward pass. The *stored* cache is trimmed to the most
    /// recent `window` positions (the sliding window makes older entries
    /// unreachable for future queries), but the returned tensors keep
    /// every position so that chunked prefill — where early queries in
    /// the chunk still see pre-trim keys — masks rather than drops them.
    fn append(&mut self, k_new: &Tensor, v_new: &Tensor, window: usize) -> (Tensor, Tensor) {
        let (k, v) = match (&self.k, &self.v) {
            (Some(k), Some(v)) => (
                Tensor::concat(&[k.clone(), k_new.clone()], 2),
                Tensor::concat(&[v.clone(), v_new.clone()], 2),
            ),
            _ => (k_new.clone(), v_new.clone()),
        };
        let len = k.dims()[2];
        let (k_keep, v_keep) = if len > window {
            (
                k.narrow(2, len - window, window),
                v.narrow(2, len - window, window),
            )
        } else {
            (k.clone(), v.clone())
        };
        self.k = Some(k_keep.detach());
        self.v = Some(v_keep.detach());
        (k, v)
    }
}

/// Grouped-query attention block.
pub struct Attention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
    sliding_window: usize,
}

impl Attention {
    /// Build projections for the given geometry.
    pub fn new(
        d_model: usize,
        n_heads: usize,
        n_kv_heads: usize,
        sliding_window: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let head_dim = d_model / n_heads;
        Attention {
            wq: Linear::new(d_model, n_heads * head_dim, rng),
            wk: Linear::new(d_model, n_kv_heads * head_dim, rng),
            wv: Linear::new(d_model, n_kv_heads * head_dim, rng),
            wo: Linear::new(n_heads * head_dim, d_model, rng),
            n_heads,
            n_kv_heads,
            head_dim,
            sliding_window,
        }
    }

    /// Mutable access to the q/k/v/o projections — `zg-lora` attaches
    /// adapters through this.
    pub fn projections_mut(&mut self) -> [&mut Linear; 4] {
        [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    /// Immutable access to the q/k/v/o projections.
    pub fn projections(&self) -> [&Linear; 4] {
        [&self.wq, &self.wk, &self.wv, &self.wo]
    }

    /// Forward pass.
    ///
    /// * `x` — `(batch, time, d_model)`
    /// * `rope` — rotary table; positions start at `pos_offset`
    /// * `cache` — when `Some`, keys/values are appended and reused
    ///   (decoding); training passes `None`.
    pub fn forward(
        &self,
        x: &Tensor,
        rope: &RopeCache,
        pos_offset: usize,
        cache: Option<&mut LayerKvCache>,
    ) -> Tensor {
        let dims = x.dims();
        let (b, t, _d) = (dims[0], dims[1], dims[2]);
        if cache.is_some() {
            assert_eq!(b, 1, "KV-cache decoding supports batch size 1");
        }
        let h = self.n_heads;
        let kvh = self.n_kv_heads;
        let hd = self.head_dim;

        // Project and reshape to (B, heads, T, hd).
        let q = self
            .wq
            .forward(x)
            .reshape([b, t, h, hd])
            .permute(&[0, 2, 1, 3]);
        let k = self
            .wk
            .forward(x)
            .reshape([b, t, kvh, hd])
            .permute(&[0, 2, 1, 3]);
        let v = self
            .wv
            .forward(x)
            .reshape([b, t, kvh, hd])
            .permute(&[0, 2, 1, 3]);

        // RoPE at absolute positions.
        let q = rope.apply(&q, pos_offset);
        let k = rope.apply(&k, pos_offset);

        // KV cache append / sliding-window trim.
        let n_cached_before = cache.as_ref().map_or(0, |c| c.len());
        let (k, v) = match cache {
            Some(c) => c.append(&k, &v, self.sliding_window),
            None => (k, v),
        };
        let t_kv = k.dims()[2];

        // Expand KV heads to query heads (GQA groups).
        let groups = h / kvh;
        let expand = |t: &Tensor| -> Tensor {
            if groups == 1 {
                return t.clone();
            }
            t.reshape([b, kvh, 1, t_kv, hd])
                .broadcast_to([b, kvh, groups, t_kv, hd])
                .reshape([b, h, t_kv, hd])
        };
        let k = expand(&k);
        let v = expand(&v);

        // Scaled dot-product with causal sliding-window mask.
        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q.matmul(&k.t()).mul_scalar(scale);
        // `append` returns the untrimmed concatenation, so the key axis
        // always covers exactly the cached prefix plus this chunk; keys
        // outside the sliding window are masked, not dropped.
        let n_cached_now = t_kv - t;
        debug_assert_eq!(n_cached_now, n_cached_before);
        let mask = attn_mask(t, t_kv, n_cached_now, self.sliding_window);
        let probs = scores.add(&mask).softmax();
        let ctx = probs.matmul(&v); // (B, H, T, hd)

        let merged = ctx.permute(&[0, 2, 1, 3]).reshape([b, t, h * hd]);
        self.wo.forward(&merged)
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        out.extend(self.wq.params(&format!("{prefix}.wq")));
        out.extend(self.wk.params(&format!("{prefix}.wk")));
        out.extend(self.wv.params(&format!("{prefix}.wv")));
        out.extend(self.wo.params(&format!("{prefix}.wo")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk_attn(window: usize) -> (Attention, RopeCache) {
        let mut rng = StdRng::seed_from_u64(42);
        let attn = Attention::new(16, 4, 2, window, &mut rng);
        let rope = RopeCache::new(4, 64, 10_000.0);
        (attn, rope)
    }

    #[test]
    fn mask_causal_no_window() {
        let m = attn_mask(3, 3, 0, 100);
        assert_eq!(m.at(&[0, 0]), 0.0);
        assert_eq!(m.at(&[0, 1]), -1e9);
        assert_eq!(m.at(&[2, 0]), 0.0);
        assert_eq!(m.at(&[2, 2]), 0.0);
    }

    #[test]
    fn mask_sliding_window_cuts_old() {
        let m = attn_mask(4, 4, 0, 2);
        // Query 3 sees keys 2..=3 only.
        assert_eq!(m.at(&[3, 0]), -1e9);
        assert_eq!(m.at(&[3, 1]), -1e9);
        assert_eq!(m.at(&[3, 2]), 0.0);
        assert_eq!(m.at(&[3, 3]), 0.0);
    }

    #[test]
    fn mask_with_cached_prefix() {
        let m = attn_mask(1, 5, 4, 100);
        // Single query at position 4 sees everything cached.
        for j in 0..5 {
            assert_eq!(m.at(&[0, j]), 0.0);
        }
    }

    #[test]
    fn forward_shape() {
        let (attn, rope) = mk_attn(64);
        let x = Tensor::ones([2, 5, 16]);
        let y = attn.forward(&x, &rope, 0, None);
        assert_eq!(y.dims(), &[2, 5, 16]);
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let (attn, rope) = mk_attn(64);
        let mut rng = StdRng::seed_from_u64(9);
        let x1 = Tensor::randn([1, 4, 16], 0.0, 1.0, &mut rng);
        // Same first 3 tokens, different 4th.
        let mut d2 = x1.to_vec();
        for v in &mut d2[3 * 16..] {
            *v += 5.0;
        }
        let x2 = Tensor::from_vec(d2, [1, 4, 16]);
        let y1 = attn.forward(&x1, &rope, 0, None);
        let y2 = attn.forward(&x2, &rope, 0, None);
        for t in 0..3 {
            for j in 0..16 {
                assert!(
                    (y1.at(&[0, t, j]) - y2.at(&[0, t, j])).abs() < 1e-5,
                    "position {t} leaked future information"
                );
            }
        }
    }

    #[test]
    fn kv_cache_matches_full_forward() {
        let (attn, rope) = mk_attn(64);
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn([1, 6, 16], 0.0, 1.0, &mut rng);
        let full = attn.forward(&x, &rope, 0, None);
        // Incremental: feed one token at a time through the cache.
        let mut cache = LayerKvCache::default();
        let xd = x.to_vec();
        for t in 0..6 {
            let step = Tensor::from_vec(xd[t * 16..(t + 1) * 16].to_vec(), [1, 1, 16]);
            let y = attn.forward(&step, &rope, t, Some(&mut cache));
            for j in 0..16 {
                assert!(
                    (y.at(&[0, 0, j]) - full.at(&[0, t, j])).abs() < 1e-4,
                    "token {t} dim {j} mismatch"
                );
            }
        }
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn kv_cache_window_trims() {
        let (attn, rope) = mk_attn(3);
        let mut cache = LayerKvCache::default();
        for t in 0..5 {
            let step = Tensor::ones([1, 1, 16]);
            attn.forward(&step, &rope, t, Some(&mut cache));
        }
        assert_eq!(cache.len(), 3, "cache must trim to the window");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn gradients_flow_through_attention() {
        let (attn, rope) = mk_attn(64);
        let x = Tensor::param(vec![0.1; 2 * 3 * 16], [2, 3, 16]);
        attn.forward(&x, &rope, 0, None).sum().backward();
        assert!(x.grad().is_some());
        for (_, p) in attn.params("a") {
            assert!(p.grad().is_some(), "all projections receive grads");
        }
    }

    #[test]
    fn params_enumerated() {
        let (attn, _) = mk_attn(8);
        let names: Vec<String> = attn.params("l0").into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"l0.wq.weight".to_string()));
        assert_eq!(names.len(), 4);
    }
}
