//! Beam-search decoding: length-normalized log-probability search over
//! `beam_width` hypotheses. Deterministic — useful when the answer must be
//! the model's single best sequence rather than a sample.

use crate::lm::CausalLm;

/// A finished or in-flight hypothesis.
#[derive(Debug, Clone)]
struct Hypothesis {
    tokens: Vec<u32>,
    log_prob: f32,
    finished: bool,
}

impl Hypothesis {
    /// Length-normalized score (avoids the short-sequence bias).
    fn score(&self, alpha: f32) -> f32 {
        self.log_prob / (self.tokens.len().max(1) as f32).powf(alpha)
    }
}

/// Beam-search continuation of `prompt`.
///
/// Returns the best continuation (new tokens only). `alpha` is the length
/// normalization exponent (0 = none, 1 = full mean log-prob).
pub fn beam_search(
    lm: &CausalLm,
    prompt: &[u32],
    max_new: usize,
    beam_width: usize,
    alpha: f32,
    eos: u32,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    assert!(beam_width >= 1, "beam width must be >= 1");
    zg_tensor::no_grad(|| {
        let mut beams = vec![Hypothesis {
            tokens: Vec::new(),
            log_prob: 0.0,
            finished: false,
        }];
        for _ in 0..max_new {
            let mut candidates: Vec<Hypothesis> = Vec::new();
            for beam in &beams {
                if beam.finished {
                    candidates.push(beam.clone());
                    continue;
                }
                // Re-run the full prefix. A per-beam KV cache would be the
                // production optimization; answer spans here are ≤ 8
                // tokens so the simple version is fine.
                let mut seq = prompt.to_vec();
                seq.extend(&beam.tokens);
                let t = seq.len();
                let logits = lm.forward(&seq, 1, t);
                let v = lm.cfg.vocab_size;
                let logp = logits.reshape([t, v]).log_softmax();
                let row = &logp.data()[(t - 1) * v..t * v];
                // Expand with the top `beam_width` next tokens.
                let mut order: Vec<usize> = (0..v).collect();
                // INVARIANT: log-probabilities are finite (log_softmax of finite logits).
                order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite"));
                for &tok in order.iter().take(beam_width) {
                    let mut h = beam.clone();
                    h.log_prob += row[tok];
                    if tok as u32 == eos {
                        h.finished = true;
                    } else {
                        h.tokens.push(tok as u32);
                    }
                    candidates.push(h);
                }
            }
            candidates.sort_by(|a, b| {
                b.score(alpha)
                    .partial_cmp(&a.score(alpha))
                    // INVARIANT: beam scores are finite length-normalized log-probabilities.
                    .expect("finite scores")
            });
            candidates.truncate(beam_width);
            let all_done = candidates.iter().all(|h| h.finished);
            beams = candidates;
            if all_done {
                break;
            }
        }
        beams
            .into_iter()
            .max_by(|a, b| {
                a.score(alpha)
                    .partial_cmp(&b.score(alpha))
                    // INVARIANT: beam scores are finite length-normalized log-probabilities.
                    .expect("finite scores")
            })
            .map(|h| h.tokens)
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lm() -> CausalLm {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = ModelConfig::mistral_miniature(20);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        CausalLm::new(cfg, &mut rng)
    }

    #[test]
    fn beam_one_equals_greedy() {
        let lm = tiny_lm();
        let mut rng = StdRng::seed_from_u64(1);
        let greedy = lm.generate(&[1, 2, 3], 5, 0.0, 2, &mut rng);
        let beam = beam_search(&lm, &[1, 2, 3], 5, 1, 0.0, 2);
        assert_eq!(greedy, beam);
    }

    #[test]
    fn wider_beam_never_scores_worse() {
        let lm = tiny_lm();
        let prompt = [1u32, 4, 9];
        let seq_score = |toks: &[u32]| -> f32 {
            if toks.is_empty() {
                return 0.0;
            }
            lm.score_continuation(&prompt, toks)
        };
        let narrow = beam_search(&lm, &prompt, 4, 1, 0.0, 2);
        let wide = beam_search(&lm, &prompt, 4, 4, 0.0, 2);
        // With no length normalization and equal lengths, the wider beam's
        // total log-prob must be at least the greedy one's.
        if narrow.len() == wide.len() && !narrow.is_empty() {
            assert!(seq_score(&wide) >= seq_score(&narrow) - 1e-4);
        }
    }

    #[test]
    fn respects_max_new() {
        let lm = tiny_lm();
        let out = beam_search(&lm, &[1, 2], 3, 2, 0.6, 2);
        assert!(out.len() <= 3);
    }

    #[test]
    fn deterministic() {
        let lm = tiny_lm();
        let a = beam_search(&lm, &[3, 1], 4, 3, 0.6, 2);
        let b = beam_search(&lm, &[3, 1], 4, 3, 0.6, 2);
        assert_eq!(a, b);
    }
}
