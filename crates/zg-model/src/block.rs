//! A pre-norm transformer block: `x + attn(norm(x))` then `x + mlp(norm(x))`.

use rand::Rng;
use zg_tensor::Tensor;

use crate::attention::{Attention, LayerKvCache};
use crate::config::ModelConfig;
use crate::layers::RmsNorm;
use crate::mlp::SwiGluMlp;
use crate::rope::RopeCache;

/// One decoder layer.
pub struct TransformerBlock {
    /// Norm before attention.
    pub attn_norm: RmsNorm,
    /// Grouped-query attention.
    pub attn: Attention,
    /// Norm before the MLP.
    pub mlp_norm: RmsNorm,
    /// SwiGLU feed-forward.
    pub mlp: SwiGluMlp,
}

impl TransformerBlock {
    /// Build a block per `cfg`.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        TransformerBlock {
            attn_norm: RmsNorm::new(cfg.d_model, cfg.rms_eps),
            attn: Attention::new(
                cfg.d_model,
                cfg.n_heads,
                cfg.n_kv_heads,
                cfg.sliding_window,
                rng,
            ),
            mlp_norm: RmsNorm::new(cfg.d_model, cfg.rms_eps),
            mlp: SwiGluMlp::new(cfg.d_model, cfg.d_ff, rng),
        }
    }

    /// Forward with residual connections.
    pub fn forward(
        &self,
        x: &Tensor,
        rope: &RopeCache,
        pos_offset: usize,
        cache: Option<&mut LayerKvCache>,
    ) -> Tensor {
        let h = x.add(
            &self
                .attn
                .forward(&self.attn_norm.forward(x), rope, pos_offset, cache),
        );
        h.add(&self.mlp.forward(&self.mlp_norm.forward(&h)))
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        out.extend(self.attn_norm.params(&format!("{prefix}.attn_norm")));
        out.extend(self.attn.params(&format!("{prefix}.attn")));
        out.extend(self.mlp_norm.params(&format!("{prefix}.mlp_norm")));
        out.extend(self.mlp.params(&format!("{prefix}.mlp")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_shape_and_flows_grads() {
        let cfg = ModelConfig::mistral_miniature(64);
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(&cfg, &mut rng);
        let rope = RopeCache::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        let x = Tensor::param(vec![0.1; 2 * 4 * cfg.d_model], [2, 4, cfg.d_model]);
        let y = block.forward(&x, &rope, 0, None);
        assert_eq!(y.dims(), x.dims());
        y.sum().backward();
        assert!(x.grad().is_some());
    }

    #[test]
    fn residual_identity_path() {
        // Residual connections mean output != 0 even where sublayers output
        // something tiny; check the input signal survives.
        let cfg = ModelConfig::mistral_miniature(64);
        let mut rng = StdRng::seed_from_u64(1);
        let block = TransformerBlock::new(&cfg, &mut rng);
        let rope = RopeCache::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        let x = Tensor::full([1, 2, cfg.d_model], 3.0);
        let y = block.forward(&x, &rope, 0, None);
        let my: f32 = y.to_vec().iter().sum::<f32>() / y.numel() as f32;
        assert!(my.abs() > 0.5, "residual signal lost: mean {my}");
    }

    #[test]
    fn param_naming_is_hierarchical() {
        let cfg = ModelConfig::mistral_miniature(64);
        let mut rng = StdRng::seed_from_u64(2);
        let block = TransformerBlock::new(&cfg, &mut rng);
        let names: Vec<String> = block.params("l3").into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n == "l3.attn.wq.weight"));
        assert!(names.iter().any(|n| n == "l3.mlp.gate.weight"));
        assert!(names.iter().any(|n| n == "l3.attn_norm.gain"));
    }
}
