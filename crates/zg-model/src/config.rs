//! Model hyperparameters. The defaults mirror Mistral 7B's *architecture
//! choices* (Table 3 of the paper: RMSNorm, SiLU, RoPE, grouped-query
//! attention, sliding-window attention) at a laptop-trainable scale.

use serde::{Deserialize, Serialize};

/// Configuration of a decoder-only causal LM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size (from the tokenizer).
    pub vocab_size: usize,
    /// Hidden dimension (`d_model`). Mistral 7B: 4096.
    pub d_model: usize,
    /// Number of transformer blocks. Mistral 7B: 32.
    pub n_layers: usize,
    /// Number of attention (query) heads. Mistral 7B: 32.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention). Mistral 7B: 8.
    pub n_kv_heads: usize,
    /// Feed-forward inner dimension. Mistral 7B: 14336.
    pub d_ff: usize,
    /// Maximum sequence length (context). Paper Table 3: 4096.
    pub max_seq_len: usize,
    /// Sliding-window attention width. Mistral 7B: 4096.
    pub sliding_window: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub rms_eps: f32,
}

impl ModelConfig {
    /// Miniature Mistral-style config used throughout the reproduction:
    /// same architectural shape (GQA 4:1, SwiGLU, sliding window), scaled
    /// to CPU-trainable size.
    pub fn mistral_miniature(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            d_model: 64,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            d_ff: 128,
            max_seq_len: 256,
            sliding_window: 128,
            rope_theta: 10_000.0,
            rms_eps: 1e-5,
        }
    }

    /// A slightly larger config for the headline Table 2 run.
    pub fn mistral_small(vocab_size: usize) -> Self {
        ModelConfig {
            d_model: 96,
            n_layers: 3,
            n_heads: 6,
            n_kv_heads: 2,
            d_ff: 192,
            ..Self::mistral_miniature(vocab_size)
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Query heads per KV head (GQA group size).
    pub fn kv_groups(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Validate internal consistency; panics with a clear message otherwise.
    pub fn validate(&self) {
        assert!(self.vocab_size > 0, "vocab_size must be positive");
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model {} not divisible by n_heads {}",
            self.d_model,
            self.n_heads
        );
        assert_eq!(
            self.n_heads % self.n_kv_heads,
            0,
            "n_heads {} not divisible by n_kv_heads {}",
            self.n_heads,
            self.n_kv_heads
        );
        assert!(self.sliding_window >= 1, "sliding window must be >= 1");
        assert!(self.max_seq_len >= 2, "max_seq_len too small");
    }

    /// Approximate parameter count of the dense model.
    pub fn param_count(&self) -> usize {
        let emb = self.vocab_size * self.d_model;
        let attn = self.d_model * self.d_model // q
            + 2 * self.d_model * (self.n_kv_heads * self.head_dim()) // k, v
            + self.d_model * self.d_model; // o
        let mlp = 3 * self.d_model * self.d_ff;
        let norms = 2 * self.d_model;
        emb + self.n_layers * (attn + mlp + norms) + self.d_model + emb // final norm + lm head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_is_valid() {
        let c = ModelConfig::mistral_miniature(300);
        c.validate();
        assert_eq!(c.head_dim(), 16);
        assert_eq!(c.kv_groups(), 2);
    }

    #[test]
    fn small_is_valid() {
        ModelConfig::mistral_small(300).validate();
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn invalid_heads_panics() {
        let mut c = ModelConfig::mistral_miniature(300);
        c.n_heads = 3;
        c.validate();
    }

    #[test]
    fn param_count_reasonable() {
        let c = ModelConfig::mistral_miniature(300);
        let n = c.param_count();
        assert!(n > 10_000 && n < 1_000_000, "param count {n}");
    }

    #[test]
    fn serde_roundtrip() {
        let c = ModelConfig::mistral_miniature(300);
        let json = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
