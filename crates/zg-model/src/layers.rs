//! Basic building blocks: linear projection (with optional LoRA adapter
//! slot), token embedding, and RMSNorm.

use std::cell::RefCell;

use rand::Rng;
use zg_tensor::{grad_enabled, no_grad, quant_env_enabled, quantized_inference, Tensor};

/// A LoRA adapter attached to a [`Linear`]: `y += scale · (x·A)·B`.
///
/// The adapter *slot* lives here so attention code is adapter-agnostic;
/// construction, freezing policy, and merging live in the `zg-lora` crate.
#[derive(Clone)]
pub struct Adapter {
    /// Down-projection, shape `(in_features, rank)`.
    pub a: Tensor,
    /// Up-projection, shape `(rank, out_features)`.
    pub b: Tensor,
    /// `alpha / rank` scaling.
    pub scale: f32,
}

/// An int8 calibration of a [`Linear`] base weight: per-output-channel
/// absmax scales over the frozen `(in, out)` matrix, pinned to the
/// [`Tensor::data_version`] it was computed from so weight mutation
/// (merges, optimizer steps after unfreezing) invalidates it.
pub struct QuantizedLinear {
    /// Packed int8 weight with per-column scales.
    pub qweight: zg_tensor::QuantizedMatrix,
    /// `weight.data_version()` at calibration time.
    pub weight_version: u64,
}

impl QuantizedLinear {
    /// Calibrate `weight` (shape `(in, out)`) with per-output-channel
    /// absmax quantization.
    pub fn calibrate(weight: &Tensor) -> Self {
        let dims = weight.dims();
        assert_eq!(dims.len(), 2, "quantized weight must be 2-D");
        let q = zg_tensor::QuantizedMatrix::quantize(&weight.data(), dims[0], dims[1]);
        QuantizedLinear {
            qweight: q,
            weight_version: weight.data_version(),
        }
    }
}

/// Dense linear layer `y = x·W + b`, weight shape `(in, out)`.
pub struct Linear {
    /// Weight matrix `(in_features, out_features)`.
    pub weight: Tensor,
    /// Optional bias `(out_features,)`.
    pub bias: Option<Tensor>,
    /// Optional LoRA adapter applied additively.
    pub adapter: Option<Adapter>,
    /// int8 calibration of the frozen base weight, when enabled.
    quant: RefCell<Option<QuantizedLinear>>,
}

impl Linear {
    /// Xavier-initialized linear layer without bias (transformer default).
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = Tensor::xavier_uniform(in_features, out_features, rng);
        weight.set_requires_grad(true);
        Linear {
            weight,
            bias: None,
            adapter: None,
            quant: RefCell::new(None),
        }
    }

    /// Linear layer with a zero-initialized bias.
    pub fn with_bias(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let mut l = Self::new(in_features, out_features, rng);
        l.bias = Some(Tensor::param(vec![0.0; out_features], [out_features]));
        l
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Apply the layer: `x (…, in) -> (…, out)`, plus the adapter path when
    /// one is attached. Inside `no_grad` scopes with an int8 calibration
    /// present (or auto-calibrated under `ZG_QUANT=1`), dispatches to
    /// [`Linear::forward_quantized`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if let Some(y) = self.try_forward_quantized(x) {
            return y;
        }
        let mut y = x.matmul(&self.weight);
        if let Some(ad) = &self.adapter {
            let delta = x.matmul(&ad.a).matmul(&ad.b).mul_scalar(ad.scale);
            y = y.add(&delta);
        }
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Calibrate (`on = true`) or drop (`on = false`) the int8 copy of the
    /// base weight. Calibration only applies to *frozen* bases
    /// (`!weight.requires_grad()`) — trainable weights keep the exact f32
    /// path; returns whether a calibration is now present.
    pub fn set_quantized(&self, on: bool) -> bool {
        if !on || self.weight.requires_grad() {
            *self.quant.borrow_mut() = None;
            return false;
        }
        *self.quant.borrow_mut() = Some(QuantizedLinear::calibrate(&self.weight));
        true
    }

    /// Whether an int8 calibration is currently attached.
    pub fn is_quantized(&self) -> bool {
        self.quant.borrow().is_some()
    }

    /// The quantized dispatch gate: engages only under `no_grad`, with the
    /// thread knob on, and with a fresh calibration (recalibrating when the
    /// weight mutated since; lazily calibrating frozen weights under
    /// `ZG_QUANT=1`).
    fn try_forward_quantized(&self, x: &Tensor) -> Option<Tensor> {
        if grad_enabled() || !quantized_inference() {
            return None;
        }
        let stale = match self.quant.borrow().as_ref() {
            Some(q) => q.weight_version != self.weight.data_version(),
            None => {
                if !quant_env_enabled() || self.weight.requires_grad() {
                    return None;
                }
                true
            }
        };
        if stale && !self.set_quantized(true) {
            return None;
        }
        Some(self.forward_quantized(x))
    }

    /// int8 base GEMM + exact f32 LoRA delta + bias. Inference-only:
    /// always runs under `no_grad` and never records tape nodes.
    pub fn forward_quantized(&self, x: &Tensor) -> Tensor {
        no_grad(|| {
            let quant = self.quant.borrow();
            // INVARIANT: callers reach this through try_forward_quantized
            // (which calibrates) or after set_quantized(true) succeeded.
            let quant = quant.as_ref().expect("quantized calibration present");
            let dims = x.dims();
            // INVARIANT: tensors always have at least one axis.
            let k = *dims.last().expect("linear input must have a feature axis");
            assert_eq!(k, quant.qweight.k(), "feature dim mismatch");
            let m = x.numel() / k;
            let n = quant.qweight.n();
            let mut out = vec![0.0f32; m * n];
            quant.qweight.matmul_into(&x.data(), m, &mut out);
            let mut out_dims = dims[..dims.len() - 1].to_vec();
            out_dims.push(n);
            let mut y = Tensor::from_vec(out, out_dims);
            if let Some(ad) = &self.adapter {
                let delta = x.matmul(&ad.a).matmul(&ad.b).mul_scalar(ad.scale);
                y = y.add(&delta);
            }
            match &self.bias {
                Some(b) => y.add(b),
                None => y,
            }
        })
    }

    /// Named parameters (prefixed), including adapter parameters when present.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = vec![(format!("{prefix}.weight"), self.weight.clone())];
        if let Some(b) = &self.bias {
            out.push((format!("{prefix}.bias"), b.clone()));
        }
        if let Some(ad) = &self.adapter {
            out.push((format!("{prefix}.lora_a"), ad.a.clone()));
            out.push((format!("{prefix}.lora_b"), ad.b.clone()));
        }
        out
    }
}

/// Token embedding table, shape `(vocab, d_model)`.
pub struct Embedding {
    /// The embedding matrix.
    pub weight: Tensor,
}

impl Embedding {
    /// Normal(0, 0.02) initialization, the usual LM choice.
    pub fn new(vocab: usize, d_model: usize, rng: &mut impl Rng) -> Self {
        let weight = Tensor::randn([vocab, d_model], 0.0, 0.02, rng);
        weight.set_requires_grad(true);
        Embedding { weight }
    }

    /// Look up `ids` (flattened) and reshape to `(batch, time, d_model)`.
    pub fn forward(&self, ids: &[u32], batch: usize, time: usize) -> Tensor {
        assert_eq!(ids.len(), batch * time, "ids length mismatch");
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let d = self.weight.dims()[1];
        self.weight.index_select0(&idx).reshape([batch, time, d])
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        vec![(format!("{prefix}.weight"), self.weight.clone())]
    }
}

/// Root-mean-square layer norm (no mean subtraction), as in Llama/Mistral:
/// `y = x / rms(x) * g`.
pub struct RmsNorm {
    /// Learned gain, shape `(d_model,)`.
    pub gain: Tensor,
    /// Stabilizing epsilon.
    pub eps: f32,
}

impl RmsNorm {
    /// Gain initialized to ones.
    pub fn new(d_model: usize, eps: f32) -> Self {
        RmsNorm {
            gain: Tensor::param(vec![1.0; d_model], [d_model]),
            eps,
        }
    }

    /// Normalize over the last axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let ms = x.square().mean_axis(-1, true).add_scalar(self.eps);
        x.mul(&ms.rsqrt()).mul(&self.gain)
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        vec![(format!("{prefix}.gain"), self.gain.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::with_bias(4, 3, &mut rng);
        let x = Tensor::ones([2, 5, 4]);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[2, 5, 3]);
        assert_eq!(l.params("l").len(), 2);
    }

    #[test]
    fn linear_adapter_path_adds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(4, 4, &mut rng);
        let x = Tensor::ones([1, 4]);
        let base = l.forward(&x).to_vec();
        // Identity-ish adapter: A picks feature 0, B writes 10 to output 0.
        let a = Tensor::param(vec![1.0, 0.0, 0.0, 0.0], [4, 1]);
        let b = Tensor::param(vec![10.0, 0.0, 0.0, 0.0], [1, 4]);
        l.adapter = Some(Adapter { a, b, scale: 1.0 });
        let with = l.forward(&x).to_vec();
        assert!((with[0] - base[0] - 10.0).abs() < 1e-5);
        assert!((with[1] - base[1]).abs() < 1e-5);
        assert_eq!(l.params("l").len(), 3); // weight + lora_a + lora_b
    }

    #[test]
    fn quantized_linear_close_to_f32_and_adapter_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::with_bias(16, 24, &mut rng);
        let a = Tensor::from_vec(vec![0.1; 16], [16, 1]);
        let b = Tensor::from_vec(vec![0.2; 24], [1, 24]);
        l.adapter = Some(Adapter { a, b, scale: 0.5 });
        l.weight.set_requires_grad(false); // frozen base
        let x = Tensor::randn([3, 16], 0.0, 1.0, &mut rng);
        // Pin the knob off for the f32 baseline so the test also holds
        // under a ZG_QUANT=1 environment (lazy auto-calibration).
        let prev = zg_tensor::set_quantized_inference(false);
        let f32_out = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        zg_tensor::set_quantized_inference(prev);
        assert!(l.set_quantized(true));
        assert!(l.is_quantized());
        let q_out = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        let denom = f32_out.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        for (qv, fv) in q_out.iter().zip(&f32_out) {
            let rel = (qv - fv).abs() / denom;
            assert!(rel < 0.05, "quantized output drifted: {qv} vs {fv}");
        }
        // Outside no_grad the exact f32 path still runs (bit-identical).
        let grad_out = l.forward(&x).to_vec();
        assert_eq!(grad_out, f32_out, "grad-mode forward must stay exact f32");
    }

    #[test]
    fn quantized_linear_respects_knob_and_freeze() {
        let mut rng = StdRng::seed_from_u64(8);
        let l = Linear::new(8, 8, &mut rng);
        // Trainable weight: calibration refused.
        assert!(!l.set_quantized(true));
        assert!(!l.is_quantized());
        l.weight.set_requires_grad(false);
        assert!(l.set_quantized(true));
        let x = Tensor::ones([2, 8]);
        let q_out = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        // Knob off: exact f32 even with a calibration attached.
        let prev = zg_tensor::set_quantized_inference(false);
        let f32_out = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        zg_tensor::set_quantized_inference(prev);
        let exact = zg_tensor::no_grad(|| {
            let mut y = x.matmul(&l.weight);
            if let Some(b) = &l.bias {
                y = y.add(b);
            }
            y.to_vec()
        });
        assert_eq!(f32_out, exact);
        assert_ne!(q_out, exact, "int8 path should actually differ slightly");
    }

    #[test]
    fn quantized_linear_recalibrates_after_weight_mutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Linear::new(6, 6, &mut rng);
        l.weight.set_requires_grad(false);
        assert!(l.set_quantized(true));
        let x = Tensor::ones([1, 6]);
        let before = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        // Mutate the weight: the stale calibration must not be used.
        let doubled: Vec<f32> = l.weight.data().iter().map(|v| v * 2.0).collect();
        l.weight.set_data(&doubled);
        let after = zg_tensor::no_grad(|| l.forward(&x).to_vec());
        for (a, b) in after.iter().zip(&before) {
            assert!(
                (a - 2.0 * b).abs() < 2e-2 * b.abs().max(1.0),
                "recalibration missed: {a} vs 2·{b}"
            );
        }
    }

    #[test]
    fn embedding_lookup_shape_and_grad() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Embedding::new(10, 4, &mut rng);
        let y = e.forward(&[1, 2, 1, 0, 3, 9], 2, 3);
        assert_eq!(y.dims(), &[2, 3, 4]);
        y.sum().backward();
        let g = e.weight.grad().unwrap();
        // Row 1 used twice -> grad 2 per column.
        assert!((g[4] - 2.0).abs() < 1e-6);
        // Row 5 unused -> zero grad.
        assert!(g[5 * 4..6 * 4].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let n = RmsNorm::new(4, 1e-6);
        let x = Tensor::from_vec(vec![2.0, -2.0, 2.0, -2.0, 0.1, 0.1, 0.1, 0.1], [2, 4]);
        let y = n.forward(&x);
        for row in 0..2 {
            let vals: Vec<f32> = (0..4).map(|j| y.at(&[row, j])).collect();
            let rms = (vals.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "row {row} rms {rms}");
        }
    }

    #[test]
    fn rmsnorm_gain_scales() {
        let n = RmsNorm::new(2, 1e-6);
        n.gain.set_data(&[2.0, 0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let y = n.forward(&x).to_vec();
        assert!((y[0] / y[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn rmsnorm_backward_flows() {
        let n = RmsNorm::new(3, 1e-6);
        let x = Tensor::param(vec![1.0, 2.0, 3.0], [1, 3]);
        n.forward(&x).sum().backward();
        assert!(x.grad().is_some());
        assert!(n.gain.grad().is_some());
    }
}
