//! Basic building blocks: linear projection (with optional LoRA adapter
//! slot), token embedding, and RMSNorm.

use rand::Rng;
use zg_tensor::Tensor;

/// A LoRA adapter attached to a [`Linear`]: `y += scale · (x·A)·B`.
///
/// The adapter *slot* lives here so attention code is adapter-agnostic;
/// construction, freezing policy, and merging live in the `zg-lora` crate.
#[derive(Clone)]
pub struct Adapter {
    /// Down-projection, shape `(in_features, rank)`.
    pub a: Tensor,
    /// Up-projection, shape `(rank, out_features)`.
    pub b: Tensor,
    /// `alpha / rank` scaling.
    pub scale: f32,
}

/// Dense linear layer `y = x·W + b`, weight shape `(in, out)`.
pub struct Linear {
    /// Weight matrix `(in_features, out_features)`.
    pub weight: Tensor,
    /// Optional bias `(out_features,)`.
    pub bias: Option<Tensor>,
    /// Optional LoRA adapter applied additively.
    pub adapter: Option<Adapter>,
}

impl Linear {
    /// Xavier-initialized linear layer without bias (transformer default).
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = Tensor::xavier_uniform(in_features, out_features, rng);
        weight.set_requires_grad(true);
        Linear {
            weight,
            bias: None,
            adapter: None,
        }
    }

    /// Linear layer with a zero-initialized bias.
    pub fn with_bias(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let mut l = Self::new(in_features, out_features, rng);
        l.bias = Some(Tensor::param(vec![0.0; out_features], [out_features]));
        l
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Apply the layer: `x (…, in) -> (…, out)`, plus the adapter path when
    /// one is attached.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.weight);
        if let Some(ad) = &self.adapter {
            let delta = x.matmul(&ad.a).matmul(&ad.b).mul_scalar(ad.scale);
            y = y.add(&delta);
        }
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Named parameters (prefixed), including adapter parameters when present.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = vec![(format!("{prefix}.weight"), self.weight.clone())];
        if let Some(b) = &self.bias {
            out.push((format!("{prefix}.bias"), b.clone()));
        }
        if let Some(ad) = &self.adapter {
            out.push((format!("{prefix}.lora_a"), ad.a.clone()));
            out.push((format!("{prefix}.lora_b"), ad.b.clone()));
        }
        out
    }
}

/// Token embedding table, shape `(vocab, d_model)`.
pub struct Embedding {
    /// The embedding matrix.
    pub weight: Tensor,
}

impl Embedding {
    /// Normal(0, 0.02) initialization, the usual LM choice.
    pub fn new(vocab: usize, d_model: usize, rng: &mut impl Rng) -> Self {
        let weight = Tensor::randn([vocab, d_model], 0.0, 0.02, rng);
        weight.set_requires_grad(true);
        Embedding { weight }
    }

    /// Look up `ids` (flattened) and reshape to `(batch, time, d_model)`.
    pub fn forward(&self, ids: &[u32], batch: usize, time: usize) -> Tensor {
        assert_eq!(ids.len(), batch * time, "ids length mismatch");
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let d = self.weight.dims()[1];
        self.weight.index_select0(&idx).reshape([batch, time, d])
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        vec![(format!("{prefix}.weight"), self.weight.clone())]
    }
}

/// Root-mean-square layer norm (no mean subtraction), as in Llama/Mistral:
/// `y = x / rms(x) * g`.
pub struct RmsNorm {
    /// Learned gain, shape `(d_model,)`.
    pub gain: Tensor,
    /// Stabilizing epsilon.
    pub eps: f32,
}

impl RmsNorm {
    /// Gain initialized to ones.
    pub fn new(d_model: usize, eps: f32) -> Self {
        RmsNorm {
            gain: Tensor::param(vec![1.0; d_model], [d_model]),
            eps,
        }
    }

    /// Normalize over the last axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let ms = x.square().mean_axis(-1, true).add_scalar(self.eps);
        x.mul(&ms.rsqrt()).mul(&self.gain)
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        vec![(format!("{prefix}.gain"), self.gain.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::with_bias(4, 3, &mut rng);
        let x = Tensor::ones([2, 5, 4]);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[2, 5, 3]);
        assert_eq!(l.params("l").len(), 2);
    }

    #[test]
    fn linear_adapter_path_adds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(4, 4, &mut rng);
        let x = Tensor::ones([1, 4]);
        let base = l.forward(&x).to_vec();
        // Identity-ish adapter: A picks feature 0, B writes 10 to output 0.
        let a = Tensor::param(vec![1.0, 0.0, 0.0, 0.0], [4, 1]);
        let b = Tensor::param(vec![10.0, 0.0, 0.0, 0.0], [1, 4]);
        l.adapter = Some(Adapter { a, b, scale: 1.0 });
        let with = l.forward(&x).to_vec();
        assert!((with[0] - base[0] - 10.0).abs() < 1e-5);
        assert!((with[1] - base[1]).abs() < 1e-5);
        assert_eq!(l.params("l").len(), 3); // weight + lora_a + lora_b
    }

    #[test]
    fn embedding_lookup_shape_and_grad() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Embedding::new(10, 4, &mut rng);
        let y = e.forward(&[1, 2, 1, 0, 3, 9], 2, 3);
        assert_eq!(y.dims(), &[2, 3, 4]);
        y.sum().backward();
        let g = e.weight.grad().unwrap();
        // Row 1 used twice -> grad 2 per column.
        assert!((g[4] - 2.0).abs() < 1e-6);
        // Row 5 unused -> zero grad.
        assert!(g[5 * 4..6 * 4].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let n = RmsNorm::new(4, 1e-6);
        let x = Tensor::from_vec(vec![2.0, -2.0, 2.0, -2.0, 0.1, 0.1, 0.1, 0.1], [2, 4]);
        let y = n.forward(&x);
        for row in 0..2 {
            let vals: Vec<f32> = (0..4).map(|j| y.at(&[row, j])).collect();
            let rms = (vals.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "row {row} rms {rms}");
        }
    }

    #[test]
    fn rmsnorm_gain_scales() {
        let n = RmsNorm::new(2, 1e-6);
        n.gain.set_data(&[2.0, 0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let y = n.forward(&x).to_vec();
        assert!((y[0] / y[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn rmsnorm_backward_flows() {
        let n = RmsNorm::new(3, 1e-6);
        let x = Tensor::param(vec![1.0, 2.0, 3.0], [1, 3]);
        n.forward(&x).sum().backward();
        assert!(x.grad().is_some());
        assert!(n.gain.grad().is_some());
    }
}
