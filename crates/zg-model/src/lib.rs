//! # zg-model
//!
//! A from-scratch, Mistral-style decoder-only transformer on the
//! `zg-tensor` autograd engine: RMSNorm, rotary position embeddings,
//! grouped-query attention with sliding-window causal masking, SwiGLU MLP,
//! KV-cache decoding, AdamW with cosine decay, and `ZGT1` checkpointing.
//!
//! This is the substrate standing in for Mistral 7B in the ZiGong
//! reproduction (see DESIGN.md §2 for the substitution argument): every
//! architectural mechanism from the paper's Table 3 is present, scaled to
//! CPU-trainable size.

mod attention;
mod beam;
mod block;
mod config;
mod layers;
mod lm;
mod mlp;
mod optim;
mod prefix;
mod rope;
mod sampling;
mod spec;

pub use attention::{attn_mask, Attention, LayerKvCache};
pub use beam::beam_search;
pub use block::TransformerBlock;
pub use config::ModelConfig;
pub use layers::{Adapter, Embedding, Linear, QuantizedLinear, RmsNorm};
pub use lm::{log_prob_row, sample_logits, CausalLm, KvCache};
pub use mlp::SwiGluMlp;
pub use optim::{clip_grad_norm, AdamW, CosineSchedule};
pub use prefix::{PrefixBlock, PrefixPool, PrefixStats};
pub use rope::RopeCache;
pub use sampling::{sample_filtered, SamplingConfig};
pub use spec::LmSpec;
