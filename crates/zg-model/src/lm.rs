//! The decoder-only causal language model: embedding, N transformer
//! blocks, final RMSNorm, LM head — plus training loss, generation with a
//! KV cache, and continuation scoring (used for answer selection and for
//! the probability scores behind the KS metric).

use rand::Rng;
use zg_tensor::{no_grad, GraphLeakGuard, Tensor, TensorStore};

use crate::attention::LayerKvCache;
use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::layers::{Embedding, Linear, RmsNorm};
use crate::rope::RopeCache;

/// Per-layer KV caches for one decoding session.
pub struct KvCache {
    layers: Vec<LayerKvCache>,
    /// Absolute position of the next token to be fed.
    pub pos: usize,
}

impl KvCache {
    fn new(n_layers: usize) -> Self {
        KvCache {
            layers: (0..n_layers).map(|_| LayerKvCache::default()).collect(),
            pos: 0,
        }
    }

    /// Fork the cache at its current position. The per-layer K/V tensors
    /// are `Rc` handles onto immutable buffers, so this is a cheap
    /// pointer-copy per layer; the fork and the original then extend
    /// independently. This is what lets one prompt prefill serve many
    /// candidate continuations.
    pub fn fork(&self) -> KvCache {
        zg_trace::counter_add("model.kv_forks", 1.0);
        KvCache {
            layers: self.layers.clone(),
            pos: self.pos,
        }
    }
}

/// Mistral-style causal LM.
pub struct CausalLm {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Token embedding.
    pub embed: Embedding,
    /// Decoder layers.
    pub blocks: Vec<TransformerBlock>,
    /// Final norm before the head.
    pub final_norm: RmsNorm,
    /// LM head projecting to vocabulary logits.
    pub lm_head: Linear,
    rope: RopeCache,
}

impl CausalLm {
    /// Initialize a model from `cfg` with the given RNG.
    pub fn new(cfg: ModelConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        let blocks = (0..cfg.n_layers)
            .map(|_| TransformerBlock::new(&cfg, rng))
            .collect();
        let rope = RopeCache::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        CausalLm {
            embed: Embedding::new(cfg.vocab_size, cfg.d_model, rng),
            blocks,
            final_norm: RmsNorm::new(cfg.d_model, cfg.rms_eps),
            lm_head: Linear::new(cfg.d_model, cfg.vocab_size, rng),
            rope,
            cfg,
        }
    }

    /// Fresh KV cache for decoding.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.cfg.n_layers)
    }

    /// Forward over a `(batch, time)` grid of token ids -> logits
    /// `(batch, time, vocab)`.
    pub fn forward(&self, tokens: &[u32], batch: usize, time: usize) -> Tensor {
        assert!(
            time <= self.cfg.max_seq_len,
            "sequence length {time} exceeds max {}",
            self.cfg.max_seq_len
        );
        let mut h = self.embed.forward(tokens, batch, time);
        for block in &self.blocks {
            h = block.forward(&h, &self.rope, 0, None);
        }
        self.lm_head.forward(&self.final_norm.forward(&h))
    }

    /// Single decoding step through the KV cache (batch 1): returns logits
    /// `(vocab,)` for the next-token distribution after `token`.
    pub fn step(&self, token: u32, cache: &mut KvCache) -> Vec<f32> {
        self.prefill(&[token], cache)
    }

    /// Feed `tokens` through the KV cache in one chunked forward (batch 1)
    /// and return the next-token logits `(vocab,)` after the final token.
    ///
    /// This is the fast path for prompt ingestion: one forward over the
    /// whole chunk instead of a per-token [`CausalLm::step`] loop, and the
    /// LM head is applied to the *last position only* — skipping the
    /// `(t-1)·d_model·vocab` logit rows a full forward would compute.
    /// Runs entirely under [`no_grad`], so decoding never builds backward
    /// closures regardless of the caller's scope.
    pub fn prefill(&self, tokens: &[u32], cache: &mut KvCache) -> Vec<f32> {
        assert!(!tokens.is_empty(), "prefill needs at least one token");
        let t = tokens.len();
        assert!(
            cache.pos + t <= self.cfg.max_seq_len,
            "cache position {} + chunk {t} exceeds max_seq_len {}",
            cache.pos,
            self.cfg.max_seq_len
        );
        // Single-token chunks are cached decode steps; multi-token chunks
        // are prompt ingestion. Spans only for the latter — a span per
        // decoded token would dominate the trace.
        let _span = if t > 1 {
            zg_trace::counter_add("model.prefill_tokens", t as f64);
            Some(zg_trace::span_arg("model.prefill", t as i64))
        } else {
            zg_trace::counter_add("model.decode_steps", 1.0);
            None
        };
        no_grad(|| {
            let mut h = self.embed.forward(tokens, 1, t);
            for (block, layer_cache) in self.blocks.iter().zip(&mut cache.layers) {
                h = block.forward(&h, &self.rope, cache.pos, Some(layer_cache));
            }
            cache.pos += t;
            let last = h.narrow(1, t - 1, 1);
            self.lm_head
                .forward(&self.final_norm.forward(&last))
                .to_vec()
        })
    }

    /// Next-token cross-entropy over a batch.
    ///
    /// `labels[b][t]` is the target for the prediction made at position `t`;
    /// positions whose label equals `ignore` (typically `<pad>` = 0) are
    /// masked from the loss — this is how prompt tokens are excluded in SFT.
    pub fn sft_loss(
        &self,
        tokens: &[u32],
        labels: &[u32],
        batch: usize,
        time: usize,
        ignore: u32,
    ) -> Tensor {
        assert_eq!(tokens.len(), labels.len());
        // `cross_entropy_logits` treats the last axis as classes and
        // collapses the leading ones, so the `(batch, time, vocab)` logits
        // feed straight in — no `(batch*time, vocab)` reshape copy.
        let logits = self.forward(tokens, batch, time);
        let targets: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
        logits.cross_entropy_logits(&targets, Some(ignore as usize))
    }

    /// Sample a continuation of `prompt`. Greedy when `temperature == 0`.
    /// Stops at `eos` or after `max_new` tokens. Returns only new tokens.
    pub fn generate(
        &self,
        prompt: &[u32],
        max_new: usize,
        temperature: f32,
        eos: u32,
        rng: &mut impl Rng,
    ) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let _span = zg_trace::span_arg("model.generate", max_new as i64);
        let _leak = GraphLeakGuard::new("CausalLm::generate");
        // The whole decode runs under no_grad — chunked prompt prefill,
        // then one cached step per sampled token.
        no_grad(|| {
            let mut cache = self.new_cache();
            let mut logits = self.prefill(prompt, &mut cache);
            let mut out = Vec::new();
            for _ in 0..max_new {
                let next = sample_logits(&logits, temperature, rng);
                if next == eos {
                    break;
                }
                out.push(next);
                logits = self.step(next, &mut cache);
            }
            out
        })
    }

    /// Sum log-probability of `continuation` given `prompt` (teacher
    /// forcing, no sampling). Used to rank candidate answers and to derive
    /// the positive-class score for the KS metric.
    ///
    /// Thin wrapper over [`CausalLm::score_continuations`] — scoring one
    /// candidate is the single-element case of the prefix-reused path.
    pub fn score_continuation(&self, prompt: &[u32], continuation: &[u32]) -> f32 {
        self.score_continuations(prompt, &[continuation])[0]
    }

    /// Score many candidate continuations of one prompt, prefilling the
    /// KV cache over the prompt **once** and forking it per candidate.
    ///
    /// Each fork is a cheap per-layer `Rc` copy of the cached K/V
    /// buffers; only the continuation tokens are then teacher-forced
    /// through cached steps. Relative to the historical full-sequence
    /// forward per candidate this drops the cost from
    /// `n_candidates · O((t_p + t_c)²)` to `O(t_p²) + n_candidates ·
    /// O(t_c)` attention work — and the log-softmax is computed row-wise
    /// on exactly the needed positions (`O(|cont|·V)`, not `O(t·V)`).
    pub fn score_continuations(&self, prompt: &[u32], continuations: &[&[u32]]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let _span = zg_trace::span_arg("model.score", continuations.len() as i64);
        let _leak = GraphLeakGuard::new("CausalLm::score_continuations");
        let mut cache = self.new_cache();
        let prompt_logits = self.prefill(prompt, &mut cache);
        self.score_continuations_with_cache(&cache, &prompt_logits, continuations)
    }

    /// Score candidates against an already-prefilled prompt cache:
    /// `next_logits` must be the next-token logits after the cached
    /// prompt (what [`CausalLm::prefill`] returned). Lets one prefill
    /// serve answer generation *and* candidate scoring.
    pub fn score_continuations_with_cache(
        &self,
        cache: &KvCache,
        next_logits: &[f32],
        continuations: &[&[u32]],
    ) -> Vec<f32> {
        let _span = zg_trace::span_arg("model.score_cached", continuations.len() as i64);
        zg_trace::counter_add("model.continuations", continuations.len() as f64);
        let _leak = GraphLeakGuard::new("CausalLm::score_continuations_with_cache");
        no_grad(|| {
            continuations
                .iter()
                .map(|cont| {
                    assert!(!cont.is_empty(), "continuation must be non-empty");
                    let mut fork = cache.fork();
                    let mut row = next_logits.to_vec();
                    let mut total = 0.0f32;
                    for (i, &tok) in cont.iter().enumerate() {
                        total += log_prob_row(&row, tok as usize);
                        // The last token's successor distribution is never
                        // consumed — skip its forward step.
                        if i + 1 < cont.len() {
                            row = self.step(tok, &mut fork);
                        }
                    }
                    total
                })
                .collect()
        })
    }

    /// Reference implementation of [`CausalLm::score_continuation`]: one
    /// full forward over `prompt ++ continuation` with no KV reuse.
    /// Kept as the oracle for the prefix-reuse regression tests and as
    /// the pre-fast-path baseline in the inference benchmarks. Unlike
    /// the historical version it computes row-wise log-softmax only at
    /// the continuation positions instead of materializing the full
    /// `(t, vocab)` log-softmax.
    pub fn score_continuation_full(&self, prompt: &[u32], continuation: &[u32]) -> f32 {
        assert!(!prompt.is_empty() && !continuation.is_empty());
        let _leak = GraphLeakGuard::new("CausalLm::score_continuation_full");
        no_grad(|| {
            let mut seq = prompt.to_vec();
            seq.extend_from_slice(continuation);
            let t = seq.len();
            let logits = self.forward(&seq, 1, t);
            let lp = logits.data();
            let v = self.cfg.vocab_size;
            let mut total = 0.0f32;
            for (i, &tok) in continuation.iter().enumerate() {
                let pos = prompt.len() + i - 1; // logits at pos predict token pos+1
                total += log_prob_row(&lp[pos * v..(pos + 1) * v], tok as usize);
            }
            total
        })
    }

    /// Every dense projection in the model: q/k/v/o per block, the three
    /// MLP projections per block, and the LM head. (The embedding is a
    /// gather, not a GEMM, so it stays f32.)
    pub fn linears(&self) -> Vec<&Linear> {
        let mut out = Vec::new();
        for b in &self.blocks {
            out.extend(b.attn.projections());
            out.extend(b.mlp.projections());
        }
        out.push(&self.lm_head);
        out
    }

    /// Calibrate (`on = true`) or drop (`on = false`) int8 copies of every
    /// frozen dense projection weight. Only weights with
    /// `requires_grad == false` are calibrated (the frozen LoRA base);
    /// returns how many layers now hold a calibration.
    pub fn set_quantized(&self, on: bool) -> usize {
        self.linears()
            .into_iter()
            .filter(|l| l.set_quantized(on))
            .count()
    }

    /// Whether any projection currently holds an int8 calibration.
    pub fn is_quantized(&self) -> bool {
        self.linears().into_iter().any(|l| l.is_quantized())
    }

    /// All named parameters, including any attached LoRA adapters.
    pub fn params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        out.extend(self.embed.params("embed"));
        for (i, b) in self.blocks.iter().enumerate() {
            out.extend(b.params(&format!("layers.{i}")));
        }
        out.extend(self.final_norm.params("final_norm"));
        out.extend(self.lm_head.params("lm_head"));
        out
    }

    /// Only the parameters that require gradients (respects LoRA freezing).
    pub fn trainable_params(&self) -> Vec<(String, Tensor)> {
        self.params()
            .into_iter()
            .filter(|(_, p)| p.requires_grad())
            .collect()
    }

    /// Snapshot all weights into a [`TensorStore`] checkpoint.
    pub fn checkpoint(&self) -> TensorStore {
        let mut store = TensorStore::new();
        for (name, p) in self.params() {
            store.insert(name, &p);
        }
        store
    }

    /// Restore weights from a checkpoint produced by [`CausalLm::checkpoint`].
    /// Unknown names in the store are ignored; missing names panic.
    pub fn restore(&self, store: &TensorStore) {
        for (name, p) in self.params() {
            let saved = store
                .get(&name)
                // INVARIANT: a checkpoint missing a model parameter is unrecoverable corruption.
                .unwrap_or_else(|| panic!("checkpoint missing parameter {name}"));
            assert_eq!(saved.dims(), p.dims(), "shape mismatch for {name}");
            p.set_data(&saved.data());
        }
    }
}

/// Log-probability of class `tok` under a single row of logits —
/// numerically identical to `log_softmax()[tok]` (same max-shift and
/// summation order) without materializing the full row of outputs.
pub fn log_prob_row(logits: &[f32], tok: usize) -> f32 {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let lse = m + logits.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
    logits[tok] - lse
}

/// Sample from logits. `temperature == 0` is argmax.
pub fn sample_logits(logits: &[f32], temperature: f32, rng: &mut impl Rng) -> u32 {
    if temperature <= 0.0 {
        return logits
            .iter()
            .enumerate()
            // INVARIANT: NaN logits are a caller bug; fail loudly rather than mis-rank.
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            // INVARIANT: callers never pass an empty logit row.
            .expect("non-empty logits");
    }
    // Softmax with temperature, then inverse-CDF sampling.
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits
        .iter()
        .map(|&l| ((l - m) / temperature).exp())
        .collect();
    let z: f32 = exps.iter().sum();
    let mut u: f32 = rng.gen::<f32>() * z;
    for (i, &e) in exps.iter().enumerate() {
        u -= e;
        if u <= 0.0 {
            return i as u32;
        }
    }
    (exps.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lm() -> CausalLm {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = ModelConfig::mistral_miniature(32);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        CausalLm::new(cfg, &mut rng)
    }

    #[test]
    fn forward_logits_shape() {
        let lm = tiny_lm();
        let logits = lm.forward(&[1, 2, 3, 4, 5, 6], 2, 3);
        assert_eq!(logits.dims(), &[2, 3, 32]);
    }

    #[test]
    fn step_matches_forward() {
        let lm = tiny_lm();
        let seq = [1u32, 5, 9, 2];
        let full = lm.forward(&seq, 1, 4).to_vec();
        let mut cache = lm.new_cache();
        let mut last = Vec::new();
        for &t in &seq {
            last = lm.step(t, &mut cache);
        }
        let v = lm.cfg.vocab_size;
        for j in 0..v {
            assert!(
                (last[j] - full[3 * v + j]).abs() < 1e-3,
                "logit {j}: {} vs {}",
                last[j],
                full[3 * v + j]
            );
        }
    }

    #[test]
    fn sft_loss_masks_prompt() {
        let lm = tiny_lm();
        // All labels ignored -> loss computed over zero positions -> 0/1 = 0.
        let loss = lm.sft_loss(&[1, 2, 3], &[0, 0, 0], 1, 3, 0);
        assert_eq!(loss.item(), 0.0);
        // One live label -> positive loss.
        let loss = lm.sft_loss(&[1, 2, 3], &[0, 0, 7], 1, 3, 0);
        assert!(loss.item() > 0.0);
    }

    #[test]
    fn sft_loss_backward_reaches_params() {
        let lm = tiny_lm();
        let loss = lm.sft_loss(&[1, 2, 3, 4], &[2, 3, 4, 2], 1, 4, 0);
        loss.backward();
        let with_grad = lm
            .params()
            .iter()
            .filter(|(_, p)| p.grad().is_some())
            .count();
        assert!(with_grad > 5, "only {with_grad} params got grads");
    }

    #[test]
    fn generate_terminates_and_respects_eos() {
        let lm = tiny_lm();
        let mut rng = StdRng::seed_from_u64(3);
        let out = lm.generate(&[1, 2, 3], 8, 0.0, 2, &mut rng);
        assert!(out.len() <= 8);
        assert!(!out.contains(&2), "eos must not appear in output");
    }

    #[test]
    fn greedy_sampling_is_argmax() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = vec![0.1, 5.0, -3.0];
        assert_eq!(sample_logits(&logits, 0.0, &mut rng), 1);
    }

    #[test]
    fn temperature_sampling_covers_support() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = vec![1.0, 1.0];
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[sample_logits(&logits, 1.0, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn score_continuation_is_log_prob() {
        let lm = tiny_lm();
        let s = lm.score_continuation(&[1, 2], &[3]);
        assert!(s <= 0.0, "log-prob must be <= 0");
        // Sum over full vocab of exp(score) == 1 at a single position.
        let total: f32 = (0..32)
            .map(|tok| lm.score_continuation(&[1, 2], &[tok]).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "total prob {total}");
    }

    #[test]
    fn quantized_model_scores_close_to_f32() {
        let lm = tiny_lm();
        for (_, p) in lm.params() {
            p.set_requires_grad(false);
        }
        // Pin the knob off for the f32 baseline (robust under ZG_QUANT=1).
        let prev = zg_tensor::set_quantized_inference(false);
        let f32_score = lm.score_continuation(&[1, 2, 5], &[3, 7]);
        zg_tensor::set_quantized_inference(prev);
        let calibrated = lm.set_quantized(true);
        // q/k/v/o + gate/up/down per block + lm_head; tiny_lm has 1 block.
        assert_eq!(calibrated, 8);
        let q_score = lm.score_continuation(&[1, 2, 5], &[3, 7]);
        assert!(
            (q_score - f32_score).abs() < 0.35,
            "quantized log-prob drifted: {q_score} vs {f32_score}"
        );
        // Chunked prefill == per-token stepping on the quantized path too
        // (per-row activation quantization keeps rows independent).
        let seq = [1u32, 5, 9, 2];
        let mut c1 = lm.new_cache();
        let whole = lm.prefill(&seq, &mut c1);
        let mut c2 = lm.new_cache();
        let mut stepped = Vec::new();
        for &t in &seq {
            stepped = lm.step(t, &mut c2);
        }
        for (a, b) in whole.iter().zip(&stepped) {
            assert!(
                (a - b).abs() < 1e-3,
                "quantized prefill diverged from stepping: {a} vs {b}"
            );
        }
        lm.set_quantized(false);
        assert!(!lm.is_quantized());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let lm = tiny_lm();
        let before = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        let ckpt = lm.checkpoint();
        // Perturb all weights, then restore.
        for (_, p) in lm.params() {
            let d: Vec<f32> = p.data().iter().map(|v| v + 1.0).collect();
            p.set_data(&d);
        }
        let perturbed = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        assert!(before
            .iter()
            .zip(&perturbed)
            .any(|(a, b)| (a - b).abs() > 1e-3));
        lm.restore(&ckpt);
        let after = lm.forward(&[1, 2, 3], 1, 3).to_vec();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn trainable_params_respects_freezing() {
        let lm = tiny_lm();
        let all = lm.params().len();
        assert_eq!(lm.trainable_params().len(), all);
        lm.embed.weight.set_requires_grad(false);
        assert_eq!(lm.trainable_params().len(), all - 1);
    }
}
