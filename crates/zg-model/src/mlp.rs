//! SwiGLU feed-forward block: `down( silu(gate(x)) ⊙ up(x) )`, the
//! Llama/Mistral MLP with SiLU activation (paper Table 3).

use rand::Rng;
use zg_tensor::Tensor;

use crate::layers::Linear;

/// Gated feed-forward network.
pub struct SwiGluMlp {
    gate: Linear,
    up: Linear,
    down: Linear,
}

impl SwiGluMlp {
    /// Build the three projections.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut impl Rng) -> Self {
        SwiGluMlp {
            gate: Linear::new(d_model, d_ff, rng),
            up: Linear::new(d_model, d_ff, rng),
            down: Linear::new(d_ff, d_model, rng),
        }
    }

    /// Apply the block: `(…, d_model) -> (…, d_model)`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let g = self.gate.forward(x).silu();
        let u = self.up.forward(x);
        self.down.forward(&g.mul(&u))
    }

    /// Named parameters.
    pub fn params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        out.extend(self.gate.params(&format!("{prefix}.gate")));
        out.extend(self.up.params(&format!("{prefix}.up")));
        out.extend(self.down.params(&format!("{prefix}.down")));
        out
    }

    /// The three projections as `[gate, up, down]` (quantization walks).
    pub fn projections(&self) -> [&Linear; 3] {
        [&self.gate, &self.up, &self.down]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = SwiGluMlp::new(8, 16, &mut rng);
        let x = Tensor::ones([2, 3, 8]);
        assert_eq!(mlp.forward(&x).dims(), &[2, 3, 8]);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = SwiGluMlp::new(4, 8, &mut rng);
        let x = Tensor::zeros([1, 1, 4]);
        let y = mlp.forward(&x);
        assert!(y.to_vec().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = SwiGluMlp::new(4, 8, &mut rng);
        let x = Tensor::param(vec![0.5; 4], [1, 1, 4]);
        mlp.forward(&x).sum().backward();
        assert!(x.grad().is_some());
        assert_eq!(mlp.params("m").len(), 3);
        for (_, p) in mlp.params("m") {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn nonlinearity_present() {
        // f(2x) != 2 f(x) for a gated nonlinear block.
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = SwiGluMlp::new(4, 8, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1], [1, 1, 4]);
        let y1 = mlp.forward(&x).to_vec();
        let y2 = mlp.forward(&x.mul_scalar(2.0)).to_vec();
        let linear = y1.iter().zip(&y2).all(|(a, b)| (2.0 * a - b).abs() < 1e-6);
        assert!(!linear, "SwiGLU must not be linear");
    }
}
