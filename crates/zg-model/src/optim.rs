//! Optimization: AdamW (paper Table 3: β₁=0.9, β₂=0.999), cosine-decay
//! learning-rate schedule with warmup, and global-norm gradient clipping.

use std::collections::BTreeMap;

use zg_tensor::Tensor;

/// AdamW with decoupled weight decay.
pub struct AdamW {
    /// Current learning rate (mutated by the schedule each step).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u64,
    state: BTreeMap<u64, Moments>,
}

struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamW {
    /// AdamW with the paper's betas and the given base learning rate.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            state: BTreeMap::new(),
        }
    }

    /// One update step over `params` using their accumulated gradients,
    /// then clears those gradients. Parameters without a gradient are
    /// skipped (e.g. frozen base weights under LoRA).
    pub fn step(&mut self, params: &[(String, Tensor)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (_, p) in params {
            let Some(g) = p.grad() else { continue };
            let entry = self.state.entry(p.id()).or_insert_with(|| Moments {
                m: vec![0.0; g.len()],
                v: vec![0.0; g.len()],
            });
            let mut data = p.data_mut();
            for i in 0..g.len() {
                entry.m[i] = self.beta1 * entry.m[i] + (1.0 - self.beta1) * g[i];
                entry.v[i] = self.beta2 * entry.v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = entry.m[i] / bc1;
                let vhat = entry.v[i] / bc2;
                data[i] -=
                    self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * data[i]);
            }
            drop(data);
            p.zero_grad();
        }
    }

    /// Global-norm clip fused into the update step.
    ///
    /// The two-pass path ([`clip_grad_norm`] then [`AdamW::step`]) walks
    /// the parameters three times when clipping triggers — norm read,
    /// gradient rewrite (allocate + zero + re-accumulate), update read.
    /// This fuses the clip into the update: one traversal computes the
    /// norm in the identical float order, then a single update traversal
    /// applies `g[i] * scale` inline, reading each gradient buffer once
    /// and never rewriting it. The float operations match the two-pass
    /// path exactly (the rewrite pass stores `g[i] * scale` and the
    /// update reads it back; without clipping the gradient is used
    /// as-is), so the result is bit-identical.
    ///
    /// Returns the pre-clip global norm, like [`clip_grad_norm`].
    pub fn clip_and_step(&mut self, params: &[(String, Tensor)], max_norm: f32) -> f32 {
        let mut total = 0.0f32;
        for (_, p) in params {
            if let Some(sq) = p.with_grad(|g| g.iter().map(|v| v * v).sum::<f32>()) {
                total += sq;
            }
        }
        let norm = total.sqrt();
        let scale = if norm > max_norm && norm > 0.0 {
            Some(max_norm / norm)
        } else {
            None
        };
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2, eps, weight_decay, lr) =
            (self.beta1, self.beta2, self.eps, self.weight_decay, self.lr);
        for (_, p) in params {
            let state = &mut self.state;
            let applied = p.with_grad(|g| {
                let entry = state.entry(p.id()).or_insert_with(|| Moments {
                    m: vec![0.0; g.len()],
                    v: vec![0.0; g.len()],
                });
                let mut data = p.data_mut();
                for i in 0..g.len() {
                    let gi = match scale {
                        Some(s) => g[i] * s,
                        None => g[i],
                    };
                    entry.m[i] = beta1 * entry.m[i] + (1.0 - beta1) * gi;
                    entry.v[i] = beta2 * entry.v[i] + (1.0 - beta2) * gi * gi;
                    let mhat = entry.m[i] / bc1;
                    let vhat = entry.v[i] / bc2;
                    data[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * data[i]);
                }
            });
            if applied.is_some() {
                p.zero_grad();
            }
        }
        norm
    }

    /// Clear all gradients without stepping (e.g. after a diverged batch).
    pub fn zero_grad(&self, params: &[(String, Tensor)]) {
        for (_, p) in params {
            p.zero_grad();
        }
    }
}

/// Rescale gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[(String, Tensor)], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for (_, p) in params {
        if let Some(g) = p.grad() {
            total += g.iter().map(|v| v * v).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for (_, p) in params {
            if let Some(g) = p.grad() {
                let scaled: Vec<f32> = g.iter().map(|v| v * scale).collect();
                p.zero_grad();
                p.accumulate_grad(&scaled);
            }
        }
    }
    norm
}

/// Cosine-decay schedule with linear warmup (paper Table 3: "Cosine Decay").
#[derive(Debug, Clone)]
pub struct CosineSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub max_lr: f32,
    /// Floor learning rate at the end of decay.
    pub min_lr: f32,
    /// Number of linear warmup steps.
    pub warmup_steps: u64,
    /// Total steps of the schedule.
    pub total_steps: u64,
}

impl CosineSchedule {
    /// Learning rate at `step` (0-indexed).
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.max_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.min_lr;
        }
        let progress = (step - self.warmup_steps) as f32
            / (self.total_steps - self.warmup_steps).max(1) as f32;
        self.min_lr
            + 0.5 * (self.max_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adamw_minimizes_quadratic() {
        // f(w) = (w - 3)^2, minimized at w = 3.
        let w = Tensor::param(vec![0.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        for _ in 0..300 {
            let loss = w.sub_scalar(3.0).square().sum();
            loss.backward();
            opt.step(&params);
        }
        assert!((w.item() - 3.0).abs() < 0.05, "w = {}", w.item());
    }

    #[test]
    fn adamw_skips_frozen_params() {
        let frozen = Tensor::from_vec(vec![1.0], [1]); // no grad ever
        let params = vec![("f".to_string(), frozen.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        opt.step(&params);
        assert_eq!(frozen.to_vec(), vec![1.0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let w = Tensor::param(vec![1.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.01, 0.5);
        // Zero-gradient steps: only decay acts.
        for _ in 0..10 {
            w.accumulate_grad(&[0.0]);
            opt.step(&params);
        }
        assert!(w.item() < 1.0);
    }

    #[test]
    fn step_clears_gradients() {
        let w = Tensor::param(vec![0.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        w.accumulate_grad(&[1.0]);
        opt.step(&params);
        assert!(w.grad().is_none());
    }

    #[test]
    fn clip_reduces_large_norm() {
        let w = Tensor::param(vec![0.0, 0.0], [2]);
        w.accumulate_grad(&[3.0, 4.0]); // norm 5
        let params = vec![("w".to_string(), w.clone())];
        let pre = clip_grad_norm(&params, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = w.grad().unwrap();
        let post: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_norm() {
        let w = Tensor::param(vec![0.1], [1]);
        w.accumulate_grad(&[0.1]);
        let params = vec![("w".to_string(), w.clone())];
        clip_grad_norm(&params, 1.0);
        assert!((w.grad().unwrap()[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn fused_clip_step_bit_identical_to_two_pass() {
        // Deterministic pseudo-gradients, some steps clipping and some
        // not; the fused path must stay bitwise equal to clip+step.
        let pseudo = |step: u64, i: usize, len: usize| -> f32 {
            let x = ((step * 31 + i as u64 * 7 + len as u64) % 97) as f32 / 97.0 - 0.5;
            // Alternate steps produce huge gradients so clipping triggers.
            if step.is_multiple_of(2) {
                x * 50.0
            } else {
                x * 0.01
            }
        };
        let make = || {
            vec![
                ("a".to_string(), Tensor::param(vec![0.3; 17], [17])),
                ("b".to_string(), Tensor::param(vec![-0.7; 130], [130])),
                // Frozen param that never receives a gradient.
                ("c".to_string(), Tensor::from_vec(vec![2.0; 5], [5])),
            ]
        };
        let (twin_a, twin_b) = (make(), make());
        let mut opt_a = AdamW::new(0.02, 0.01);
        let mut opt_b = AdamW::new(0.02, 0.01);
        for step in 0..6 {
            for params in [&twin_a, &twin_b] {
                for (name, p) in params {
                    if name == "c" {
                        continue;
                    }
                    let n = p.numel();
                    let g: Vec<f32> = (0..n).map(|i| pseudo(step, i, n)).collect();
                    p.accumulate_grad(&g);
                }
            }
            let norm_two_pass = clip_grad_norm(&twin_a, 1.0);
            opt_a.step(&twin_a);
            let norm_fused = opt_b.clip_and_step(&twin_b, 1.0);
            assert_eq!(norm_two_pass, norm_fused, "pre-clip norms must match");
            for ((_, pa), (_, pb)) in twin_a.iter().zip(&twin_b) {
                assert_eq!(
                    pa.to_vec(),
                    pb.to_vec(),
                    "step {step}: fused update must be bit-identical"
                );
                assert!(pa.grad().is_none() == pb.grad().is_none());
            }
        }
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule {
            max_lr: 1.0,
            min_lr: 0.1,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!(s.lr_at(0) < 0.2); // warmup starts low
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6); // warmup peak
        assert!(s.lr_at(60) < 1.0 && s.lr_at(60) > 0.1); // mid decay
        assert!((s.lr_at(109) - 0.1).abs() < 0.02); // near floor
        assert_eq!(s.lr_at(500), 0.1); // clamped after end
    }

    #[test]
    fn cosine_schedule_monotone_decay_after_warmup() {
        let s = CosineSchedule {
            max_lr: 3e-5,
            min_lr: 1e-5,
            warmup_steps: 5,
            total_steps: 100,
        };
        let mut prev = f32::INFINITY;
        for step in 5..100 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-9, "lr increased at step {step}");
            prev = lr;
        }
    }
}
