//! Optimization: AdamW (paper Table 3: β₁=0.9, β₂=0.999), cosine-decay
//! learning-rate schedule with warmup, and global-norm gradient clipping.

use std::collections::BTreeMap;

use zg_tensor::Tensor;

/// AdamW with decoupled weight decay.
pub struct AdamW {
    /// Current learning rate (mutated by the schedule each step).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u64,
    state: BTreeMap<u64, Moments>,
}

struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamW {
    /// AdamW with the paper's betas and the given base learning rate.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            state: BTreeMap::new(),
        }
    }

    /// One update step over `params` using their accumulated gradients,
    /// then clears those gradients. Parameters without a gradient are
    /// skipped (e.g. frozen base weights under LoRA).
    pub fn step(&mut self, params: &[(String, Tensor)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (_, p) in params {
            let Some(g) = p.grad() else { continue };
            let entry = self.state.entry(p.id()).or_insert_with(|| Moments {
                m: vec![0.0; g.len()],
                v: vec![0.0; g.len()],
            });
            let mut data = p.data_mut();
            for i in 0..g.len() {
                entry.m[i] = self.beta1 * entry.m[i] + (1.0 - self.beta1) * g[i];
                entry.v[i] = self.beta2 * entry.v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = entry.m[i] / bc1;
                let vhat = entry.v[i] / bc2;
                data[i] -=
                    self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * data[i]);
            }
            drop(data);
            p.zero_grad();
        }
    }

    /// Clear all gradients without stepping (e.g. after a diverged batch).
    pub fn zero_grad(&self, params: &[(String, Tensor)]) {
        for (_, p) in params {
            p.zero_grad();
        }
    }
}

/// Rescale gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[(String, Tensor)], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for (_, p) in params {
        if let Some(g) = p.grad() {
            total += g.iter().map(|v| v * v).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for (_, p) in params {
            if let Some(g) = p.grad() {
                let scaled: Vec<f32> = g.iter().map(|v| v * scale).collect();
                p.zero_grad();
                p.accumulate_grad(&scaled);
            }
        }
    }
    norm
}

/// Cosine-decay schedule with linear warmup (paper Table 3: "Cosine Decay").
#[derive(Debug, Clone)]
pub struct CosineSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub max_lr: f32,
    /// Floor learning rate at the end of decay.
    pub min_lr: f32,
    /// Number of linear warmup steps.
    pub warmup_steps: u64,
    /// Total steps of the schedule.
    pub total_steps: u64,
}

impl CosineSchedule {
    /// Learning rate at `step` (0-indexed).
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.max_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.min_lr;
        }
        let progress = (step - self.warmup_steps) as f32
            / (self.total_steps - self.warmup_steps).max(1) as f32;
        self.min_lr
            + 0.5 * (self.max_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adamw_minimizes_quadratic() {
        // f(w) = (w - 3)^2, minimized at w = 3.
        let w = Tensor::param(vec![0.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        for _ in 0..300 {
            let loss = w.sub_scalar(3.0).square().sum();
            loss.backward();
            opt.step(&params);
        }
        assert!((w.item() - 3.0).abs() < 0.05, "w = {}", w.item());
    }

    #[test]
    fn adamw_skips_frozen_params() {
        let frozen = Tensor::from_vec(vec![1.0], [1]); // no grad ever
        let params = vec![("f".to_string(), frozen.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        opt.step(&params);
        assert_eq!(frozen.to_vec(), vec![1.0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let w = Tensor::param(vec![1.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.01, 0.5);
        // Zero-gradient steps: only decay acts.
        for _ in 0..10 {
            w.accumulate_grad(&[0.0]);
            opt.step(&params);
        }
        assert!(w.item() < 1.0);
    }

    #[test]
    fn step_clears_gradients() {
        let w = Tensor::param(vec![0.0], [1]);
        let params = vec![("w".to_string(), w.clone())];
        let mut opt = AdamW::new(0.1, 0.0);
        w.accumulate_grad(&[1.0]);
        opt.step(&params);
        assert!(w.grad().is_none());
    }

    #[test]
    fn clip_reduces_large_norm() {
        let w = Tensor::param(vec![0.0, 0.0], [2]);
        w.accumulate_grad(&[3.0, 4.0]); // norm 5
        let params = vec![("w".to_string(), w.clone())];
        let pre = clip_grad_norm(&params, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = w.grad().unwrap();
        let post: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_norm() {
        let w = Tensor::param(vec![0.1], [1]);
        w.accumulate_grad(&[0.1]);
        let params = vec![("w".to_string(), w.clone())];
        clip_grad_norm(&params, 1.0);
        assert!((w.grad().unwrap()[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule {
            max_lr: 1.0,
            min_lr: 0.1,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!(s.lr_at(0) < 0.2); // warmup starts low
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6); // warmup peak
        assert!(s.lr_at(60) < 1.0 && s.lr_at(60) > 0.1); // mid decay
        assert!((s.lr_at(109) - 0.1).abs() < 0.02); // near floor
        assert_eq!(s.lr_at(500), 0.1); // clamped after end
    }

    #[test]
    fn cosine_schedule_monotone_decay_after_warmup() {
        let s = CosineSchedule {
            max_lr: 3e-5,
            min_lr: 1e-5,
            warmup_steps: 5,
            total_steps: 100,
        };
        let mut prev = f32::INFINITY;
        for step in 5..100 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-9, "lr increased at step {step}");
            prev = lr;
        }
    }
}
