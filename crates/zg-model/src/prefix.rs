//! Refcounted shared-prefix KV blocks: [`KvCache::fork`] extended from
//! per-candidate to cross-request reuse.
//!
//! In the serving workload every user prompt begins with the same
//! rendered instruction template, so the template's KV state can be
//! prefetched once and *forked* per request instead of being recomputed
//! per request. A [`PrefixPool`] owns those template states keyed by
//! their token prefix; [`PrefixBlock`] is a refcounted lease on one
//! entry, and forking a lease hands back an independent [`KvCache`]
//! (plus the next-token logits after the prefix) that the request then
//! extends privately.
//!
//! **Bitwise transparency.** Prefilling `prompt[..k]` and then
//! `prompt[k..]` produces bit-identical KV state and logits to one
//! prefill over the whole prompt: every per-position projection, RoPE
//! rotation, and norm depends only on that position's absolute index,
//! and masked attention entries (`-1e9` additive mask) underflow to an
//! exact `0.0` in the softmax, so chunk boundaries never change the
//! visible-key sums — including when the sliding window has already
//! trimmed keys out of the stored cache. The `split_prefill_bit_identity`
//! test below pins this, which is what lets the serving path share
//! prefixes across requests while staying exact-`f64` identical to the
//! offline single-prefill evaluator.
//!
//! The pool is deliberately single-threaded (`Rc`-based, like the
//! tensors inside [`KvCache`]): a parallel server gives each worker
//! replica its own pool, which keeps reuse hits deterministic per
//! worker and requires no locking on the decode hot path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::lm::KvCache;

/// Aggregate pool statistics (monotonic counters plus live state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// `acquire` calls that found a cached prefix.
    pub hits: u64,
    /// `acquire` calls that found nothing reusable.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Outstanding leases across all entries.
    pub live_leases: usize,
}

struct Entry {
    cache: KvCache,
    logits: Vec<f32>,
    refs: usize,
    /// Monotonic recency stamp (updated on acquire), for deterministic
    /// least-recently-used eviction.
    last_used: u64,
}

struct Inner {
    entries: BTreeMap<Vec<u32>, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    live_leases: usize,
}

impl Inner {
    /// Evict unreferenced entries, least-recently-used first, until the
    /// pool fits its capacity. Entries with outstanding leases are
    /// never evicted (the pool may transiently exceed capacity while
    /// every entry is leased).
    fn enforce_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                    zg_trace::counter_add("prefix.evictions", 1.0);
                }
                None => break,
            }
        }
    }
}

/// A pool of refcounted template-prefix KV blocks.
///
/// Cloning shares the pool (it is a handle, like the `Rc` tensors it
/// stores).
#[derive(Clone)]
pub struct PrefixPool {
    inner: Rc<RefCell<Inner>>,
}

impl PrefixPool {
    /// A pool retaining at most `capacity` unleased entries.
    pub fn new(capacity: usize) -> PrefixPool {
        assert!(capacity > 0, "prefix pool capacity must be positive");
        PrefixPool {
            inner: Rc::new(RefCell::new(Inner {
                entries: BTreeMap::new(),
                capacity,
                tick: 0,
                hits: 0,
                misses: 0,
                inserts: 0,
                evictions: 0,
                live_leases: 0,
            })),
        }
    }

    /// Look up the longest cached entry whose key is a *strict* prefix
    /// of `prompt` and lease it. Returns the lease and the matched
    /// prefix length, or `None` (a miss) when nothing reusable is
    /// cached. The strictness guarantee means at least one prompt token
    /// always remains for the caller to prefill, so the caller always
    /// obtains fresh next-token logits for the full prompt.
    pub fn acquire(&self, prompt: &[u32]) -> Option<(PrefixBlock, usize)> {
        let mut inner = self.inner.borrow_mut();
        let best: Option<Vec<u32>> = inner
            .entries
            .keys()
            .filter(|k| k.len() < prompt.len() && prompt.starts_with(k))
            .max_by_key(|k| k.len())
            .cloned();
        match best {
            Some(key) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.hits += 1;
                inner.live_leases += 1;
                // INVARIANT: `key` was found in `entries` two lines up and the map
                // is not touched in between.
                let e = inner.entries.get_mut(&key).expect("entry just found");
                e.refs += 1;
                e.last_used = tick;
                let len = key.len();
                zg_trace::counter_add("prefix.hits", 1.0);
                drop(inner);
                Some((
                    PrefixBlock {
                        pool: Rc::clone(&self.inner),
                        key,
                    },
                    len,
                ))
            }
            None => {
                inner.misses += 1;
                zg_trace::counter_add("prefix.misses", 1.0);
                None
            }
        }
    }

    /// Insert the KV state (and next-token logits) of a freshly
    /// prefilled prefix under `key`, returning a lease on it. Inserting
    /// over an existing key replaces its cache/logits while preserving
    /// outstanding leases (they only pin the refcount, not the tensors).
    pub fn insert(&self, key: &[u32], cache: KvCache, logits: Vec<f32>) -> PrefixBlock {
        assert!(!key.is_empty(), "prefix key must be non-empty");
        assert_eq!(
            cache.pos,
            key.len(),
            "cache position must equal the prefix length"
        );
        let mut inner = self.inner.borrow_mut();
        inner.tick += 1;
        let tick = inner.tick;
        inner.inserts += 1;
        inner.live_leases += 1;
        let entry = inner.entries.entry(key.to_vec()).or_insert(Entry {
            cache: cache.fork(),
            logits: Vec::new(),
            refs: 0,
            last_used: tick,
        });
        entry.cache = cache;
        entry.logits = logits;
        entry.refs += 1;
        entry.last_used = tick;
        inner.enforce_capacity();
        zg_trace::counter_add("prefix.inserts", 1.0);
        PrefixBlock {
            pool: Rc::clone(&self.inner),
            key: key.to_vec(),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PrefixStats {
        let inner = self.inner.borrow();
        PrefixStats {
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            live_leases: inner.live_leases,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// Whether the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assert the pool is quiescent: no outstanding leases anywhere.
    /// The serving engine calls this between requests in its leak
    /// audits — a lease that outlives its request is a refcount leak
    /// exactly like a stray autograd tape node.
    pub fn assert_quiescent(&self) {
        let inner = self.inner.borrow();
        assert_eq!(
            inner.live_leases, 0,
            "prefix pool has {} outstanding lease(s)",
            inner.live_leases
        );
        debug_assert!(inner.entries.values().all(|e| e.refs == 0));
    }
}

/// A refcounted lease on one pooled prefix entry. Dropping the lease
/// releases the reference; the entry itself stays cached (subject to
/// LRU eviction) for the next request with the same template.
pub struct PrefixBlock {
    pool: Rc<RefCell<Inner>>,
    key: Vec<u32>,
}

impl PrefixBlock {
    /// Fork the cached KV state for private extension, together with a
    /// copy of the next-token logits after the prefix. The fork is a
    /// cheap per-layer `Rc` copy ([`KvCache::fork`]); extending it never
    /// mutates the pooled entry.
    pub fn fork(&self) -> (KvCache, Vec<f32>) {
        let inner = self.pool.borrow();
        // INVARIANT: a live lease pins its entry — eviction skips entries with
        // refs > 0 and drop is the only place refs reach 0.
        let e = inner.entries.get(&self.key).expect("leased entry resident");
        (e.cache.fork(), e.logits.clone())
    }

    /// The token prefix this lease covers.
    pub fn key(&self) -> &[u32] {
        &self.key
    }
}

impl Drop for PrefixBlock {
    fn drop(&mut self) {
        let mut inner = self.pool.borrow_mut();
        inner.live_leases = inner.live_leases.saturating_sub(1);
        if let Some(e) = inner.entries.get_mut(&self.key) {
            e.refs = e.refs.saturating_sub(1);
        }
        inner.enforce_capacity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::lm::CausalLm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lm(window: usize) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut cfg = ModelConfig::mistral_miniature(40);
        cfg.n_layers = 2;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        cfg.max_seq_len = 64;
        cfg.sliding_window = window;
        CausalLm::new(cfg, &mut rng)
    }

    fn toks(n: usize, salt: usize) -> Vec<u32> {
        (0..n).map(|i| ((i * 7 + salt * 13) % 40) as u32).collect()
    }

    /// The foundational claim of the whole prefix-sharing design:
    /// prefilling in two chunks is bit-identical to one chunk, within
    /// and beyond the sliding window.
    #[test]
    fn split_prefill_bit_identity() {
        for window in [64usize, 5] {
            let lm = tiny_lm(window);
            let prompt = toks(24, 9);
            let mut whole = lm.new_cache();
            let a = lm.prefill(&prompt, &mut whole);
            for split in [1usize, 8, 23] {
                let mut parts = lm.new_cache();
                let _ = lm.prefill(&prompt[..split], &mut parts);
                let b = lm.prefill(&prompt[split..], &mut parts);
                assert_eq!(a, b, "logits window={window} split={split}");
                let conts: Vec<Vec<u32>> = vec![toks(2, 11), toks(4, 12)];
                let refs: Vec<&[u32]> = conts.iter().map(Vec::as_slice).collect();
                assert_eq!(
                    lm.score_continuations_with_cache(&whole, &a, &refs),
                    lm.score_continuations_with_cache(&parts, &b, &refs),
                    "scores window={window} split={split}"
                );
            }
        }
    }

    #[test]
    fn acquire_miss_then_hit_roundtrip() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4);
        let prompt = toks(12, 1);
        assert!(pool.acquire(&prompt).is_none(), "cold pool misses");

        let mut cache = lm.new_cache();
        let logits = lm.prefill(&prompt[..6], &mut cache);
        let lease = pool.insert(&prompt[..6], cache, logits);
        drop(lease);

        let (block, len) = pool.acquire(&prompt).expect("warm pool hits");
        assert_eq!(len, 6);
        let (mut fork, row) = block.fork();
        assert_eq!(fork.pos, 6);
        let rest = lm.prefill(&prompt[6..], &mut fork);

        // Exactness: the pooled path reproduces the single-prefill bits.
        let mut whole = lm.new_cache();
        let full = lm.prefill(&prompt, &mut whole);
        assert_eq!(rest, full);
        // The stored logits are the prefix's own next-token row.
        let mut prefix_only = lm.new_cache();
        let expect_row = lm.prefill(&prompt[..6], &mut prefix_only);
        assert_eq!(row, expect_row);

        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn acquire_never_matches_whole_prompt() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4);
        let prompt = toks(8, 2);
        let mut cache = lm.new_cache();
        let logits = lm.prefill(&prompt, &mut cache);
        let _lease = pool.insert(&prompt, cache, logits);
        // The full prompt is cached, but acquire demands a strict prefix.
        assert!(pool.acquire(&prompt).is_none());
        // A longer prompt sharing the 8-token prefix does match.
        let longer = toks(10, 2);
        assert!(pool.acquire(&longer).is_some());
    }

    #[test]
    fn acquire_prefers_longest_prefix() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4);
        let prompt = toks(12, 3);
        for k in [3usize, 7] {
            let mut c = lm.new_cache();
            let l = lm.prefill(&prompt[..k], &mut c);
            drop(pool.insert(&prompt[..k], c, l));
        }
        let (_, len) = pool.acquire(&prompt).expect("hit");
        assert_eq!(len, 7, "longest cached prefix wins");
    }

    #[test]
    fn refcounts_pin_entries_against_eviction() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(2);
        let mk = |salt: usize| {
            let p = toks(6, salt);
            let mut c = lm.new_cache();
            let l = lm.prefill(&p, &mut c);
            (p, c, l)
        };
        let (p1, c1, l1) = mk(1);
        let (p2, c2, l2) = mk(2);
        let (p3, c3, l3) = mk(3);
        let lease1 = pool.insert(&p1, c1, l1);
        let lease2 = pool.insert(&p2, c2, l2);
        let lease3 = pool.insert(&p3, c3, l3);
        // All three leased: nothing evictable, pool exceeds capacity.
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.stats().live_leases, 3);
        // Releasing the oldest makes it the (only) eviction victim.
        drop(lease1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.acquire(&toks(7, 1)).is_none(), "entry 1 evicted");
        assert!(pool.acquire(&toks(7, 2)).is_some(), "entry 2 resident");
        drop(lease2);
        drop(lease3);
        pool.assert_quiescent();
    }

    #[test]
    fn lru_eviction_is_recency_ordered() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(2);
        for salt in 1..=2usize {
            let p = toks(6, salt);
            let mut c = lm.new_cache();
            let l = lm.prefill(&p, &mut c);
            drop(pool.insert(&p, c, l));
        }
        // Touch entry 1 so entry 2 becomes least recently used.
        drop(pool.acquire(&toks(8, 1)).expect("hit"));
        let p3 = toks(6, 3);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p3, &mut c);
        drop(pool.insert(&p3, c, l));
        assert!(pool.acquire(&toks(8, 1)).is_some(), "recently used kept");
        assert!(pool.acquire(&toks(8, 2)).is_none(), "LRU entry evicted");
        assert!(pool.acquire(&toks(8, 3)).is_some());
    }

    #[test]
    fn concurrent_style_interleaved_release_is_leak_free() {
        // Many overlapping leases on the same entry, released in an
        // interleaved (non-LIFO) order — the pattern a batch of
        // concurrent requests produces.
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(2);
        let p = toks(10, 4);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p[..5], &mut c);
        let seed_lease = pool.insert(&p[..5], c, l);
        let mut leases: Vec<PrefixBlock> =
            (0..8).map(|_| pool.acquire(&p).expect("hit").0).collect();
        assert_eq!(pool.stats().live_leases, 9);
        // Interleaved release: evens first, then odds, then the seed.
        for i in (0..8).step_by(2).chain((1..8).step_by(2)) {
            // Forks taken mid-release must stay valid.
            let (fork, _) = leases[i].fork();
            assert_eq!(fork.pos, 5);
            leases.push(pool.acquire(&p).expect("still resident").0);
        }
        leases.clear();
        drop(seed_lease);
        pool.assert_quiescent();
        assert_eq!(pool.len(), 1, "entry survives lease churn");
    }

    #[test]
    #[should_panic(expected = "outstanding lease")]
    fn quiescence_audit_catches_leaked_lease() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(2);
        let p = toks(6, 5);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p, &mut c);
        let _leak = pool.insert(&p, c, l);
        pool.assert_quiescent();
    }
}
