//! Token-level radix-trie KV prefix cache: longest-common-prefix reuse
//! of KV blocks across requests, generalizing [`KvCache::fork`] from
//! per-candidate to cross-request, cross-template sharing.
//!
//! In the serving workload every user prompt renders a long shared
//! instruction/template prefix followed by a short per-borrower suffix.
//! The old pool reused a KV block only on an **exact full-key match**,
//! so two prompts sharing 95% of their tokens prefilled from scratch.
//! This pool stores prefixes in a radix trie over token ids:
//! [`PrefixPool::acquire`] returns a leased block for the *longest
//! cached prefix* of the request's token ids, the caller prefills only
//! the remaining suffix, and re-inserts the extended prefix so the next
//! request with a longer shared prefix hits deeper.
//! [`PrefixPool::shared_prefix_len`] additionally exposes the structural
//! LCP with the trie (how far the walk matched, entries or not), which
//! the serving engine uses to seed an entry exactly at the divergence
//! point between borrowers — the shared template boundary discovers
//! itself from traffic.
//!
//! **Bitwise transparency.** Prefilling `prompt[..k]` and then
//! `prompt[k..]` produces bit-identical KV state and logits to one
//! prefill over the whole prompt: every per-position projection, RoPE
//! rotation, and norm depends only on that position's absolute index,
//! and masked attention entries (`-1e9` additive mask) underflow to an
//! exact `0.0` in the softmax, so chunk boundaries never change the
//! visible-key sums — including when the sliding window has already
//! trimmed keys out of the stored cache. The `split_prefill_bit_identity`
//! test below pins this for multi-way splits, which is what lets the
//! serving path reuse an arbitrary-length LCP and stay exact-`f64`
//! identical to the offline single-prefill evaluator.
//!
//! **Eviction** is least-recently-used under a **token budget** (not an
//! entry count): each cached entry is charged its prefix length in
//! tokens, and unleased entries are evicted LRU-first until the
//! resident total fits the budget. Leased entries are never evicted —
//! the pool may transiently exceed its budget while everything is
//! leased. Children are ordered in `BTreeMap`s and the recency stamp is
//! a monotonic tick, so every pool decision is a pure function of the
//! operation sequence and traces stay byte-identical across runs.
//!
//! The pool is deliberately single-threaded (`Rc`-based, like the
//! tensors inside [`KvCache`]): a parallel server gives each worker
//! replica its own pool, which keeps reuse hits deterministic per
//! worker and requires no locking on the decode hot path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::lm::KvCache;

/// Aggregate pool statistics (monotonic counters plus live state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// `acquire` calls that found a cached prefix.
    pub hits: u64,
    /// `acquire` calls that found nothing reusable.
    pub misses: u64,
    /// Prompt tokens served from cache across all hits (the LCP sum).
    pub hit_tokens: u64,
    /// Prompt tokens presented to `acquire` across all lookups (the
    /// denominator of the prefix-hit-token rate).
    pub lookup_tokens: u64,
    /// Entries inserted (including replacements of an existing key).
    pub inserts: u64,
    /// Entries evicted to respect the token budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Token-budget charge of the resident entries (sum of prefix
    /// lengths; an upper bound on stored KV when a sliding window trims).
    pub resident_tokens: usize,
    /// Outstanding leases across all entries.
    pub live_leases: usize,
}

impl PrefixStats {
    /// Fraction of presented prompt tokens served from cache, in
    /// `[0, 1]` (`0` when nothing was looked up).
    pub fn hit_token_rate(&self) -> f64 {
        if self.lookup_tokens == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / self.lookup_tokens as f64
        }
    }
}

/// A cached KV state at one trie node, covering the tokens from the
/// root to that node.
struct Entry {
    cache: KvCache,
    logits: Vec<f32>,
    refs: usize,
    /// Monotonic recency stamp (updated on acquire), for deterministic
    /// least-recently-used eviction.
    last_used: u64,
}

/// One radix-trie node. The edge *into* the node is labelled with
/// `label` (a non-empty token run for every node except the root);
/// `depth` is the total prefix length root..=label end.
struct Node {
    label: Vec<u32>,
    parent: usize,
    /// First token of each child's label -> child node index. BTreeMap
    /// keeps traversal order deterministic.
    children: BTreeMap<u32, usize>,
    entry: Option<Entry>,
    depth: usize,
    /// Slot recycled onto the free list (never traversed).
    freed: bool,
}

const ROOT: usize = 0;

struct Inner {
    nodes: Vec<Node>,
    free: Vec<usize>,
    budget_tokens: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    hit_tokens: u64,
    lookup_tokens: u64,
    inserts: u64,
    evictions: u64,
    entries: usize,
    resident_tokens: usize,
    live_leases: usize,
}

impl Inner {
    /// Walk the trie as far as `prompt` matches it. Returns
    /// `(node, matched, deepest_entry)` where `matched` is the
    /// structural LCP in tokens and `deepest_entry` is the deepest node
    /// on the walk holding an entry with `depth < prompt.len()` (strict
    /// prefix: at least one prompt token is always left to prefill).
    fn walk(&self, prompt: &[u32]) -> (usize, usize, Option<usize>) {
        let mut cur = ROOT;
        let mut matched = 0usize;
        let mut best: Option<usize> = None;
        loop {
            // INVARIANT: cur is always a live node index — it starts at the
            // root and only follows child links, which are kept in sync with
            // the arena.
            let node = &self.nodes[cur];
            if node.entry.is_some() && node.depth > 0 && node.depth < prompt.len() {
                best = Some(cur);
            }
            let next_tok = match prompt.get(matched) {
                Some(t) => *t,
                None => break,
            };
            let child = match node.children.get(&next_tok) {
                Some(c) => *c,
                None => break,
            };
            // INVARIANT: children only hold live node indices.
            let label = &self.nodes[child].label;
            let avail = &prompt[matched..];
            let common = label
                .iter()
                .zip(avail.iter())
                .take_while(|(a, b)| a == b)
                .count();
            matched += common;
            if common < label.len() {
                // Fell off mid-edge: the child's full prefix is not a
                // prefix of the prompt, and no deeper node can be.
                break;
            }
            cur = child;
        }
        (cur, matched, best)
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Find (creating / edge-splitting as needed) the node whose prefix
    /// is exactly `key`, and return its index. Splitting an edge keeps
    /// the deeper node's index (and depth) stable, so outstanding leases
    /// keep referring to the same logical prefix.
    fn node_for(&mut self, key: &[u32]) -> usize {
        let mut cur = ROOT;
        let mut matched = 0usize;
        while matched < key.len() {
            // INVARIANT: key is non-empty and matched < key.len() inside the
            // loop, so the index is in bounds.
            let next_tok = key[matched];
            let child = match self.nodes[cur].children.get(&next_tok) {
                Some(c) => *c,
                None => {
                    let leaf = self.alloc(Node {
                        label: key[matched..].to_vec(),
                        parent: cur,
                        children: BTreeMap::new(),
                        entry: None,
                        depth: key.len(),
                        freed: false,
                    });
                    self.nodes[cur].children.insert(next_tok, leaf);
                    return leaf;
                }
            };
            let label = self.nodes[child].label.clone();
            let avail = &key[matched..];
            let common = label
                .iter()
                .zip(avail.iter())
                .take_while(|(a, b)| a == b)
                .count();
            if common == label.len() {
                matched += common;
                cur = child;
                continue;
            }
            // Split the edge: `mid` takes the shared run, `child` keeps
            // the tail (index, entry, and children untouched).
            let mid = self.alloc(Node {
                label: label[..common].to_vec(),
                parent: cur,
                children: BTreeMap::new(),
                entry: None,
                depth: matched + common,
                freed: false,
            });
            self.nodes[child].label = label[common..].to_vec();
            self.nodes[child].parent = mid;
            // INVARIANT: common < label.len() here, so the tail label is
            // non-empty and has a first token.
            let tail_tok = self.nodes[child].label[0];
            self.nodes[mid].children.insert(tail_tok, child);
            self.nodes[cur].children.insert(next_tok, mid);
            matched += common;
            cur = mid;
        }
        cur
    }

    /// Remove the entry at `idx` and prune the now-useless chain of
    /// entry-less, childless nodes above it.
    fn remove_entry(&mut self, idx: usize) {
        // INVARIANT: callers pass live entry-holding node indices.
        let depth = self.nodes[idx].depth;
        self.nodes[idx].entry = None;
        self.entries -= 1;
        self.resident_tokens -= depth;
        let mut cur = idx;
        while cur != ROOT && self.nodes[cur].entry.is_none() && self.nodes[cur].children.is_empty()
        {
            let parent = self.nodes[cur].parent;
            // INVARIANT: a non-root node's label is non-empty by
            // construction, so it has a first token keying it in its parent.
            let first = self.nodes[cur].label[0];
            self.nodes[parent].children.remove(&first);
            self.nodes[cur].freed = true;
            self.nodes[cur].label = Vec::new();
            self.free.push(cur);
            cur = parent;
        }
    }

    /// Evict unleased entries, least-recently-used first, until the
    /// resident token total fits the budget. Leased entries are never
    /// evicted (the pool may transiently exceed its budget while every
    /// entry is leased).
    fn enforce_budget(&mut self) {
        while self.resident_tokens > self.budget_tokens {
            let victim = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| !n.freed)
                .filter_map(|(i, n)| n.entry.as_ref().map(|e| (i, e)))
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.remove_entry(i);
                    self.evictions += 1;
                    zg_trace::counter_add("prefix.evictions", 1.0);
                }
                None => break,
            }
        }
        zg_trace::gauge_set("prefix.resident_tokens", self.resident_tokens as f64);
    }
}

/// A radix-trie pool of refcounted prefix KV blocks.
///
/// Cloning shares the pool (it is a handle, like the `Rc` tensors it
/// stores).
#[derive(Clone)]
pub struct PrefixPool {
    inner: Rc<RefCell<Inner>>,
}

impl PrefixPool {
    /// A pool retaining at most `budget_tokens` tokens of unleased
    /// cached prefixes (each entry is charged its prefix length).
    pub fn new(budget_tokens: usize) -> PrefixPool {
        assert!(
            budget_tokens > 0,
            "prefix pool token budget must be positive"
        );
        PrefixPool {
            inner: Rc::new(RefCell::new(Inner {
                nodes: vec![Node {
                    label: Vec::new(),
                    parent: ROOT,
                    children: BTreeMap::new(),
                    entry: None,
                    depth: 0,
                    freed: false,
                }],
                free: Vec::new(),
                budget_tokens,
                tick: 0,
                hits: 0,
                misses: 0,
                hit_tokens: 0,
                lookup_tokens: 0,
                inserts: 0,
                evictions: 0,
                entries: 0,
                resident_tokens: 0,
                live_leases: 0,
            })),
        }
    }

    /// Look up the longest cached prefix of `prompt` — the deepest
    /// entry on the trie walk whose prefix is a *strict* prefix of
    /// `prompt` — and lease it. Returns the lease and the matched
    /// prefix length, or `None` (a miss) when nothing reusable is
    /// cached. The strictness guarantee means at least one prompt token
    /// always remains for the caller to prefill, so the caller always
    /// obtains fresh next-token logits for the full prompt.
    pub fn acquire(&self, prompt: &[u32]) -> Option<(PrefixBlock, usize)> {
        let mut inner = self.inner.borrow_mut();
        inner.lookup_tokens += prompt.len() as u64;
        let (_, _, best) = inner.walk(prompt);
        match best {
            Some(idx) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.hits += 1;
                inner.live_leases += 1;
                // INVARIANT: walk only reports live entry-holding nodes and
                // the map is not touched in between.
                let node = &mut inner.nodes[idx];
                let len = node.depth;
                // INVARIANT: walk only reports entry-holding nodes (see above).
                let e = node.entry.as_mut().expect("walk reported an entry");
                e.refs += 1;
                e.last_used = tick;
                inner.hit_tokens += len as u64;
                zg_trace::counter_add("prefix.hits", 1.0);
                zg_trace::counter_add("prefix.hit_tokens", len as f64);
                zg_trace::hist_record("prefix.lcp_tokens", len as f64);
                drop(inner);
                Some((
                    PrefixBlock {
                        pool: Rc::clone(&self.inner),
                        node: idx,
                        len,
                    },
                    len,
                ))
            }
            None => {
                inner.misses += 1;
                zg_trace::counter_add("prefix.misses", 1.0);
                zg_trace::hist_record("prefix.lcp_tokens", 0.0);
                None
            }
        }
    }

    /// Structural LCP between `prompt` and the trie: how many leading
    /// prompt tokens the trie already spells out (entries or not),
    /// clamped to a strict prefix of `prompt`. The serving engine seeds
    /// an entry at this boundary — it is exactly where this prompt
    /// diverges from previously-seen traffic, i.e. the shared template
    /// prefix as discovered from the requests themselves.
    pub fn shared_prefix_len(&self, prompt: &[u32]) -> usize {
        let inner = self.inner.borrow();
        let (_, matched, _) = inner.walk(prompt);
        matched.min(prompt.len().saturating_sub(1))
    }

    /// Insert the KV state (and next-token logits) of a freshly
    /// prefilled prefix under `key`, returning a lease on it. Inserting
    /// over an existing key replaces its cache/logits while preserving
    /// outstanding leases (they only pin the refcount, not the tensors).
    pub fn insert(&self, key: &[u32], cache: KvCache, logits: Vec<f32>) -> PrefixBlock {
        assert!(!key.is_empty(), "prefix key must be non-empty");
        assert_eq!(
            cache.pos,
            key.len(),
            "cache position must equal the prefix length"
        );
        let mut inner = self.inner.borrow_mut();
        inner.tick += 1;
        let tick = inner.tick;
        inner.inserts += 1;
        inner.live_leases += 1;
        let idx = inner.node_for(key);
        let node = &mut inner.nodes[idx];
        match node.entry.as_mut() {
            Some(e) => {
                e.cache = cache;
                e.logits = logits;
                e.refs += 1;
                e.last_used = tick;
            }
            None => {
                node.entry = Some(Entry {
                    cache,
                    logits,
                    refs: 1,
                    last_used: tick,
                });
                inner.entries += 1;
                inner.resident_tokens += key.len();
            }
        }
        inner.enforce_budget();
        zg_trace::counter_add("prefix.inserts", 1.0);
        PrefixBlock {
            pool: Rc::clone(&self.inner),
            node: idx,
            len: key.len(),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PrefixStats {
        let inner = self.inner.borrow();
        PrefixStats {
            hits: inner.hits,
            misses: inner.misses,
            hit_tokens: inner.hit_tokens,
            lookup_tokens: inner.lookup_tokens,
            inserts: inner.inserts,
            evictions: inner.evictions,
            entries: inner.entries,
            resident_tokens: inner.resident_tokens,
            live_leases: inner.live_leases,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries
    }

    /// Whether the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assert the pool is quiescent: no outstanding leases anywhere.
    /// The serving engine calls this between requests in its leak
    /// audits — a lease that outlives its request is a refcount leak
    /// exactly like a stray autograd tape node.
    pub fn assert_quiescent(&self) {
        let inner = self.inner.borrow();
        assert_eq!(
            inner.live_leases, 0,
            "prefix pool has {} outstanding lease(s)",
            inner.live_leases
        );
        debug_assert!(inner
            .nodes
            .iter()
            .filter(|n| !n.freed)
            .all(|n| n.entry.as_ref().is_none_or(|e| e.refs == 0)));
    }
}

/// A refcounted lease on one pooled prefix entry. Dropping the lease
/// releases the reference; the entry itself stays cached (subject to
/// token-budget LRU eviction) for the next request sharing the prefix.
pub struct PrefixBlock {
    pool: Rc<RefCell<Inner>>,
    node: usize,
    len: usize,
}

impl PrefixBlock {
    /// Fork the cached KV state for private extension, together with a
    /// copy of the next-token logits after the prefix. The fork is a
    /// cheap per-layer `Rc` copy ([`KvCache::fork`]); extending it never
    /// mutates the pooled entry.
    pub fn fork(&self) -> (KvCache, Vec<f32>) {
        let inner = self.pool.borrow();
        // INVARIANT: a live lease pins its entry — eviction skips entries
        // with refs > 0 and drop is the only place refs reach 0 — and edge
        // splits never move or renumber entry-holding nodes.
        let e = inner.nodes[self.node]
            .entry
            .as_ref()
            // INVARIANT: the lease above pins the entry resident.
            .expect("leased entry resident");
        (e.cache.fork(), e.logits.clone())
    }

    /// Token length of the prefix this lease covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the lease covers an empty prefix (never true: keys are
    /// non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for PrefixBlock {
    fn drop(&mut self) {
        let mut inner = self.pool.borrow_mut();
        inner.live_leases = inner.live_leases.saturating_sub(1);
        if let Some(e) = inner.nodes[self.node].entry.as_mut() {
            e.refs = e.refs.saturating_sub(1);
        }
        inner.enforce_budget();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::lm::CausalLm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lm(window: usize) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut cfg = ModelConfig::mistral_miniature(40);
        cfg.n_layers = 2;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        cfg.max_seq_len = 64;
        cfg.sliding_window = window;
        CausalLm::new(cfg, &mut rng)
    }

    fn toks(n: usize, salt: usize) -> Vec<u32> {
        (0..n).map(|i| ((i * 7 + salt * 13) % 40) as u32).collect()
    }

    /// The foundational claim of the whole prefix-sharing design:
    /// prefilling in chunks — two-way and three-way splits — is
    /// bit-identical to one chunk, within and beyond the sliding window.
    #[test]
    fn split_prefill_bit_identity() {
        for window in [64usize, 5] {
            let lm = tiny_lm(window);
            let prompt = toks(24, 9);
            let mut whole = lm.new_cache();
            let a = lm.prefill(&prompt, &mut whole);
            for split in [1usize, 8, 23] {
                let mut parts = lm.new_cache();
                let _ = lm.prefill(&prompt[..split], &mut parts);
                let b = lm.prefill(&prompt[split..], &mut parts);
                assert_eq!(a, b, "logits window={window} split={split}");
                let conts: Vec<Vec<u32>> = vec![toks(2, 11), toks(4, 12)];
                let refs: Vec<&[u32]> = conts.iter().map(Vec::as_slice).collect();
                assert_eq!(
                    lm.score_continuations_with_cache(&whole, &a, &refs),
                    lm.score_continuations_with_cache(&parts, &b, &refs),
                    "scores window={window} split={split}"
                );
            }
            // Three-way split: the LCP-reuse path prefills prefix,
            // divergence-to-extended, then the final token.
            let mut parts = lm.new_cache();
            let _ = lm.prefill(&prompt[..6], &mut parts);
            let _ = lm.prefill(&prompt[6..23], &mut parts);
            let c = lm.prefill(&prompt[23..], &mut parts);
            assert_eq!(a, c, "three-way split window={window}");
        }
    }

    #[test]
    fn acquire_miss_then_hit_roundtrip() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4096);
        let prompt = toks(12, 1);
        assert!(pool.acquire(&prompt).is_none(), "cold pool misses");
        assert_eq!(pool.shared_prefix_len(&prompt), 0);

        let mut cache = lm.new_cache();
        let logits = lm.prefill(&prompt[..6], &mut cache);
        let lease = pool.insert(&prompt[..6], cache, logits);
        drop(lease);

        let (block, len) = pool.acquire(&prompt).expect("warm pool hits");
        assert_eq!(len, 6);
        assert_eq!(block.len(), 6);
        let (mut fork, row) = block.fork();
        assert_eq!(fork.pos, 6);
        let rest = lm.prefill(&prompt[6..], &mut fork);

        // Exactness: the pooled path reproduces the single-prefill bits.
        let mut whole = lm.new_cache();
        let full = lm.prefill(&prompt, &mut whole);
        assert_eq!(rest, full);
        // The stored logits are the prefix's own next-token row.
        let mut prefix_only = lm.new_cache();
        let expect_row = lm.prefill(&prompt[..6], &mut prefix_only);
        assert_eq!(row, expect_row);

        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.hit_tokens, 6);
        assert_eq!(s.lookup_tokens, 24);
        assert_eq!(s.resident_tokens, 6);
    }

    #[test]
    fn acquire_never_matches_whole_prompt() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4096);
        let prompt = toks(8, 2);
        let mut cache = lm.new_cache();
        let logits = lm.prefill(&prompt, &mut cache);
        let _lease = pool.insert(&prompt, cache, logits);
        // The full prompt is cached, but acquire demands a strict prefix.
        assert!(pool.acquire(&prompt).is_none());
        // Likewise the structural LCP is clamped strictly below.
        assert_eq!(pool.shared_prefix_len(&prompt), prompt.len() - 1);
        // A longer prompt sharing the 8-token prefix does match.
        let longer = toks(10, 2);
        assert!(pool.acquire(&longer).is_some());
    }

    /// The radix upgrade itself: a cached prefix is found even when no
    /// stored key exactly prefixes the query at its full length — the
    /// trie returns the longest *common* prefix entry, where the old
    /// exact-match pool scored a miss.
    #[test]
    fn lcp_lookup_reuses_across_diverging_suffixes() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4096);
        let a: Vec<u32> = (0..16).collect();
        let mut cache = lm.new_cache();
        let logits = lm.prefill(&a, &mut cache);
        drop(pool.insert(&a, cache, logits));
        // Borrower B shares 10 tokens then diverges: structural LCP is
        // 10, but no *entry* lives at 10 yet, so acquire misses while
        // shared_prefix_len pinpoints the divergence boundary.
        let mut b: Vec<u32> = (0..10).collect();
        b.extend([30u32, 31, 32, 33]);
        assert!(pool.acquire(&b).is_none());
        assert_eq!(pool.shared_prefix_len(&b), 10);
        // Seeding an entry at the divergence point (what the serving
        // engine does) turns every later same-template request into a hit.
        let mut cache = lm.new_cache();
        let logits = lm.prefill(&b[..10], &mut cache);
        drop(pool.insert(&b[..10], cache, logits));
        let (_, len) = pool.acquire(&b).expect("header entry hits");
        assert_eq!(len, 10);
        // And the original full-prefix entry still wins for prompts that
        // extend it.
        let mut a_long = a.clone();
        a_long.push(39);
        let (_, len) = pool.acquire(&a_long).expect("deep entry hits");
        assert_eq!(len, 16);
    }

    #[test]
    fn acquire_prefers_longest_prefix() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4096);
        let prompt = toks(12, 3);
        for k in [3usize, 7] {
            let mut c = lm.new_cache();
            let l = lm.prefill(&prompt[..k], &mut c);
            drop(pool.insert(&prompt[..k], c, l));
        }
        let (_, len) = pool.acquire(&prompt).expect("hit");
        assert_eq!(len, 7, "longest cached prefix wins");
    }

    #[test]
    fn refcounts_pin_entries_against_eviction() {
        let lm = tiny_lm(64);
        // Budget fits two 6-token entries, not three.
        let pool = PrefixPool::new(12);
        let mk = |salt: usize| {
            let p = toks(6, salt);
            let mut c = lm.new_cache();
            let l = lm.prefill(&p, &mut c);
            (p, c, l)
        };
        let (p1, c1, l1) = mk(1);
        let (p2, c2, l2) = mk(2);
        let (p3, c3, l3) = mk(3);
        let lease1 = pool.insert(&p1, c1, l1);
        let lease2 = pool.insert(&p2, c2, l2);
        let lease3 = pool.insert(&p3, c3, l3);
        // All three leased: nothing evictable, pool exceeds its budget.
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.stats().live_leases, 3);
        assert_eq!(pool.stats().resident_tokens, 18);
        // Releasing the oldest makes it the (only) eviction victim.
        drop(lease1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().resident_tokens, 12);
        assert!(pool.acquire(&toks(7, 1)).is_none(), "entry 1 evicted");
        assert!(pool.acquire(&toks(7, 2)).is_some(), "entry 2 resident");
        drop(lease2);
        drop(lease3);
        pool.assert_quiescent();
    }

    #[test]
    fn lru_eviction_is_recency_ordered() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(12);
        for salt in 1..=2usize {
            let p = toks(6, salt);
            let mut c = lm.new_cache();
            let l = lm.prefill(&p, &mut c);
            drop(pool.insert(&p, c, l));
        }
        // Touch entry 1 so entry 2 becomes least recently used.
        drop(pool.acquire(&toks(8, 1)).expect("hit"));
        let p3 = toks(6, 3);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p3, &mut c);
        drop(pool.insert(&p3, c, l));
        assert!(pool.acquire(&toks(8, 1)).is_some(), "recently used kept");
        assert!(pool.acquire(&toks(8, 2)).is_none(), "LRU entry evicted");
        assert!(pool.acquire(&toks(8, 3)).is_some());
    }

    /// Eviction under a token budget prunes trie structure too: after a
    /// deep entry is evicted, its chain of entry-less nodes is removed
    /// and the slots are recycled by later inserts.
    #[test]
    fn eviction_prunes_and_recycles_nodes() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(8);
        let p1 = toks(8, 1);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p1, &mut c);
        drop(pool.insert(&p1, c, l));
        assert_eq!(pool.stats().resident_tokens, 8);
        // Budget 8: inserting another 8-token entry evicts the first.
        let p2 = toks(8, 2);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p2, &mut c);
        drop(pool.insert(&p2, c, l));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.acquire(&toks(9, 1)).is_none());
        assert!(pool.acquire(&toks(9, 2)).is_some());
        // The pruned structure no longer contributes to the shared LCP.
        assert_eq!(pool.shared_prefix_len(&toks(9, 1)), 0);
    }

    #[test]
    fn concurrent_style_interleaved_release_is_leak_free() {
        // Many overlapping leases on the same entry, released in an
        // interleaved (non-LIFO) order — the pattern a batch of
        // concurrent requests produces.
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(64);
        let p = toks(10, 4);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p[..5], &mut c);
        let seed_lease = pool.insert(&p[..5], c, l);
        let mut leases: Vec<PrefixBlock> =
            (0..8).map(|_| pool.acquire(&p).expect("hit").0).collect();
        assert_eq!(pool.stats().live_leases, 9);
        // Interleaved release: evens first, then odds, then the seed.
        for i in (0..8).step_by(2).chain((1..8).step_by(2)) {
            // Forks taken mid-release must stay valid.
            let (fork, _) = leases[i].fork();
            assert_eq!(fork.pos, 5);
            leases.push(pool.acquire(&p).expect("still resident").0);
        }
        leases.clear();
        drop(seed_lease);
        pool.assert_quiescent();
        assert_eq!(pool.len(), 1, "entry survives lease churn");
    }

    /// Edge splits keep outstanding leases valid: inserting a key that
    /// splits the edge below a leased entry must not move the leased
    /// node, and forks taken after the split stay correct.
    #[test]
    fn edge_split_preserves_outstanding_leases() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(4096);
        let deep: Vec<u32> = (0..12).collect();
        let mut c = lm.new_cache();
        let l = lm.prefill(&deep, &mut c);
        let lease = pool.insert(&deep, c, l.clone());
        // Insert a key that forces a split inside the 12-token edge.
        let shallow: Vec<u32> = (0..5).collect();
        let mut c = lm.new_cache();
        let l5 = lm.prefill(&shallow, &mut c);
        drop(pool.insert(&shallow, c, l5));
        // The original lease still forks the deep entry.
        let (fork, row) = lease.fork();
        assert_eq!(fork.pos, 12);
        assert_eq!(row, l);
        // Both entries are found at their lengths.
        let mut probe = deep.clone();
        probe.push(39);
        let (_, len) = pool.acquire(&probe).expect("deep hit");
        assert_eq!(len, 12);
        let probe6: Vec<u32> = (0..6).collect();
        let (_, len) = pool.acquire(&probe6).expect("shallow hit");
        assert_eq!(len, 5);
        drop(lease);
        pool.assert_quiescent();
    }

    #[test]
    #[should_panic(expected = "outstanding lease")]
    fn quiescence_audit_catches_leaked_lease() {
        let lm = tiny_lm(64);
        let pool = PrefixPool::new(64);
        let p = toks(6, 5);
        let mut c = lm.new_cache();
        let l = lm.prefill(&p, &mut c);
        let _leak = pool.insert(&p, c, l);
        pool.assert_quiescent();
    }
}
