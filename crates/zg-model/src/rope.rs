//! Rotary position embeddings (RoPE), implemented as a custom
//! differentiable op: the backward pass is the inverse rotation.

use zg_tensor::Tensor;

/// Precomputed cos/sin tables for RoPE, indexed `[position][pair]`.
pub struct RopeCache {
    cos: Vec<f32>,
    sin: Vec<f32>,
    half: usize,
    max_pos: usize,
}

impl RopeCache {
    /// Build tables for head dimension `head_dim` (must be even) up to
    /// `max_pos` positions with base frequency `theta`.
    pub fn new(head_dim: usize, max_pos: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE needs an even head dim");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_pos * half);
        let mut sin = Vec::with_capacity(max_pos * half);
        for pos in 0..max_pos {
            for i in 0..half {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        RopeCache {
            cos,
            sin,
            half,
            max_pos,
        }
    }

    /// Rotate `x` of shape `(batch, heads, time, head_dim)`, where sequence
    /// position `t` maps to absolute position `pos_offset + t` (the offset
    /// supports KV-cache decoding).
    pub fn apply(&self, x: &Tensor, pos_offset: usize) -> Tensor {
        let dims = x.dims().to_vec();
        assert_eq!(dims.len(), 4, "RoPE expects (B, H, T, hd)");
        let (b, h, t, hd) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(hd, self.half * 2, "head dim mismatch");
        assert!(
            pos_offset + t <= self.max_pos,
            "position {} exceeds RoPE table {}",
            pos_offset + t,
            self.max_pos
        );
        let rotate = |src: &[f32], invert: bool| -> Vec<f32> {
            let mut out = vec![0.0f32; src.len()];
            for bi in 0..b * h {
                for ti in 0..t {
                    let base = (bi * t + ti) * hd;
                    let tab = (pos_offset + ti) * self.half;
                    for i in 0..self.half {
                        let (c, mut s) = (self.cos[tab + i], self.sin[tab + i]);
                        if invert {
                            s = -s;
                        }
                        let x0 = src[base + 2 * i];
                        let x1 = src[base + 2 * i + 1];
                        out[base + 2 * i] = x0 * c - x1 * s;
                        out[base + 2 * i + 1] = x0 * s + x1 * c;
                    }
                }
            }
            out
        };
        let data = rotate(&x.data(), false);
        let cos = self.cos.clone();
        let sin = self.sin.clone();
        let half = self.half;
        let parent = x.clone();
        Tensor::custom(data, dims.clone(), vec![x.clone()], move |out| {
            // INVARIANT: backward closures only run once the output gradient is seeded.
            let g = out.grad().expect("missing output grad");
            // Inverse rotation of the gradient.
            let mut gx = vec![0.0f32; g.len()];
            for bi in 0..b * h {
                for ti in 0..t {
                    let base = (bi * t + ti) * hd;
                    let tab = (pos_offset + ti) * half;
                    for i in 0..half {
                        let (c, s) = (cos[tab + i], sin[tab + i]);
                        let g0 = g[base + 2 * i];
                        let g1 = g[base + 2 * i + 1];
                        gx[base + 2 * i] = g0 * c + g1 * s;
                        gx[base + 2 * i + 1] = -g0 * s + g1 * c;
                    }
                }
            }
            if parent.requires_grad() {
                parent.accumulate_grad(&gx);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_zero_is_identity() {
        let cache = RopeCache::new(4, 8, 10_000.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 1, 4]);
        let y = cache.apply(&x, 0);
        for (a, b) in x.to_vec().iter().zip(y.to_vec()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let cache = RopeCache::new(8, 16, 10_000.0);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 - 3.5).collect(), [1, 1, 1, 8]);
        let y = cache.apply(&x, 7);
        let nx: f32 = x.to_vec().iter().map(|v| v * v).sum();
        let ny: f32 = y.to_vec().iter().map(|v| v * v).sum();
        assert!((nx - ny).abs() < 1e-4);
    }

    #[test]
    fn relative_position_property() {
        // <q_m, k_n> after RoPE depends only on (m - n): shift both by the
        // same offset and the dot product is unchanged.
        let cache = RopeCache::new(4, 32, 10_000.0);
        let q = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2], [1, 1, 1, 4]);
        let k = Tensor::from_vec(vec![-0.5, 0.9, 0.4, -1.3], [1, 1, 1, 4]);
        let dot = |a: &Tensor, b: &Tensor| -> f32 {
            a.to_vec().iter().zip(b.to_vec()).map(|(x, y)| x * y).sum()
        };
        let d1 = dot(&cache.apply(&q, 5), &cache.apply(&k, 2));
        let d2 = dot(&cache.apply(&q, 15), &cache.apply(&k, 12));
        assert!((d1 - d2).abs() < 1e-4, "{d1} vs {d2}");
    }

    #[test]
    fn backward_is_inverse_rotation() {
        let cache = RopeCache::new(4, 8, 10_000.0);
        let x = Tensor::param(vec![0.5, -0.5, 1.0, 2.0], [1, 1, 1, 4]);
        let y = cache.apply(&x, 3);
        // d(sum y)/dx: rotate the ones-vector backwards; norm preserved.
        y.sum().backward();
        let g = x.grad().unwrap();
        let norm: f32 = g.iter().map(|v| v * v).sum();
        assert!((norm - 4.0).abs() < 1e-4);
    }

    #[test]
    fn gradcheck_numeric() {
        let cache = RopeCache::new(4, 8, 10_000.0);
        let xv = vec![0.2f32, 0.8, -0.3, 0.4];
        let weights = [1.0f32, -2.0, 0.5, 3.0];
        let f = |xv: &[f32]| -> f32 {
            let x = Tensor::from_vec(xv.to_vec(), [1, 1, 1, 4]);
            let y = cache.apply(&x, 2);
            y.to_vec().iter().zip(&weights).map(|(&a, &w)| a * w).sum()
        };
        let x = Tensor::param(xv.clone(), [1, 1, 1, 4]);
        let y = cache.apply(&x, 2);
        y.mul(&Tensor::from_vec(weights.to_vec(), [1, 1, 1, 4]))
            .sum()
            .backward();
        let g = x.grad().unwrap();
        let h = 1e-3;
        for i in 0..4 {
            let mut p = xv.clone();
            p[i] += h;
            let mut m = xv.clone();
            m[i] -= h;
            let num = (f(&p) - f(&m)) / (2.0 * h);
            assert!((g[i] - num).abs() < 1e-2, "{} vs {}", g[i], num);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds RoPE table")]
    fn position_overflow_panics() {
        let cache = RopeCache::new(4, 4, 10_000.0);
        let x = Tensor::zeros([1, 1, 2, 4]);
        cache.apply(&x, 3);
    }
}
