//! Decoding strategies beyond greedy/temperature: top-k, nucleus (top-p),
//! and repetition penalty — plus perplexity evaluation, the standard
//! language-modeling quality measure for the pretraining stage.

use rand::Rng;

use crate::lm::{sample_logits, CausalLm};

/// Decoding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Softmax temperature; `0` = greedy.
    pub temperature: f32,
    /// Keep only the `k` most likely tokens (`0` = disabled).
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest set with cumulative probability
    /// ≥ `top_p` (`1.0` = disabled).
    pub top_p: f32,
    /// Divide logits of already-generated tokens by this factor
    /// (`1.0` = disabled).
    pub repetition_penalty: f32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            repetition_penalty: 1.0,
        }
    }
}

impl SamplingConfig {
    /// Greedy decoding.
    pub fn greedy() -> Self {
        Self::default()
    }

    /// Typical creative sampling: temperature 0.8, nucleus 0.95.
    pub fn nucleus(temperature: f32, top_p: f32) -> Self {
        SamplingConfig {
            temperature,
            top_p,
            ..Self::default()
        }
    }
}

/// Apply the configured filters to raw logits and sample a token id.
pub fn sample_filtered(
    logits: &[f32],
    cfg: &SamplingConfig,
    history: &[u32],
    rng: &mut impl Rng,
) -> u32 {
    let mut logits = logits.to_vec();
    // Repetition penalty (CTRL-style): dampen already-emitted tokens.
    if cfg.repetition_penalty != 1.0 {
        for &tok in history {
            let l = &mut logits[tok as usize];
            *l = if *l > 0.0 {
                *l / cfg.repetition_penalty
            } else {
                *l * cfg.repetition_penalty
            };
        }
    }
    // Top-k filter.
    if cfg.top_k > 0 && cfg.top_k < logits.len() {
        let mut sorted: Vec<f32> = logits.clone();
        // INVARIANT: NaN logits are a caller bug; fail loudly rather than mis-rank.
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
        let cutoff = sorted[cfg.top_k - 1];
        for l in &mut logits {
            if *l < cutoff {
                *l = f32::NEG_INFINITY;
            }
        }
    }
    // Nucleus (top-p) filter.
    if cfg.top_p < 1.0 {
        let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        let mut order: Vec<usize> = (0..logits.len()).collect();
        // INVARIANT: NaN logits are a caller bug; fail loudly rather than mis-rank.
        order.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite"));
        let mut cum = 0.0f32;
        let mut keep = vec![false; logits.len()];
        for &i in &order {
            keep[i] = true;
            cum += exps[i] / z;
            if cum >= cfg.top_p {
                break;
            }
        }
        for (l, k) in logits.iter_mut().zip(&keep) {
            if !k {
                *l = f32::NEG_INFINITY;
            }
        }
    }
    sample_logits(&logits, cfg.temperature, rng)
}

impl CausalLm {
    /// Generate with a full [`SamplingConfig`]; otherwise identical to
    /// [`CausalLm::generate`].
    pub fn generate_with(
        &self,
        prompt: &[u32],
        max_new: usize,
        cfg: &SamplingConfig,
        eos: u32,
        rng: &mut impl Rng,
    ) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let mut cache = self.new_cache();
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.step(t, &mut cache);
        }
        let mut out: Vec<u32> = Vec::new();
        for _ in 0..max_new {
            let next = sample_filtered(&logits, cfg, &out, rng);
            if next == eos {
                break;
            }
            out.push(next);
            logits = self.step(next, &mut cache);
        }
        out
    }

    /// Perplexity of a token sequence under the model: `exp(mean NLL)`
    /// over the next-token predictions.
    pub fn perplexity(&self, tokens: &[u32]) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        zg_tensor::no_grad(|| {
            let t = tokens.len();
            let logits = self.forward(tokens, 1, t);
            let logp = logits.reshape([t, self.cfg.vocab_size]).log_softmax();
            let lp = logp.data();
            let v = self.cfg.vocab_size;
            let mut nll = 0.0f32;
            for pos in 0..t - 1 {
                nll -= lp[pos * v + tokens[pos + 1] as usize];
            }
            (nll / (t - 1) as f32).exp()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lm() -> CausalLm {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ModelConfig::mistral_miniature(24);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        CausalLm::new(cfg, &mut rng)
    }

    #[test]
    fn top_k_restricts_support() {
        let logits = vec![5.0, 4.0, 3.0, -10.0];
        let cfg = SamplingConfig {
            temperature: 1.0,
            top_k: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let t = sample_filtered(&logits, &cfg, &[], &mut rng);
            assert!(t < 2, "token {t} outside top-2");
        }
    }

    #[test]
    fn nucleus_keeps_minimal_mass() {
        // One dominant token: p ≈ 0.97 → top_p 0.9 keeps only it.
        let logits = vec![10.0, 5.0, 5.0, 5.0];
        let cfg = SamplingConfig {
            temperature: 1.0,
            top_p: 0.9,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            assert_eq!(sample_filtered(&logits, &cfg, &[], &mut rng), 0);
        }
    }

    #[test]
    fn repetition_penalty_discourages_repeats() {
        let logits = vec![2.0, 1.9];
        let cfg = SamplingConfig {
            temperature: 0.0,
            repetition_penalty: 2.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        // With token 0 in history its logit halves → token 1 wins.
        assert_eq!(sample_filtered(&logits, &cfg, &[0], &mut rng), 1);
        assert_eq!(sample_filtered(&logits, &cfg, &[], &mut rng), 0);
    }

    #[test]
    fn greedy_config_matches_plain_generate() {
        let lm = tiny_lm();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = lm.generate(&[1, 2, 3], 5, 0.0, 2, &mut r1);
        let b = lm.generate_with(&[1, 2, 3], 5, &SamplingConfig::greedy(), 2, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn perplexity_bounded_by_vocab() {
        let lm = tiny_lm();
        let ppl = lm.perplexity(&[1, 5, 9, 2, 7]);
        assert!(ppl.is_finite() && ppl > 1.0);
        // An untrained model is near-uniform: ppl ≈ vocab size.
        assert!(ppl < 24.0 * 3.0, "ppl {ppl}");
    }

    #[test]
    fn perplexity_drops_after_memorizing() {
        let lm = tiny_lm();
        for (_, p) in lm.params() {
            p.set_requires_grad(true);
        }
        let seq = [1u32, 5, 9, 2, 7, 3, 1, 5];
        let before = lm.perplexity(&seq);
        let params = lm.params();
        let mut opt = crate::optim::AdamW::new(0.01, 0.0);
        for _ in 0..60 {
            let labels: Vec<u32> = seq[1..].iter().copied().chain([0]).collect();
            let loss = lm.sft_loss(&seq, &labels, 1, seq.len(), 0);
            loss.backward();
            opt.step(&params);
        }
        let after = lm.perplexity(&seq);
        assert!(after < before * 0.5, "ppl {before} -> {after}");
    }
}
