//! [`LmSpec`]: a `Send` blueprint of a [`CausalLm`].
//!
//! `CausalLm` tensors are `Rc`-backed and cannot cross threads, so any
//! parallel engine (the evaluator's worker pool, the trainer's
//! data-parallel gradient accumulation) ships this plain-data spec to each
//! worker and rebuilds a private replica there.
//!
//! Replicas are exact: every parameter (base weights *and* adapter
//! matrices) is restored by name, adapter slots are recreated *before* the
//! name-matched restore (the `lora_a`/`lora_b` names only exist once the
//! slot does), and — unlike a bare checkpoint — each parameter's
//! `requires_grad` flag is carried along, so a replica of a LoRA-frozen
//! model reports the same `trainable_params()` set as the original. That
//! last part is what makes the spec usable for *training* replicas, not
//! just inference ones.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_tensor::Tensor;

use crate::config::ModelConfig;
use crate::layers::Adapter;
use crate::lm::CausalLm;

/// Plain-data blueprint of a [`CausalLm`]: configuration, raw `f32` weight
/// buffers with their gradient flags, and LoRA adapter geometry.
#[derive(Clone)]
pub struct LmSpec {
    cfg: ModelConfig,
    /// `(name, data, requires_grad)` per parameter, in [`CausalLm::params`]
    /// order.
    weights: Vec<(String, Vec<f32>, bool)>,
    /// Per block, per q/k/v/o projection: `(rank, scale)` of an attached
    /// adapter.
    adapters: Vec<[Option<(usize, f32)>; 4]>,
    /// Whether the snapshotted model held int8 calibrations; replicas
    /// re-calibrate after restoring weights (calibration is a pure
    /// function of the weights, so replicas stay bit-identical).
    quantized: bool,
}

impl LmSpec {
    /// Snapshot `lm` into a thread-shippable blueprint.
    pub fn snapshot(lm: &CausalLm) -> LmSpec {
        let weights = lm
            .params()
            .into_iter()
            .map(|(name, p)| {
                let data = p.data().to_vec();
                let rg = p.requires_grad();
                (name, data, rg)
            })
            .collect();
        let adapters = lm
            .blocks
            .iter()
            .map(|b| {
                let projs = b.attn.projections();
                [0, 1, 2, 3].map(|i| {
                    projs[i]
                        .adapter
                        .as_ref()
                        .map(|ad| (ad.a.dims()[1], ad.scale))
                })
            })
            .collect();
        LmSpec {
            cfg: lm.cfg.clone(),
            weights,
            adapters,
            quantized: lm.is_quantized(),
        }
    }

    /// The snapshotted model configuration.
    pub fn cfg(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Refresh the weight buffers (and gradient flags) from `lm` without
    /// re-deriving configuration or adapter geometry. Panics if `lm`'s
    /// parameter set diverged from the snapshot — the spec is a structural
    /// blueprint, not a diff.
    pub fn refresh_weights(&mut self, lm: &CausalLm) {
        let params = lm.params();
        assert_eq!(
            params.len(),
            self.weights.len(),
            "refresh_weights: parameter set changed since snapshot"
        );
        for ((name, data, rg), (pname, p)) in self.weights.iter_mut().zip(params) {
            assert_eq!(*name, pname, "refresh_weights: parameter order changed");
            data.copy_from_slice(&p.data());
            *rg = p.requires_grad();
        }
    }

    /// Rebuild an exact replica of the snapshotted model.
    pub fn build(&self) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lm = CausalLm::new(self.cfg.clone(), &mut rng);
        // Recreate adapter slots before restoring weights: parameters are
        // matched by name, and `lora_a`/`lora_b` names only exist once the
        // slot does.
        for (block, slots) in lm.blocks.iter_mut().zip(&self.adapters) {
            for (linear, slot) in block.attn.projections_mut().into_iter().zip(slots) {
                if let &Some((rank, scale)) = slot {
                    let (fin, fout) = (linear.in_features(), linear.out_features());
                    linear.adapter = Some(Adapter {
                        a: Tensor::param(vec![0.0; fin * rank], [fin, rank]),
                        b: Tensor::param(vec![0.0; rank * fout], [rank, fout]),
                        scale,
                    });
                }
            }
        }
        let by_name: BTreeMap<&str, (&Vec<f32>, bool)> = self
            .weights
            .iter()
            .map(|(n, d, rg)| (n.as_str(), (d, *rg)))
            .collect();
        let params = lm.params();
        assert_eq!(
            params.len(),
            self.weights.len(),
            "replica parameters must cover the spec exactly"
        );
        for (name, p) in params {
            let (data, rg) = by_name
                .get(name.as_str())
                // INVARIANT: a spec missing a replica parameter is unrecoverable corruption.
                .unwrap_or_else(|| panic!("spec missing parameter {name}"));
            p.set_data(data);
            p.set_requires_grad(*rg);
        }
        if self.quantized {
            lm.set_quantized(true);
        }
        lm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Adapter;

    fn tiny_lm() -> CausalLm {
        let mut rng = StdRng::seed_from_u64(17);
        let mut cfg = ModelConfig::mistral_miniature(48);
        cfg.n_layers = 2;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        CausalLm::new(cfg, &mut rng)
    }

    #[test]
    fn replica_forward_is_bit_identical() {
        let lm = tiny_lm();
        let spec = LmSpec::snapshot(&lm);
        let replica = spec.build();
        let tokens = [1u32, 9, 4, 2, 7, 3];
        let a = lm.forward(&tokens, 2, 3).to_vec();
        let b = replica.forward(&tokens, 2, 3).to_vec();
        assert_eq!(a, b, "replica logits must match bitwise");
    }

    #[test]
    fn replica_preserves_requires_grad_and_adapters() {
        let mut lm = tiny_lm();
        // Freeze everything, then attach a trainable adapter on one
        // projection — the LoRA training shape.
        for (_, p) in lm.params() {
            p.set_requires_grad(false);
        }
        let mut rng = StdRng::seed_from_u64(5);
        {
            let block = &mut lm.blocks[0];
            let [q, _, _, _] = block.attn.projections_mut();
            let (fin, fout) = (q.in_features(), q.out_features());
            let a = Tensor::xavier_uniform(fin, 2, &mut rng);
            a.set_requires_grad(true);
            let b = Tensor::param(vec![0.25; 2 * fout], [2, fout]);
            q.adapter = Some(Adapter { a, b, scale: 0.5 });
        }
        let trainable: Vec<String> = lm.trainable_params().into_iter().map(|(n, _)| n).collect();
        assert_eq!(trainable.len(), 2, "exactly lora_a + lora_b trainable");

        let replica = LmSpec::snapshot(&lm).build();
        let replica_trainable: Vec<String> = replica
            .trainable_params()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            trainable, replica_trainable,
            "replica must reproduce the trainable set exactly"
        );
        // Adapter weights themselves restored bitwise.
        let q = &replica.blocks[0].attn.projections()[0];
        let ad = q.adapter.as_ref().expect("adapter slot recreated");
        assert_eq!(ad.scale, 0.5);
        assert!(ad.b.data().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn quantized_replica_is_bit_identical() {
        let lm = tiny_lm();
        for (_, p) in lm.params() {
            p.set_requires_grad(false);
        }
        assert!(lm.set_quantized(true) > 0, "frozen model must calibrate");
        let spec = LmSpec::snapshot(&lm);
        let replica = spec.build();
        assert!(replica.is_quantized(), "replica must re-calibrate");
        // Calibration is a pure function of the weights, so the quantized
        // decode path must agree bitwise between original and replica.
        let mut c0 = lm.new_cache();
        let mut c1 = replica.new_cache();
        let a = lm.prefill(&[1, 9, 4, 2], &mut c0);
        let b = replica.prefill(&[1, 9, 4, 2], &mut c1);
        assert_eq!(a, b, "quantized replica logits must match bitwise");
    }

    #[test]
    fn refresh_weights_tracks_mutation() {
        let lm = tiny_lm();
        let mut spec = LmSpec::snapshot(&lm);
        // Mutate the source model, refresh, rebuild: replica sees the new
        // weights.
        let (_, p0) = &lm.params()[0];
        let bumped: Vec<f32> = p0.data().iter().map(|v| v + 1.0).collect();
        p0.set_data(&bumped);
        spec.refresh_weights(&lm);
        let replica = spec.build();
        let (_, r0) = &replica.params()[0];
        assert_eq!(r0.data().to_vec(), bumped);
    }
}
