//! Regression tests for the inference fast path: chunked prefill,
//! KV-cache forking, and prefix-reused continuation scoring must all
//! reproduce the full-forward reference numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{CausalLm, ModelConfig};

fn small_lm(vocab: usize, window: usize) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut cfg = ModelConfig::mistral_miniature(vocab);
    cfg.n_layers = 2;
    cfg.d_model = 24;
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    cfg.d_ff = 48;
    cfg.max_seq_len = 64;
    cfg.sliding_window = window;
    CausalLm::new(cfg, &mut rng)
}

/// Deterministic token sequence within the vocabulary.
fn toks(n: usize, vocab: usize, salt: usize) -> Vec<u32> {
    (0..n)
        .map(|i| ((i * 7 + salt * 13) % vocab) as u32)
        .collect()
}

#[test]
fn prefill_matches_full_forward_last_logits() {
    let lm = small_lm(48, 64);
    let prompt = toks(11, 48, 1);
    let full = lm.forward(&prompt, 1, prompt.len()).to_vec();
    let v = 48;
    let last = &full[(prompt.len() - 1) * v..prompt.len() * v];

    let mut cache = lm.new_cache();
    let pre = lm.prefill(&prompt, &mut cache);
    assert_eq!(cache.pos, prompt.len());
    for (j, (&a, &b)) in pre.iter().zip(last).enumerate() {
        assert!((a - b).abs() < 1e-4, "logit {j}: {a} vs {b}");
    }
}

#[test]
fn prefill_matches_token_by_token_steps() {
    let lm = small_lm(32, 6); // window shorter than the sequence
    let prompt = toks(17, 32, 2);
    let mut chunked = lm.new_cache();
    let a = lm.prefill(&prompt, &mut chunked);
    let mut stepped = lm.new_cache();
    let mut b = Vec::new();
    for &t in &prompt {
        b = lm.step(t, &mut stepped);
    }
    assert_eq!(chunked.pos, stepped.pos);
    for (j, (&x, &y)) in a.iter().zip(&b).enumerate() {
        assert!((x - y).abs() < 1e-4, "logit {j}: {x} vs {y}");
    }
}

#[test]
fn score_continuations_match_independent_scoring() {
    let lm = small_lm(40, 64);
    for (pl, salt) in [(3usize, 0usize), (9, 3), (20, 4)] {
        let prompt = toks(pl, 40, salt);
        let cands: Vec<Vec<u32>> = vec![
            toks(1, 40, salt + 5),
            toks(3, 40, salt + 6),
            toks(5, 40, salt + 7),
        ];
        let refs: Vec<&[u32]> = cands.iter().map(Vec::as_slice).collect();
        let batch = lm.score_continuations(&prompt, &refs);
        for (ci, cont) in cands.iter().enumerate() {
            let single = lm.score_continuation(&prompt, cont);
            let full = lm.score_continuation_full(&prompt, cont);
            assert!(
                (batch[ci] - single).abs() < 1e-6,
                "candidate {ci}: batched {} vs single {single}",
                batch[ci]
            );
            assert!(
                (batch[ci] - full).abs() < 1e-5,
                "candidate {ci}: kv-reused {} vs full-forward {full}",
                batch[ci]
            );
        }
    }
}

#[test]
fn score_continuations_long_prompt_beyond_sliding_window() {
    // Prompt much longer than the sliding window: the cache trims old
    // keys exactly where the full-forward mask hides them.
    let lm = small_lm(36, 5);
    let prompt = toks(24, 36, 9);
    let cands: Vec<Vec<u32>> = vec![toks(2, 36, 11), toks(4, 36, 12)];
    let refs: Vec<&[u32]> = cands.iter().map(Vec::as_slice).collect();
    let batch = lm.score_continuations(&prompt, &refs);
    for (ci, cont) in cands.iter().enumerate() {
        let full = lm.score_continuation_full(&prompt, cont);
        assert!(
            (batch[ci] - full).abs() < 1e-5,
            "candidate {ci}: {} vs {full}",
            batch[ci]
        );
    }
}

#[test]
fn forked_caches_extend_independently() {
    let lm = small_lm(32, 64);
    let prompt = toks(8, 32, 1);
    let mut cache = lm.new_cache();
    lm.prefill(&prompt, &mut cache);

    // Extend fork A, then make sure fork B still sees the prefix state.
    let mut fork_a = cache.fork();
    let a1 = lm.step(3, &mut fork_a);
    let _ = lm.step(7, &mut fork_a);
    let mut fork_b = cache.fork();
    let b1 = lm.step(3, &mut fork_b);
    assert_eq!(cache.pos, prompt.len(), "original cache untouched");
    assert_eq!(fork_a.pos, prompt.len() + 2);
    assert_eq!(fork_b.pos, prompt.len() + 1);
    for (x, y) in a1.iter().zip(&b1) {
        assert_eq!(x, y, "identical first step after fork");
    }
}

#[test]
fn generate_greedy_matches_stepwise_reference() {
    // The chunk-prefill generate must sample exactly the tokens the old
    // per-token prefill loop produced.
    let lm = small_lm(32, 64);
    let prompt = toks(10, 32, 6);
    let mut rng = StdRng::seed_from_u64(1);
    let fast = lm.generate(&prompt, 8, 0.0, 2, &mut rng);

    // Reference: prefill token-by-token through the public step API.
    let mut cache = lm.new_cache();
    let mut logits = Vec::new();
    for &t in &prompt {
        logits = lm.step(t, &mut cache);
    }
    let mut reference = Vec::new();
    for _ in 0..8 {
        let next = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        if next == 2 {
            break;
        }
        reference.push(next);
        logits = lm.step(next, &mut cache);
    }
    assert_eq!(fast, reference);
}

#[test]
fn generate_builds_no_grad_graph_even_with_params_tracked() {
    // Decoding routes through no_grad internally: after a generate call
    // no parameter may have accumulated gradient state, and the call
    // must behave identically whether or not the caller is in a grad
    // scope.
    let lm = small_lm(32, 64);
    for (_, p) in lm.params() {
        assert!(p.requires_grad() || !p.requires_grad()); // params exist
    }
    let prompt = toks(6, 32, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let outside = lm.generate(&prompt, 5, 0.0, 2, &mut rng);
    let inside = zg_tensor::no_grad(|| {
        let mut rng = StdRng::seed_from_u64(9);
        lm.generate(&prompt, 5, 0.0, 2, &mut rng)
    });
    assert_eq!(outside, inside);
    for (name, p) in lm.params() {
        assert!(p.grad().is_none(), "{name} accumulated grad during decode");
    }
}
