//! Property tests for the radix-trie prefix pool: LCP lookup against a
//! naive oracle, lease/refcount soundness under arbitrary interleavings,
//! token-budget eviction that never touches leased entries, and
//! replay determinism.
//!
//! Caches are faked by setting `KvCache::pos` directly (no model
//! forwards), so thousands of trie operations run in milliseconds — the
//! pool only ever checks the position invariant, and bitwise KV
//! correctness is pinned separately by `split_prefill_bit_identity` and
//! the zg-serve bit-exactness suite.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{CausalLm, KvCache, ModelConfig, PrefixBlock, PrefixPool};

fn tiny_lm() -> CausalLm {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut cfg = ModelConfig::mistral_miniature(40);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    cfg.max_seq_len = 64;
    CausalLm::new(cfg, &mut rng)
}

/// A cache faked to position `len` without running the model.
fn fake_cache(lm: &CausalLm, len: usize) -> KvCache {
    let mut c = lm.new_cache();
    c.pos = len;
    c
}

/// Token sequences over a tiny alphabet, so random keys share prefixes
/// often enough to exercise edge splits and deep LCP walks.
fn keys() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..4, 1..12), 1..12)
}

fn probes() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..4, 1..14), 1..16)
}

/// The oracle `acquire` is checked against: the longest inserted key
/// that is a *strict* prefix of the probe.
fn oracle_longest_strict_prefix(inserted: &[Vec<u32>], probe: &[u32]) -> Option<usize> {
    inserted
        .iter()
        .filter(|k| k.len() < probe.len() && probe[..k.len()] == k[..])
        .map(|k| k.len())
        .max()
}

/// The oracle for `shared_prefix_len`: the longest common prefix with
/// any inserted key, clamped to a strict prefix of the probe.
fn oracle_lcp(inserted: &[Vec<u32>], probe: &[u32]) -> usize {
    inserted
        .iter()
        .map(|k| {
            k.iter()
                .zip(probe.iter())
                .take_while(|(a, b)| a == b)
                .count()
        })
        .max()
        .unwrap_or(0)
        .min(probe.len().saturating_sub(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `acquire` returns exactly the longest cached strict prefix, and
    /// `shared_prefix_len` exactly the structural LCP, for arbitrary key
    /// sets and probes (budget large enough that nothing evicts).
    #[test]
    fn acquire_matches_naive_longest_prefix_oracle(keys in keys(), probes in probes()) {
        let lm = tiny_lm();
        let pool = PrefixPool::new(1 << 20);
        for k in &keys {
            drop(pool.insert(k, fake_cache(&lm, k.len()), Vec::new()));
        }
        for p in &probes {
            let got = pool.acquire(p).map(|(block, len)| {
                prop_assert_eq!(block.len(), len);
                Ok(len)
            }).transpose()?;
            let want = oracle_longest_strict_prefix(&keys, p);
            prop_assert!(
                got == want,
                "probe {p:?}: got {got:?}, oracle {want:?}, keys {keys:?}"
            );
            let lcp = pool.shared_prefix_len(p);
            let want_lcp = oracle_lcp(&keys, p);
            prop_assert!(
                lcp == want_lcp,
                "structural LCP for probe {p:?}: got {lcp}, oracle {want_lcp}"
            );
        }
    }

    /// Lease/refcount soundness: across arbitrary interleavings of
    /// inserts, acquires, and out-of-order releases, the pool's live
    /// lease count tracks the held handles exactly, every held lease
    /// stays forkable, and full release leaves the pool quiescent.
    #[test]
    fn lease_refcounts_are_sound(keys in keys(), script in prop::collection::vec(0usize..96, 0..64)) {
        let lm = tiny_lm();
        let pool = PrefixPool::new(1 << 20);
        let mut held: Vec<PrefixBlock> = Vec::new();
        // Each script step packs an operation (mod 3) and an index pick.
        for step in script {
            let (op, pick) = (step % 3, step / 3);
            match op {
                // Insert a key (lease held).
                0 => {
                    let k = &keys[pick % keys.len()];
                    held.push(pool.insert(k, fake_cache(&lm, k.len()), Vec::new()));
                }
                // Acquire with a probe extending a key (lease on a hit).
                1 => {
                    let mut p = keys[pick % keys.len()].clone();
                    p.push(39);
                    if let Some((block, len)) = pool.acquire(&p) {
                        prop_assert!(len < p.len());
                        held.push(block);
                    }
                }
                // Release from the middle (non-LIFO).
                _ => {
                    if !held.is_empty() {
                        held.remove(pick % held.len());
                    }
                }
            }
            prop_assert_eq!(pool.stats().live_leases, held.len());
            for lease in &held {
                let (fork, _) = lease.fork();
                prop_assert_eq!(fork.pos, lease.len());
            }
        }
        held.clear();
        pool.assert_quiescent();
        prop_assert_eq!(pool.stats().live_leases, 0);
    }

    /// Token-budget eviction under pressure never drops a leased entry,
    /// and once every lease is released the resident total is back under
    /// budget.
    #[test]
    fn eviction_spares_leases_and_respects_budget(
        keys in keys(),
        budget in 4usize..24,
        hold_mask in 0u32..(1 << 12),
    ) {
        let lm = tiny_lm();
        let pool = PrefixPool::new(budget);
        let mut held: Vec<PrefixBlock> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            let lease = pool.insert(k, fake_cache(&lm, k.len()), Vec::new());
            if hold_mask & (1 << (i % 12)) != 0 {
                held.push(lease);
            }
            // Every held lease survives whatever eviction just ran: its
            // entry is still resident and forks at the right position.
            for lease in &held {
                let (fork, _) = lease.fork();
                prop_assert_eq!(fork.pos, lease.len());
            }
        }
        held.clear();
        // A final (unleased) insert triggers enforcement with nothing
        // pinned: the pool must fit its budget again.
        drop(pool.insert(&[0, 1, 2], fake_cache(&lm, 3), Vec::new()));
        let s = pool.stats();
        prop_assert!(
            s.resident_tokens <= budget,
            "resident {} exceeds budget {budget} with no leases", s.resident_tokens
        );
        prop_assert_eq!(s.live_leases, 0);
        pool.assert_quiescent();
    }

    /// Replaying one operation sequence on two fresh pools gives
    /// identical hit/miss outcomes and identical final statistics —
    /// pool behaviour is a pure function of the op sequence.
    #[test]
    fn replay_is_deterministic(keys in keys(), script in prop::collection::vec(0usize..64, 0..48)) {
        let lm = tiny_lm();
        let run = || {
            let pool = PrefixPool::new(32);
            let mut outcomes = Vec::new();
            for &step in &script {
                let (op, pick) = (step % 2, step / 2);
                match op {
                    0 => {
                        let k = &keys[pick % keys.len()];
                        drop(pool.insert(k, fake_cache(&lm, k.len()), Vec::new()));
                    }
                    _ => {
                        let mut p = keys[pick % keys.len()].clone();
                        p.push(39);
                        outcomes.push(pool.acquire(&p).map(|(_, len)| len));
                    }
                }
            }
            (outcomes, pool.stats())
        };
        let (oa, sa) = run();
        let (ob, sb) = run();
        prop_assert!(oa == ob, "hit/miss sequences must replay identically");
        prop_assert!(sa == sb, "stats must replay identically");
    }
}
