//! Execution engines: the trait the scheduler dispatches batches to, and
//! [`ZiGongEngine`] — a persistent pool of bit-exact model replicas with
//! cross-request KV prefix sharing.
//!
//! ## Exactness contract
//!
//! `ZiGongEngine` serves [`Payload::Score`] with *exactly* the float-op
//! sequence of the offline `ZiGongModel::evaluate_item`, and
//! [`Payload::Generate`] with exactly `ZiGongModel::generate_answer`.
//! Prefix sharing is bitwise-transparent (split prefill — including the
//! multi-way splits the LCP path takes — is bit-identical to whole
//! prefill, pinned by `zg-model`'s `split_prefill_bit_identity` test)
//! and replicas are bit-exact rebuilds of one [`ZiGongSpec`], so the
//! served answer and probability are exact-`f64` equal to the offline
//! evaluator for **any** worker count, **any** request interleaving, and
//! **any** routing decision.
//!
//! ## Prefix reuse
//!
//! Each prompt prefill goes through the replica's radix-trie
//! [`PrefixPool`]: the longest cached prefix is leased and only the
//! suffix is prefilled, in chunks that re-insert (a) an entry at the
//! *divergence point* where this prompt peels away from previously seen
//! traffic — the shared template header discovers itself from the
//! requests — and (b) the extended prefix covering all but the last
//! prompt token, so the next same-template request hits deeper.
//!
//! ## Determinism model
//!
//! Workers are persistent threads, each owning a private replica and a
//! private [`PrefixPool`] (the pool is `Rc`-based and single-threaded by
//! design — no locks on the decode path, and per-worker hit sequences
//! stay deterministic). Batches are split into contiguous runs of equal
//! template key and routed with **prefix affinity**: a run goes to the
//! worker whose pool last served its template (bounded by a per-batch
//! balance cap), untemplated requests go to the least-loaded worker.
//! Assignment is a pure function of the batch contents, the worker
//! count, and the (deterministic) affinity history; replies are merged
//! by original batch index, never by completion order. Worker trace
//! streams are forked on the spawning thread in loop order, so stream
//! ids are stable across runs.

use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{KvCache, PrefixBlock, PrefixPool, PrefixStats};
use zg_tensor::GemmKernel;
use zg_tokenizer::Special;
use zg_trace::Clock;
use zg_zigong::{two_way_probability, ZiGongModel, ZiGongSpec, ANSWER_TOKENS, SCORE_RESERVE};

use crate::ops::{RequestObs, Stage};
use crate::queue::QueuedRequest;
use crate::request::{Payload, Reply, RequestId};

/// Executes batches of admitted requests. The scheduler treats this as a
/// black box; the simulation tests substitute deterministic mocks.
pub trait Engine {
    /// Serve every request in `batch`, returning `(id, reply)` pairs in
    /// batch order. Must return exactly one reply per request.
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)>;

    /// Release worker resources. Called once by `Server::shutdown`;
    /// engines with no threads need not override it.
    fn shutdown(&mut self) {}

    /// Install the clock engine-side stage stamps ([`RequestObs`]) are
    /// read from. Observation is strictly passive — stamping must not
    /// change any served bytes. Engines without stage observability
    /// (mocks) ignore it.
    fn install_stage_clock(&mut self, _clock: Clock) {}

    /// Drain the per-request observations accumulated since the last
    /// drain, in batch order. Empty unless a stage clock is installed.
    fn drain_obs(&mut self) -> Vec<RequestObs> {
        Vec::new()
    }
}

/// Tuning knobs for [`ZiGongEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker replicas. `0` and `1` both mean "inline on the caller's
    /// thread" (no worker threads, still one replica + pool).
    pub workers: usize,
    /// Token budget of each worker's radix prefix pool: unleased cached
    /// prefixes are evicted LRU-first once their summed token length
    /// exceeds this (leased entries are never evicted).
    pub pool_budget_tokens: usize,
    /// GEMM kernel pinned on each replica's serving thread (worker
    /// threads own the setting for life; the inline engine pins the
    /// calling thread when the replica is built). Defaults to the
    /// process-wide [`zg_tensor::default_gemm_kernel`], which honors the
    /// `ZG_GEMM_KERNEL` environment knob.
    pub kernel: GemmKernel,
    /// Serve with int8 quantized inference on frozen base weights. Each
    /// replica calibrates after rebuilding from the spec; calibration is
    /// a pure function of the weights, so replicas stay bit-identical to
    /// each other and to a quantized offline evaluator.
    pub quantized: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            pool_budget_tokens: 4096,
            kernel: zg_tensor::default_gemm_kernel(),
            quantized: false,
        }
    }
}

/// One worker's state: a bit-exact model replica plus its private
/// prefix pool. Also used inline when `workers <= 1`.
struct Replica {
    model: ZiGongModel,
    pool: PrefixPool,
    /// Greedy decoding at temperature 0 never consumes this RNG; it only
    /// satisfies the sampler's signature. Seeded to match the offline
    /// evaluator for auditability.
    rng: StdRng,
    /// Ops-plane stage clock; `None` (the default) makes every stamp a
    /// no-op, so observation-off serving does zero extra work.
    stage_clock: Option<Clock>,
    /// Stage marks of the request currently being served.
    marks: Vec<(Stage, f64)>,
    /// Completed per-request observations awaiting collection.
    obs: Vec<RequestObs>,
}

impl Replica {
    fn new(spec: &ZiGongSpec, cfg: &EngineConfig) -> Replica {
        // Pin the GEMM kernel for this replica's serving thread. Worker
        // replicas are built on their own thread, so the thread-local
        // setting is private to them; the inline replica pins the caller.
        zg_tensor::set_gemm_kernel(cfg.kernel);
        let model = spec.build();
        if cfg.quantized {
            model.set_quantized(true);
        }
        Replica {
            model,
            pool: PrefixPool::new(cfg.pool_budget_tokens),
            rng: StdRng::seed_from_u64(0xD1D1),
            stage_clock: None,
            marks: Vec::new(),
            obs: Vec::new(),
        }
    }

    /// Stamp `stage` at the ops clock's current tick (no-op when no
    /// stage clock is installed).
    fn stamp(&mut self, stage: Stage) {
        if let Some(clock) = &self.stage_clock {
            self.marks.push((stage, clock()));
        }
    }

    /// Prefill `ids[from..]` onto `cache` in chunks, inserting a pool
    /// entry — and holding its lease in `leases` — at each boundary in
    /// `bounds` (ascending; boundaries at or before `from`, or not
    /// strictly inside the prompt, are skipped). Returns the full-prompt
    /// next-token logits.
    ///
    /// Bit-identical to `lm.prefill(&ids[from..])` in one shot: split
    /// prefill is bitwise-transparent for arbitrary multi-way splits
    /// (see module docs).
    fn prefill_suffix(
        &mut self,
        ids: &[u32],
        mut from: usize,
        bounds: &[usize],
        cache: &mut KvCache,
        leases: &mut Vec<PrefixBlock>,
    ) -> Vec<f32> {
        for &b in bounds {
            if b <= from || b >= ids.len() {
                continue;
            }
            // INVARIANT: from < b < ids.len() by the guard above, so both
            // the chunk slice and the key slice are in bounds and non-empty.
            let row = self.model.lm.prefill(&ids[from..b], cache);
            // INVARIANT: b < ids.len() by the same guard, so the key slice
            // is in bounds.
            leases.push(self.pool.insert(&ids[..b], cache.fork(), row));
            from = b;
        }
        // INVARIANT: every accepted boundary is < ids.len(), so at least
        // one token remains and prefill's non-empty precondition holds.
        self.model.lm.prefill(&ids[from..], cache)
    }

    /// Prefill `ids` reusing (and feeding) the radix prefix pool.
    /// Returns the full-prompt cache, the next-token logits, and the
    /// leases pinning every pooled block this request touches.
    ///
    /// The pool's longest cached prefix is leased and forked; only the
    /// suffix is prefilled, with entries re-inserted at (a) the
    /// divergence point between this prompt and previously seen traffic
    /// (`shared_prefix_len` — the template header as discovered from the
    /// requests themselves) and (b) the extended prefix covering all but
    /// the last prompt token. All paths are bit-identical to
    /// `lm.prefill(ids)` in one shot.
    fn prefill_shared(&mut self, ids: &[u32]) -> (KvCache, Vec<f32>, Vec<PrefixBlock>) {
        let mut leases = Vec::new();
        let (mut cache, base) = match self.pool.acquire(ids) {
            Some((block, len)) => {
                let (cache, _prefix_logits) = block.fork();
                leases.push(block);
                (cache, len)
            }
            None => (self.model.lm.new_cache(), 0),
        };
        let seed = self.pool.shared_prefix_len(ids);
        let ext = ids.len().saturating_sub(1);
        let logits = self.prefill_suffix(ids, base, &[seed, ext], &mut cache, &mut leases);
        (cache, logits, leases)
    }

    /// Serve one scoring request — the float-op mirror of
    /// `ZiGongModel::evaluate_item`, with the single prompt prefill
    /// routed through the prefix pool.
    fn serve_score(&mut self, prompt: &str, negative: &str, positive: &str) -> Reply {
        let _span = zg_trace::span("serve.score");
        let _leak = zg_tensor::GraphLeakGuard::new("ZiGongEngine::serve_score");
        let p_ans = self.model.prompt_ids(prompt, ANSWER_TOKENS);
        let p_score = self.model.prompt_ids(prompt, SCORE_RESERVE);
        if p_ans != p_score {
            // Truncation split the budgets; fall back to the offline
            // evaluator's independent answer/score paths verbatim.
            let answer = self.model.generate_answer(prompt, ANSWER_TOKENS);
            self.stamp(Stage::Decode);
            let neg = self.model.tokenizer.encode(&format!(" {negative}"));
            let pos = self.model.tokenizer.encode(&format!(" {positive}"));
            let scores = self.model.lm.score_continuations(&p_score, &[&neg, &pos]);
            // INVARIANT: score_continuations returns one score per continuation (2 here).
            let p = two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len());
            self.stamp(Stage::Score);
            return Reply::Scored {
                answer,
                p_positive: p,
            };
        }
        let neg = self.model.tokenizer.encode(&format!(" {negative}"));
        let pos = self.model.tokenizer.encode(&format!(" {positive}"));
        let (cache, logits, _leases) = self.prefill_shared(&p_ans);
        self.stamp(Stage::Prefill);
        // Greedy answer decode on a fork — same sampling as the offline
        // path (temperature 0: pure argmax, RNG untouched).
        let mut fork = cache.fork();
        let mut row = logits.clone();
        let mut out = Vec::new();
        for _ in 0..ANSWER_TOKENS {
            let next = zg_model::sample_logits(&row, 0.0, &mut self.rng);
            if next == Special::Eos.id() {
                break;
            }
            out.push(next);
            row = self.model.lm.step(next, &mut fork);
        }
        let answer = self.model.tokenizer.decode(&out);
        self.stamp(Stage::Decode);
        let scores = self
            .model
            .lm
            .score_continuations_with_cache(&cache, &logits, &[&neg, &pos]);
        // INVARIANT: score_continuations_with_cache returns one score per
        // continuation (2 here).
        let p = two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len());
        self.stamp(Stage::Score);
        Reply::Scored {
            answer,
            p_positive: p,
        }
    }

    /// Serve one generation request — exactly
    /// `ZiGongModel::generate_answer`.
    fn serve_generate(&mut self, prompt: &str, max_new: usize) -> Reply {
        let _span = zg_trace::span("serve.generate");
        let _leak = zg_tensor::GraphLeakGuard::new("ZiGongEngine::serve_generate");
        let text = self.model.generate_answer(prompt, max_new);
        self.stamp(Stage::Decode);
        Reply::Generated { text }
    }

    fn serve(&mut self, req: &QueuedRequest) -> (RequestId, Reply) {
        zg_trace::counter_add("serve.requests", 1.0);
        // Ops observation is passive: pool stats are cheap snapshots and
        // stamping only reads the injected clock, so served bytes are
        // identical with the stage clock installed or not.
        let before = self.stage_clock.is_some().then(|| self.pool.stats());
        self.marks.clear();
        let reply = match &req.payload {
            Payload::Score {
                prompt,
                negative,
                positive,
            } => self.serve_score(prompt, negative, positive),
            Payload::Generate { prompt, max_new } => self.serve_generate(prompt, *max_new),
        };
        if let Some(b) = before {
            let a = self.pool.stats();
            self.obs.push(RequestObs {
                id: req.id,
                marks: std::mem::take(&mut self.marks),
                hit_tokens: a.hit_tokens - b.hit_tokens,
                lookup_tokens: a.lookup_tokens - b.lookup_tokens,
                resident_tokens: a.resident_tokens as u64,
            });
        }
        (req.id, reply)
    }

    fn serve_chunk(&mut self, chunk: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        let _span = zg_trace::span_arg("serve.chunk", chunk.len() as i64);
        chunk.iter().map(|r| self.serve(r)).collect()
    }

    /// Leak audit: every prefix lease must be back in the pool between
    /// batches.
    fn audit(&self) -> Result<(), String> {
        let s = self.pool.stats();
        if s.live_leases != 0 {
            return Err(format!("{} outstanding prefix lease(s)", s.live_leases));
        }
        Ok(())
    }
}

enum Msg {
    Batch(Vec<QueuedRequest>),
    Audit,
    StageClock(Clock),
    Stop,
}

enum Out {
    Batch(Vec<(RequestId, Reply)>, Vec<RequestObs>),
    Audit(Result<(), String>, PrefixStats),
}

struct Worker {
    tx: Sender<Msg>,
    rx: Receiver<Out>,
    join: Option<JoinHandle<()>>,
}

/// The production engine: persistent bit-exact replicas serving batches
/// with cross-request prefix reuse. See the module docs for the
/// exactness and determinism contracts.
pub struct ZiGongEngine {
    inline: Option<Replica>,
    workers: Vec<Worker>,
    /// Template key -> worker whose pool last served it (prefix-affinity
    /// routing). BTreeMap for deterministic iteration; bounded by the
    /// number of distinct template keys ever seen.
    affinity: std::collections::BTreeMap<u64, usize>,
    /// Per-request observations merged into batch order by `execute`,
    /// awaiting `drain_obs`. Empty unless a stage clock is installed.
    obs_buf: Vec<RequestObs>,
}

impl ZiGongEngine {
    /// Build an engine from a model snapshot.
    ///
    /// With `cfg.workers >= 2`, worker threads are spawned *now*, each
    /// rebuilding a private replica from a clone of `spec`. Their trace
    /// streams are forked here, on the calling thread in loop order, so
    /// construct the engine after installing a tracer if worker spans
    /// should be captured.
    pub fn new(spec: ZiGongSpec, cfg: EngineConfig) -> ZiGongEngine {
        if cfg.workers <= 1 {
            return ZiGongEngine {
                inline: Some(Replica::new(&spec, &cfg)),
                workers: Vec::new(),
                affinity: std::collections::BTreeMap::new(),
                obs_buf: Vec::new(),
            };
        }
        let workers = (0..cfg.workers)
            .map(|i| {
                let stream = zg_trace::fork_stream(&format!("serve.worker{i}"));
                let (tx, job_rx) = std::sync::mpsc::channel::<Msg>();
                let (out_tx, rx) = std::sync::mpsc::channel::<Out>();
                let spec = spec.clone();
                let join = std::thread::spawn(move || {
                    let _guard = stream.map(|s| s.install());
                    let mut replica = Replica::new(&spec, &cfg);
                    while let Ok(msg) = job_rx.recv() {
                        match msg {
                            Msg::Batch(chunk) => {
                                let out = replica.serve_chunk(&chunk);
                                let obs = std::mem::take(&mut replica.obs);
                                if out_tx.send(Out::Batch(out, obs)).is_err() {
                                    break;
                                }
                            }
                            Msg::StageClock(clock) => {
                                replica.stage_clock = Some(clock);
                            }
                            Msg::Audit => {
                                let res = Out::Audit(replica.audit(), replica.pool.stats());
                                if out_tx.send(res).is_err() {
                                    break;
                                }
                            }
                            Msg::Stop => break,
                        }
                    }
                });
                Worker {
                    tx,
                    rx,
                    join: Some(join),
                }
            })
            .collect();
        ZiGongEngine {
            inline: None,
            workers,
            affinity: std::collections::BTreeMap::new(),
            obs_buf: Vec::new(),
        }
    }

    /// Number of replicas (1 for the inline engine).
    pub fn replicas(&self) -> usize {
        if self.inline.is_some() {
            1
        } else {
            self.workers.len()
        }
    }

    /// Aggregate prefix-pool statistics across all replicas, plus the
    /// per-replica leak-audit verdict.
    pub fn audit(&mut self) -> (Result<(), String>, PrefixStats) {
        if let Some(replica) = &self.inline {
            return (replica.audit(), replica.pool.stats());
        }
        let mut verdict = Ok(());
        let mut total = PrefixStats::default();
        for (i, w) in self.workers.iter().enumerate() {
            if w.tx.send(Msg::Audit).is_err() {
                verdict = Err(format!("worker {i} hung up"));
                continue;
            }
            match w.rx.recv() {
                Ok(Out::Audit(res, stats)) => {
                    if let Err(e) = res {
                        verdict = Err(format!("worker {i}: {e}"));
                    }
                    total.hits += stats.hits;
                    total.misses += stats.misses;
                    total.hit_tokens += stats.hit_tokens;
                    total.lookup_tokens += stats.lookup_tokens;
                    total.inserts += stats.inserts;
                    total.evictions += stats.evictions;
                    total.entries += stats.entries;
                    total.resident_tokens += stats.resident_tokens;
                    total.live_leases += stats.live_leases;
                }
                _ => verdict = Err(format!("worker {i} returned no audit")),
            }
        }
        (verdict, total)
    }

    /// Split a batch into contiguous runs of equal template key.
    /// Untemplated requests are singleton runs (they share no prefix, so
    /// there is nothing to keep together). A pure function of the batch.
    fn runs(batch: &[QueuedRequest]) -> Vec<(Option<u64>, std::ops::Range<usize>)> {
        let mut out: Vec<(Option<u64>, std::ops::Range<usize>)> = Vec::new();
        for (i, req) in batch.iter().enumerate() {
            match out.last_mut() {
                Some((Some(key), range)) if req.template == Some(*key) => range.end = i + 1,
                _ => out.push((req.template, i..i + 1)),
            }
        }
        out
    }

    /// Assign each run to a worker: templated runs go to the worker
    /// whose pool last served their template (prefix affinity) unless
    /// that worker already holds a full per-batch share, in which case —
    /// like untemplated runs — they go to the least-loaded worker
    /// (lowest index on ties) and the affinity map is updated. Returns
    /// each worker's assigned original batch indices, in batch order.
    ///
    /// Deterministic: a pure function of the batch, `n`, and the
    /// affinity history (itself a pure function of prior batches).
    fn assign(&mut self, batch: &[QueuedRequest], n: usize) -> Vec<Vec<usize>> {
        let cap = batch.len().div_ceil(n);
        let mut load = vec![0usize; n];
        let mut out = vec![Vec::new(); n];
        for (key, range) in Self::runs(batch) {
            let sticky = key
                .and_then(|k| self.affinity.get(&k).copied())
                // INVARIANT: affinity values are worker indices recorded
                // below against the same worker count for this engine.
                .filter(|&w| load[w] < cap);
            let w = sticky.unwrap_or_else(|| {
                (0..n)
                    // INVARIANT: w in 0..n indexes the n-length load vector.
                    .min_by_key(|&w| load[w])
                    // INVARIANT: n >= 1, so the range has a minimum.
                    .expect("at least one worker")
            });
            if let Some(k) = key {
                self.affinity.insert(k, w);
            }
            // INVARIANT: w is either a sticky index validated by the
            // `load[w] < cap` filter or drawn from 0..n just above, so it
            // is in bounds for both per-worker vectors.
            load[w] += range.len();
            // INVARIANT: same bound as the line above.
            out[w].extend(range);
        }
        out
    }
}

impl Engine for ZiGongEngine {
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        if batch.is_empty() {
            return Vec::new();
        }
        let _span = zg_trace::span_arg("serve.execute", batch.len() as i64);
        if let Some(replica) = &mut self.inline {
            let out = replica.serve_chunk(batch);
            self.obs_buf.append(&mut replica.obs);
            return out;
        }
        let assignment = self.assign(batch, self.workers.len());
        // Dispatch every non-empty assignment, then collect: workers run
        // concurrently but replies are merged back into original batch
        // positions, so the output order never depends on scheduling.
        let mut dispatched = Vec::new();
        for (w, idxs) in self.workers.iter().zip(&assignment) {
            if idxs.is_empty() {
                continue;
            }
            // INVARIANT: assign() only emits indices from 0..batch.len().
            let chunk: Vec<QueuedRequest> = idxs.iter().map(|&i| batch[i].clone()).collect();
            w.tx.send(Msg::Batch(chunk))
                // INVARIANT: workers only exit when told to stop or when
                // this (sending) side is gone, so the channel is open here.
                .expect("serve worker channel open");
            dispatched.push((w, idxs));
        }
        let mut slots: Vec<Option<(RequestId, Reply)>> = vec![None; batch.len()];
        let mut obs_slots: Vec<Option<RequestObs>> = vec![None; batch.len()];
        for (w, idxs) in dispatched {
            // INVARIANT: every dispatched worker answers each Batch with
            // exactly one Out::Batch before processing anything else.
            match w.rx.recv().expect("serve worker reply") {
                Out::Batch(chunk, obs) => {
                    for (&i, reply) in idxs.iter().zip(chunk) {
                        // INVARIANT: idxs are in-bounds batch positions and
                        // assign() partitions them across workers, so each
                        // slot is written exactly once.
                        slots[i] = Some(reply);
                    }
                    // Observations (present only with a stage clock) are
                    // merged into original batch order too, so drain_obs
                    // output never depends on worker scheduling.
                    for (&i, o) in idxs.iter().zip(obs) {
                        // INVARIANT: same in-bounds partition as replies.
                        obs_slots[i] = Some(o);
                    }
                }
                // INVARIANT: audits are never in flight during execute —
                // both run on the caller's thread, strictly serialized.
                Out::Audit(..) => unreachable!("audit reply during execute"),
            }
        }
        self.obs_buf.extend(obs_slots.into_iter().flatten());
        slots
            .into_iter()
            .map(|s| {
                // INVARIANT: assign() covers every batch index, each
                // dispatched worker replied, so every slot is filled.
                s.expect("every batch slot served")
            })
            .collect()
    }

    fn shutdown(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Msg::Stop);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
        self.workers.clear();
        self.inline = None;
    }

    fn install_stage_clock(&mut self, clock: Clock) {
        if let Some(replica) = &mut self.inline {
            replica.stage_clock = Some(clock);
            return;
        }
        for w in &self.workers {
            // A hung-up worker surfaces at the next execute/audit; stage
            // observation is best-effort here.
            let _ = w.tx.send(Msg::StageClock(clock.clone()));
        }
    }

    fn drain_obs(&mut self) -> Vec<RequestObs> {
        std::mem::take(&mut self.obs_buf)
    }
}

impl Drop for ZiGongEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn treq(id: RequestId, template: Option<u64>) -> QueuedRequest {
        QueuedRequest {
            id,
            payload: Payload::Generate {
                prompt: "x".into(),
                max_new: 1,
            },
            priority: Priority::Normal,
            arrived: 0.0,
            deadline: None,
            template,
        }
    }

    fn bare_engine() -> ZiGongEngine {
        ZiGongEngine {
            inline: None,
            workers: Vec::new(),
            affinity: std::collections::BTreeMap::new(),
            obs_buf: Vec::new(),
        }
    }

    #[test]
    fn runs_group_contiguous_equal_keys_only() {
        let batch: Vec<QueuedRequest> = [Some(1), Some(1), None, None, Some(2), Some(1), Some(1)]
            .into_iter()
            .enumerate()
            .map(|(i, t)| treq(i as RequestId, t))
            .collect();
        let runs = ZiGongEngine::runs(&batch);
        let shape: Vec<(Option<u64>, usize, usize)> =
            runs.iter().map(|(k, r)| (*k, r.start, r.end)).collect();
        // Untemplated requests stay singletons; equal keys only merge
        // when adjacent (the queue's grouping made them adjacent).
        assert_eq!(
            shape,
            vec![
                (Some(1), 0, 2),
                (None, 2, 3),
                (None, 3, 4),
                (Some(2), 4, 5),
                (Some(1), 5, 7),
            ]
        );
    }

    #[test]
    fn assignment_partitions_the_batch_in_order() {
        let mut eng = bare_engine();
        let batch: Vec<QueuedRequest> = (0..7)
            .map(|i| treq(i, if i % 2 == 0 { Some(i / 2) } else { None }))
            .collect();
        let assignment = eng.assign(&batch, 3);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>(), "exactly once each");
        for idxs in &assignment {
            assert!(idxs.windows(2).all(|p| p[0] < p[1]), "batch order kept");
        }
    }

    #[test]
    fn assignment_is_template_sticky_across_batches() {
        let mut eng = bare_engine();
        let first: Vec<QueuedRequest> = vec![treq(0, Some(7)), treq(1, Some(8))];
        let a1 = eng.assign(&first, 2);
        let home_of_7 = a1.iter().position(|idxs| idxs.contains(&0)).unwrap();
        // A later batch's template-7 run lands on the same worker even
        // when it arrives in a different position.
        let second: Vec<QueuedRequest> = vec![treq(2, Some(8)), treq(3, Some(7)), treq(4, Some(7))];
        let a2 = eng.assign(&second, 2);
        assert!(a2[home_of_7].contains(&1) && a2[home_of_7].contains(&2));
    }

    #[test]
    fn assignment_balance_cap_overrides_affinity() {
        let mut eng = bare_engine();
        // Warm affinity: both templates on worker 0.
        eng.affinity.insert(1, 0);
        eng.affinity.insert(2, 0);
        let batch: Vec<QueuedRequest> = vec![
            treq(0, Some(1)),
            treq(1, Some(1)),
            treq(2, Some(2)),
            treq(3, Some(2)),
        ];
        let assignment = eng.assign(&batch, 2);
        // Cap = 2: the template-2 run overflows worker 0 and is re-homed.
        assert_eq!(assignment[0], vec![0, 1]);
        assert_eq!(assignment[1], vec![2, 3]);
        assert_eq!(eng.affinity.get(&2), Some(&1));
    }
}
