//! Execution engines: the trait the scheduler dispatches batches to, and
//! [`ZiGongEngine`] — a persistent pool of bit-exact model replicas with
//! cross-request KV prefix sharing.
//!
//! ## Exactness contract
//!
//! `ZiGongEngine` serves [`Payload::Score`] with *exactly* the float-op
//! sequence of the offline `ZiGongModel::evaluate_item`, and
//! [`Payload::Generate`] with exactly `ZiGongModel::generate_answer`.
//! Prefix sharing is bitwise-transparent (split prefill is bit-identical
//! to whole prefill — pinned by `zg-model`'s `split_prefill_bit_identity`
//! test), replicas are bit-exact rebuilds of one [`ZiGongSpec`], and the
//! batch is split into contiguous chunks merged in index order, so the
//! served answer and probability are exact-`f64` equal to the offline
//! evaluator for **any** worker count and **any** request interleaving.
//!
//! ## Determinism model
//!
//! Workers are persistent threads, each owning a private replica and a
//! private [`PrefixPool`] (the pool is `Rc`-based and single-threaded by
//! design — no locks on the decode path, and per-worker hit sequences
//! stay deterministic). Chunk assignment is a pure function of batch
//! length and worker count; results are merged by chunk index, never by
//! completion order. Worker trace streams are forked on the spawning
//! thread in loop order, so stream ids are stable across runs.

use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{KvCache, PrefixBlock, PrefixPool, PrefixStats};
use zg_tensor::GemmKernel;
use zg_tokenizer::Special;
use zg_zigong::{two_way_probability, ZiGongModel, ZiGongSpec, ANSWER_TOKENS, SCORE_RESERVE};

use crate::queue::QueuedRequest;
use crate::request::{Payload, Reply, RequestId};

/// Executes batches of admitted requests. The scheduler treats this as a
/// black box; the simulation tests substitute deterministic mocks.
pub trait Engine {
    /// Serve every request in `batch`, returning `(id, reply)` pairs in
    /// batch order. Must return exactly one reply per request.
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)>;

    /// Release worker resources. Called once by `Server::shutdown`;
    /// engines with no threads need not override it.
    fn shutdown(&mut self) {}
}

/// Tuning knobs for [`ZiGongEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker replicas. `0` and `1` both mean "inline on the caller's
    /// thread" (no worker threads, still one replica + pool).
    pub workers: usize,
    /// Token length of the shared template prefix each replica caches
    /// (clamped per prompt to leave at least one token to prefill).
    pub prefix_tokens: usize,
    /// Capacity of each worker's prefix pool (distinct templates).
    pub pool_capacity: usize,
    /// GEMM kernel pinned on each replica's serving thread (worker
    /// threads own the setting for life; the inline engine pins the
    /// calling thread when the replica is built). Defaults to the
    /// process-wide [`zg_tensor::default_gemm_kernel`], which honors the
    /// `ZG_GEMM_KERNEL` environment knob.
    pub kernel: GemmKernel,
    /// Serve with int8 quantized inference on frozen base weights. Each
    /// replica calibrates after rebuilding from the spec; calibration is
    /// a pure function of the weights, so replicas stay bit-identical to
    /// each other and to a quantized offline evaluator.
    pub quantized: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            prefix_tokens: 24,
            pool_capacity: 8,
            kernel: zg_tensor::default_gemm_kernel(),
            quantized: false,
        }
    }
}

/// One worker's state: a bit-exact model replica plus its private
/// prefix pool. Also used inline when `workers <= 1`.
struct Replica {
    model: ZiGongModel,
    pool: PrefixPool,
    prefix_tokens: usize,
    /// Greedy decoding at temperature 0 never consumes this RNG; it only
    /// satisfies the sampler's signature. Seeded to match the offline
    /// evaluator for auditability.
    rng: StdRng,
}

impl Replica {
    fn new(spec: &ZiGongSpec, cfg: &EngineConfig) -> Replica {
        // Pin the GEMM kernel for this replica's serving thread. Worker
        // replicas are built on their own thread, so the thread-local
        // setting is private to them; the inline replica pins the caller.
        zg_tensor::set_gemm_kernel(cfg.kernel);
        let model = spec.build();
        if cfg.quantized {
            model.set_quantized(true);
        }
        Replica {
            model,
            pool: PrefixPool::new(cfg.pool_capacity),
            prefix_tokens: cfg.prefix_tokens,
            rng: StdRng::seed_from_u64(0xD1D1),
        }
    }

    /// Prefill `ids` reusing (and feeding) the prefix pool. Returns the
    /// full-prompt cache, the next-token logits, and the lease pinning
    /// the shared block for the rest of the request.
    ///
    /// Both branches are bit-identical to `lm.prefill(ids)` in one shot:
    /// split prefill is bitwise-transparent (see module docs).
    fn prefill_shared(&mut self, ids: &[u32]) -> (KvCache, Vec<f32>, Option<PrefixBlock>) {
        if let Some((block, len)) = self.pool.acquire(ids) {
            let (mut cache, _prefix_logits) = block.fork();
            // INVARIANT: acquire only returns prefix matches, so len <= ids.len().
            let logits = self.model.lm.prefill(&ids[len..], &mut cache);
            return (cache, logits, Some(block));
        }
        let key_len = self.prefix_tokens.min(ids.len().saturating_sub(1));
        let mut cache = self.model.lm.new_cache();
        if key_len == 0 {
            let logits = self.model.lm.prefill(ids, &mut cache);
            return (cache, logits, None);
        }
        // INVARIANT: key_len < ids.len() by the saturating min above, so
        // both the key slice and the remainder slice are in bounds.
        let (key, rest) = (&ids[..key_len], &ids[key_len..]);
        let key_logits = self.model.lm.prefill(key, &mut cache);
        let block = self.pool.insert(key, cache.fork(), key_logits);
        let logits = self.model.lm.prefill(rest, &mut cache);
        (cache, logits, Some(block))
    }

    /// Serve one scoring request — the float-op mirror of
    /// `ZiGongModel::evaluate_item`, with the single prompt prefill
    /// routed through the prefix pool.
    fn serve_score(&mut self, prompt: &str, negative: &str, positive: &str) -> Reply {
        let _span = zg_trace::span("serve.score");
        let _leak = zg_tensor::GraphLeakGuard::new("ZiGongEngine::serve_score");
        let p_ans = self.model.prompt_ids(prompt, ANSWER_TOKENS);
        let p_score = self.model.prompt_ids(prompt, SCORE_RESERVE);
        if p_ans != p_score {
            // Truncation split the budgets; fall back to the offline
            // evaluator's independent answer/score paths verbatim.
            let answer = self.model.generate_answer(prompt, ANSWER_TOKENS);
            let neg = self.model.tokenizer.encode(&format!(" {negative}"));
            let pos = self.model.tokenizer.encode(&format!(" {positive}"));
            let scores = self.model.lm.score_continuations(&p_score, &[&neg, &pos]);
            // INVARIANT: score_continuations returns one score per continuation (2 here).
            let p = two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len());
            return Reply::Scored {
                answer,
                p_positive: p,
            };
        }
        let neg = self.model.tokenizer.encode(&format!(" {negative}"));
        let pos = self.model.tokenizer.encode(&format!(" {positive}"));
        let (cache, logits, _lease) = self.prefill_shared(&p_ans);
        // Greedy answer decode on a fork — same sampling as the offline
        // path (temperature 0: pure argmax, RNG untouched).
        let mut fork = cache.fork();
        let mut row = logits.clone();
        let mut out = Vec::new();
        for _ in 0..ANSWER_TOKENS {
            let next = zg_model::sample_logits(&row, 0.0, &mut self.rng);
            if next == Special::Eos.id() {
                break;
            }
            out.push(next);
            row = self.model.lm.step(next, &mut fork);
        }
        let answer = self.model.tokenizer.decode(&out);
        let scores = self
            .model
            .lm
            .score_continuations_with_cache(&cache, &logits, &[&neg, &pos]);
        // INVARIANT: score_continuations_with_cache returns one score per
        // continuation (2 here).
        let p = two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len());
        Reply::Scored {
            answer,
            p_positive: p,
        }
    }

    /// Serve one generation request — exactly
    /// `ZiGongModel::generate_answer`.
    fn serve_generate(&mut self, prompt: &str, max_new: usize) -> Reply {
        let _span = zg_trace::span("serve.generate");
        let _leak = zg_tensor::GraphLeakGuard::new("ZiGongEngine::serve_generate");
        Reply::Generated {
            text: self.model.generate_answer(prompt, max_new),
        }
    }

    fn serve(&mut self, req: &QueuedRequest) -> (RequestId, Reply) {
        zg_trace::counter_add("serve.requests", 1.0);
        let reply = match &req.payload {
            Payload::Score {
                prompt,
                negative,
                positive,
            } => self.serve_score(prompt, negative, positive),
            Payload::Generate { prompt, max_new } => self.serve_generate(prompt, *max_new),
        };
        (req.id, reply)
    }

    fn serve_chunk(&mut self, chunk: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        let _span = zg_trace::span_arg("serve.chunk", chunk.len() as i64);
        chunk.iter().map(|r| self.serve(r)).collect()
    }

    /// Leak audit: every prefix lease must be back in the pool between
    /// batches.
    fn audit(&self) -> Result<(), String> {
        let s = self.pool.stats();
        if s.live_leases != 0 {
            return Err(format!("{} outstanding prefix lease(s)", s.live_leases));
        }
        Ok(())
    }
}

enum Msg {
    Batch(Vec<QueuedRequest>),
    Audit,
    Stop,
}

enum Out {
    Batch(Vec<(RequestId, Reply)>),
    Audit(Result<(), String>, PrefixStats),
}

struct Worker {
    tx: Sender<Msg>,
    rx: Receiver<Out>,
    join: Option<JoinHandle<()>>,
}

/// The production engine: persistent bit-exact replicas serving batches
/// with cross-request prefix reuse. See the module docs for the
/// exactness and determinism contracts.
pub struct ZiGongEngine {
    inline: Option<Replica>,
    workers: Vec<Worker>,
}

impl ZiGongEngine {
    /// Build an engine from a model snapshot.
    ///
    /// With `cfg.workers >= 2`, worker threads are spawned *now*, each
    /// rebuilding a private replica from a clone of `spec`. Their trace
    /// streams are forked here, on the calling thread in loop order, so
    /// construct the engine after installing a tracer if worker spans
    /// should be captured.
    pub fn new(spec: ZiGongSpec, cfg: EngineConfig) -> ZiGongEngine {
        if cfg.workers <= 1 {
            return ZiGongEngine {
                inline: Some(Replica::new(&spec, &cfg)),
                workers: Vec::new(),
            };
        }
        let workers = (0..cfg.workers)
            .map(|i| {
                let stream = zg_trace::fork_stream(&format!("serve.worker{i}"));
                let (tx, job_rx) = std::sync::mpsc::channel::<Msg>();
                let (out_tx, rx) = std::sync::mpsc::channel::<Out>();
                let spec = spec.clone();
                let join = std::thread::spawn(move || {
                    let _guard = stream.map(|s| s.install());
                    let mut replica = Replica::new(&spec, &cfg);
                    while let Ok(msg) = job_rx.recv() {
                        match msg {
                            Msg::Batch(chunk) => {
                                let out = replica.serve_chunk(&chunk);
                                if out_tx.send(Out::Batch(out)).is_err() {
                                    break;
                                }
                            }
                            Msg::Audit => {
                                let res = Out::Audit(replica.audit(), replica.pool.stats());
                                if out_tx.send(res).is_err() {
                                    break;
                                }
                            }
                            Msg::Stop => break,
                        }
                    }
                });
                Worker {
                    tx,
                    rx,
                    join: Some(join),
                }
            })
            .collect();
        ZiGongEngine {
            inline: None,
            workers,
        }
    }

    /// Number of replicas (1 for the inline engine).
    pub fn replicas(&self) -> usize {
        if self.inline.is_some() {
            1
        } else {
            self.workers.len()
        }
    }

    /// Aggregate prefix-pool statistics across all replicas, plus the
    /// per-replica leak-audit verdict.
    pub fn audit(&mut self) -> (Result<(), String>, PrefixStats) {
        if let Some(replica) = &self.inline {
            return (replica.audit(), replica.pool.stats());
        }
        let mut verdict = Ok(());
        let mut total = PrefixStats::default();
        for (i, w) in self.workers.iter().enumerate() {
            if w.tx.send(Msg::Audit).is_err() {
                verdict = Err(format!("worker {i} hung up"));
                continue;
            }
            match w.rx.recv() {
                Ok(Out::Audit(res, stats)) => {
                    if let Err(e) = res {
                        verdict = Err(format!("worker {i}: {e}"));
                    }
                    total.hits += stats.hits;
                    total.misses += stats.misses;
                    total.inserts += stats.inserts;
                    total.evictions += stats.evictions;
                    total.entries += stats.entries;
                    total.live_leases += stats.live_leases;
                }
                _ => verdict = Err(format!("worker {i} returned no audit")),
            }
        }
        (verdict, total)
    }

    /// Contiguous chunk ranges: first `len % n` chunks get one extra
    /// item. A pure function of `(len, n)` — the merge order (and hence
    /// every downstream float op) is independent of thread scheduling.
    fn chunks(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
        let base = len / n;
        let rem = len % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let size = base + usize::from(i < rem);
            out.push(start..start + size);
            start += size;
        }
        out
    }
}

impl Engine for ZiGongEngine {
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        if batch.is_empty() {
            return Vec::new();
        }
        let _span = zg_trace::span_arg("serve.execute", batch.len() as i64);
        if let Some(replica) = &mut self.inline {
            return replica.serve_chunk(batch);
        }
        let ranges = Self::chunks(batch.len(), self.workers.len());
        // Dispatch every non-empty chunk, then collect in worker order:
        // workers run concurrently but the merge is by chunk index.
        let mut dispatched = Vec::new();
        for (w, range) in self.workers.iter().zip(&ranges) {
            if range.is_empty() {
                continue;
            }
            // INVARIANT: chunks() partitions 0..batch.len(), so every
            // range is in bounds.
            w.tx.send(Msg::Batch(batch[range.clone()].to_vec()))
                // INVARIANT: workers only exit when told to stop or when
                // this (sending) side is gone, so the channel is open here.
                .expect("serve worker channel open");
            dispatched.push(w);
        }
        let mut out = Vec::with_capacity(batch.len());
        for w in dispatched {
            // INVARIANT: every dispatched worker answers each Batch with
            // exactly one Out::Batch before processing anything else.
            match w.rx.recv().expect("serve worker reply") {
                Out::Batch(chunk) => out.extend(chunk),
                // INVARIANT: audits are never in flight during execute —
                // both run on the caller's thread, strictly serialized.
                Out::Audit(..) => unreachable!("audit reply during execute"),
            }
        }
        out
    }

    fn shutdown(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Msg::Stop);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
        self.workers.clear();
        self.inline = None;
    }
}

impl Drop for ZiGongEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_contiguous_and_exhaustive() {
        for len in 0..12usize {
            for n in 1..5usize {
                let ranges = ZiGongEngine::chunks(len, n);
                assert_eq!(ranges.len(), n);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[n - 1].end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let max = sizes.iter().max().copied().unwrap_or(0);
                let min = sizes.iter().min().copied().unwrap_or(0);
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }
}
