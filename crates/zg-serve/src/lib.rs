//! # zg-serve
//!
//! A long-lived credit-scoring/generation server over the ZiGong model:
//! the deployment half the paper's risk-control discussion assumes, built
//! so that *serving is a pure function of traffic and a clock*.
//!
//! - [`request`]: the request/response vocabulary — payloads, priorities,
//!   typed rejections ([`Rejection`]) and failures ([`ServeFailure`]).
//! - [`queue`]: the bounded priority-FIFO admission queue (backpressure
//!   instead of unbounded growth).
//! - [`engine`]: batch execution — [`ZiGongEngine`] holds persistent
//!   bit-exact replicas (from one [`zg_zigong::ZiGongSpec`]) with
//!   cross-request KV prefix sharing via [`zg_model::PrefixPool`];
//!   served scores are exact-`f64` equal to the offline evaluator for
//!   any worker count.
//! - [`server`]: continuous batching — admission, deadline expiry, and
//!   batch coalescing driven by an injectable [`zg_trace::Clock`].
//! - [`metrics`]: latency percentiles for load reports.
//! - [`ops`]: the live ops plane — per-request stage timelines, tumbling
//!   windowed p50/p99/QPS/gauge series, declarative SLOs with
//!   multi-window burn-rate alerts, a bounded flight recorder dumping
//!   post-mortems on breach, and a byte-deterministic Prometheus-style
//!   exposition. Passive: served scores are bitwise identical with the
//!   plane on or off.
//! - [`sim`]: the deterministic simulation harness — seeded Poisson
//!   traffic + [`zg_trace::ManualClock`] event loop; same seed, same
//!   batches, byte-identical traces.

pub mod engine;
pub mod metrics;
pub mod ops;
pub mod queue;
pub mod request;
pub mod server;
pub mod sim;

pub use engine::{Engine, EngineConfig, ZiGongEngine};
pub use metrics::{LatencyRecorder, LatencySummary};
pub use ops::{
    OpsConfig, OpsPlane, Outcome, PostMortem, RequestObs, RequestTimeline, Slo, SloAlert,
    SloObjective, Stage,
};
pub use queue::{BoundedQueue, QueuedRequest};
pub use request::{
    Completion, Payload, Priority, Rejection, Reply, Request, RequestId, ServeFailure,
};
pub use server::{ServeConfig, Server, ServerStats};
pub use sim::{drive, poisson_arrivals, poisson_traffic, EchoEngine, SimOutcome, TimedEngine};
