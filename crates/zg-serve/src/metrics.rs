//! Latency accounting for the server: a recorder accumulating per-request
//! latencies and a percentile summary (nearest-rank, deterministic).

/// Summary of a latency sample set, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub n: usize,
    /// Median (nearest-rank 50th percentile).
    pub p50: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// Accumulates request latencies, kept sorted on insert — percentile
/// queries are O(1) rank lookups with no per-call clone or re-sort.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    /// Samples in ascending `total_cmp` order.
    sorted: Vec<f64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one latency in seconds (sorted insertion).
    pub fn record(&mut self, seconds: f64) {
        let at = self
            .sorted
            .partition_point(|x| x.total_cmp(&seconds).is_le());
        self.sorted.insert(at, seconds);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`) over the samples so far.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        rank(&self.sorted, q)
    }

    /// Summarize all samples. Returns an all-zero summary when empty
    /// (the bench treats `n == 0` as "no traffic").
    pub fn summary(&self) -> LatencySummary {
        if self.sorted.is_empty() {
            return LatencySummary {
                n: 0,
                p50: 0.0,
                p99: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        let n = self.sorted.len();
        LatencySummary {
            n,
            p50: rank(&self.sorted, 0.50),
            p99: rank(&self.sorted, 0.99),
            mean: self.sorted.iter().sum::<f64>() / n as f64,
            max: self.sorted[n - 1],
        }
    }
}

/// Nearest-rank percentile of a *sorted* non-empty slice.
fn rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let r = (q * n as f64).ceil() as usize;
    sorted[r.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencyRecorder::new().summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut r = LatencyRecorder::new();
        // 1..=100 in scrambled insert order.
        for i in (1..=100u32).rev() {
            r.record(i as f64);
        }
        let s = r.summary();
        assert_eq!(s.n, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut r = LatencyRecorder::new();
        r.record(0.25);
        let s = r.summary();
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.max, 0.25);
    }

    #[test]
    fn percentile_handles_nan_free_total_order() {
        let mut r = LatencyRecorder::new();
        for v in [0.3, 0.1, 0.2] {
            r.record(v);
        }
        assert_eq!(r.percentile(0.0), 0.1);
        assert_eq!(r.percentile(1.0), 0.3);
    }
}
