//! Latency accounting for the server: a recorder accumulating per-request
//! latencies and a percentile summary (nearest-rank, deterministic).

/// Summary of a latency sample set, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub n: usize,
    /// Median (nearest-rank 50th percentile).
    pub p50: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// Accumulates request latencies; `summary` sorts once at the end.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one latency in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`) over the samples so far.
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&mut self.samples.clone(), q)
    }

    /// Summarize all samples. Returns an all-zero summary when empty
    /// (the bench treats `n == 0` as "no traffic").
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary {
                n: 0,
                p50: 0.0,
                p99: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        LatencySummary {
            n,
            p50: rank(&sorted, 0.50),
            p99: rank(&sorted, 0.99),
            mean: sorted.iter().sum::<f64>() / n as f64,
            max: sorted[n - 1],
        }
    }
}

/// Nearest-rank percentile of a *sorted* non-empty slice.
fn rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let r = (q * n as f64).ceil() as usize;
    sorted[r.clamp(1, n) - 1]
}

fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    rank(samples, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencyRecorder::new().summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut r = LatencyRecorder::new();
        // 1..=100 in scrambled insert order.
        for i in (1..=100u32).rev() {
            r.record(i as f64);
        }
        let s = r.summary();
        assert_eq!(s.n, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut r = LatencyRecorder::new();
        r.record(0.25);
        let s = r.summary();
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.max, 0.25);
    }

    #[test]
    fn percentile_handles_nan_free_total_order() {
        let mut r = LatencyRecorder::new();
        for v in [0.3, 0.1, 0.2] {
            r.record(v);
        }
        assert_eq!(r.percentile(0.0), 0.1);
        assert_eq!(r.percentile(1.0), 0.3);
    }
}
