//! The live ops plane: per-request stage timelines, tumbling-window SLO
//! metrics with multi-window burn-rate alerting, and a flight recorder
//! that dumps a post-mortem bundle at the moment an SLO burns.
//!
//! ## Determinism and transparency contract
//!
//! The ops plane never reads a clock — every hook takes the timestamp
//! the server already read from its injected [`zg_trace::Clock`] — and
//! every container is a `BTreeMap`, `Vec`, or ring, so identical traffic
//! on identical clocks produces byte-identical exposition text and
//! flight-recorder dumps. Observation is *passive*: hooks only copy ids,
//! timestamps, and pool-stat snapshots, so served scores are bitwise
//! identical with the ops plane on or off (pinned by the
//! `ops_plane` integration tests).
//!
//! ## Pipeline
//!
//! `Server` hooks feed three layers:
//!
//! 1. **Timelines** — each admitted request accumulates
//!    `(stage, tick)` marks from admission through dispatch, the
//!    engine-side prefill/decode/score stamps, merge, and reply (or
//!    expiry), finalized into a [`RequestTimeline`].
//! 2. **Windows** — consecutive-stage deltas land in per-stage
//!    log-bucket latency shards ([`zg_trace::WindowedHist`]) keyed by
//!    the resolution tick, alongside windowed QPS/outcome counters,
//!    queue/lane/resident gauges, and prefix hit-token rates.
//! 3. **SLOs** — when [`OpsPlane::advance`] closes a window, every
//!    declared [`Slo`] is evaluated as a short-window + long-window
//!    burn rate (error rate over budget, the multi-window multi-burn
//!    alerting shape); a rising edge fires an alert and snapshots a
//!    [`PostMortem`] from the flight recorder.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use zg_trace::jsonl;
use zg_trace::{latency_edges, Expo, Hist, WindowedCounter, WindowedGauge, WindowedHist};

use crate::request::{Priority, RequestId, PRIORITY_LANES};

/// A point in a request's lifecycle, stamped with the injected clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admitted into the bounded queue.
    Admitted,
    /// Popped from the queue into an engine batch.
    Dispatched,
    /// Prompt prefill (shared-prefix path) finished on the replica.
    Prefill,
    /// Greedy answer decode finished on the replica.
    Decode,
    /// Two-way probability scored on the replica.
    Score,
    /// Reply merged back into batch order on the scheduler thread.
    Merged,
    /// Completion handed back to the caller.
    Replied,
    /// Expired in the queue past its deadline.
    Expired,
}

impl Stage {
    /// Mark name in timeline JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Dispatched => "dispatched",
            Stage::Prefill => "prefill",
            Stage::Decode => "decode",
            Stage::Score => "score",
            Stage::Merged => "merge",
            Stage::Replied => "reply",
            Stage::Expired => "expired",
        }
    }

    /// Label of the latency series fed by the delta from the *previous*
    /// mark to this one (`None` for marks that open a timeline or end it
    /// abnormally).
    fn latency_label(self) -> Option<&'static str> {
        match self {
            Stage::Admitted | Stage::Expired => None,
            Stage::Dispatched => Some("queue"),
            Stage::Prefill => Some("prefill"),
            Stage::Decode => Some("decode"),
            Stage::Score => Some("score"),
            Stage::Merged => Some("merge"),
            Stage::Replied => Some("reply"),
        }
    }
}

/// Per-request observation handed back by an engine: the engine-side
/// stage marks plus prefix-pool deltas attributable to this request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestObs {
    /// The request observed.
    pub id: RequestId,
    /// `(stage, tick)` marks stamped on the replica, in stamp order.
    pub marks: Vec<(Stage, f64)>,
    /// Prompt tokens this request served from the replica's prefix pool.
    pub hit_tokens: u64,
    /// Prompt tokens this request presented to pool lookup.
    pub lookup_tokens: u64,
    /// Pool-resident tokens on the serving replica after this request.
    pub resident_tokens: u64,
}

/// How a request's timeline ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served to completion.
    Served,
    /// Expired in the queue.
    Expired,
}

impl Outcome {
    fn name(self) -> &'static str {
        match self {
            Outcome::Served => "served",
            Outcome::Expired => "expired",
        }
    }
}

/// A finalized per-request timeline: where the latency went.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTimeline {
    /// Server-assigned id.
    pub id: RequestId,
    /// Scheduling class.
    pub priority: Priority,
    /// Template key, if the request declared one.
    pub template: Option<u64>,
    /// Terminal state.
    pub outcome: Outcome,
    /// Prefix-pool tokens served from cache for this request.
    pub hit_tokens: u64,
    /// Prefix-pool tokens presented to lookup for this request.
    pub lookup_tokens: u64,
    /// `(stage, tick)` marks in occurrence order, admission first.
    pub marks: Vec<(Stage, f64)>,
}

impl RequestTimeline {
    /// One canonical JSONL line (no trailing newline). Key order is
    /// fixed and floats use shortest-roundtrip formatting, so the line
    /// is byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "{{\"id\":{},\"priority\":\"{}\",\"template\":{},\"outcome\":\"{}\",\
             \"hit_tokens\":{},\"lookup_tokens\":{},\"marks\":[",
            self.id,
            self.priority.name(),
            match self.template {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            },
            self.outcome.name(),
            self.hit_tokens,
            self.lookup_tokens,
        )
        .expect("write to String"); // INVARIANT: write! to a String cannot fail.
        for (i, (stage, t)) in self.marks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"stage\":\"{}\",\"t\":{}}}",
                stage.name(),
                jsonl::num(*t)
            )
            .expect("write to String"); // INVARIANT: write! to a String cannot fail.
        }
        out.push_str("]}");
        out
    }
}

/// What an SLO protects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Request latency (reply tick − admission tick) must stay at or
    /// below this ceiling in seconds; each served request above it is
    /// one error, each served request one event.
    LatencyAbove(f64),
    /// Queue-deadline misses; errors are expirations, events are
    /// resolutions (served + expired).
    DeadlineMiss,
    /// Admission rejections; errors are rejections, events are
    /// submissions (admitted + rejected).
    Rejection,
}

/// One declarative service-level objective with multi-window burn-rate
/// alerting: with an error budget of `budget` (the tolerated error
/// rate), the alert fires when *both* the short and the long lookback
/// burn their budget at ≥ `burn_threshold`× the tolerated pace — the
/// short window gives fast detection, the long window suppresses blips.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Alert name (exposition label).
    pub name: String,
    /// What is measured.
    pub objective: SloObjective,
    /// Tolerated error rate in `(0, 1]` (e.g. `0.01` = 1% of events may
    /// violate the objective).
    pub budget: f64,
    /// Short lookback, in windows.
    pub short_windows: u64,
    /// Long lookback, in windows.
    pub long_windows: u64,
    /// Fire when both lookbacks burn at ≥ this multiple of budget pace.
    pub burn_threshold: f64,
}

/// A fired SLO alert (rising edge of the burn condition).
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Name of the [`Slo`] that fired.
    pub slo: String,
    /// Index of the closed window whose evaluation fired.
    pub window: u64,
    /// Burn rate over the short lookback ending at `window`.
    pub burn_short: f64,
    /// Burn rate over the long lookback ending at `window`.
    pub burn_long: f64,
    /// The threshold both burns met.
    pub threshold: f64,
}

/// Post-mortem bundle captured at the instant an alert fired: recent
/// timelines, the metric snapshot, and the queue state.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The alert that triggered the dump.
    pub alert: SloAlert,
    /// Flight-recorder contents as JSONL (oldest first).
    pub timelines_jsonl: String,
    /// Full exposition snapshot at dump time.
    pub exposition: String,
    /// Queue occupancy at the last scheduler observation.
    pub queue_depth: usize,
    /// Per-lane occupancy at the last scheduler observation.
    pub lane_depths: [usize; PRIORITY_LANES],
}

impl PostMortem {
    /// Render the bundle as one deterministic text document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "# zg-serve post-mortem slo={} window={} burn_short={} burn_long={} threshold={}\n\
             # queue depth={} lanes=[{},{},{}]\n\
             ## flight recorder\n{}## exposition\n{}",
            self.alert.slo,
            self.alert.window,
            jsonl::num(self.alert.burn_short),
            jsonl::num(self.alert.burn_long),
            jsonl::num(self.alert.threshold),
            self.queue_depth,
            self.lane_depths[0],
            self.lane_depths[1],
            self.lane_depths[2],
            self.timelines_jsonl,
            self.exposition,
        )
        .expect("write to String"); // INVARIANT: write! to a String cannot fail.
        out
    }
}

/// Ops-plane tuning knobs.
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Tumbling-window width in seconds (keyed to the injected clock).
    pub window_secs: f64,
    /// Flight-recorder capacity in timelines (oldest evicted first).
    pub recorder_capacity: usize,
    /// Closed windows kept resident for burn-rate lookback; must cover
    /// the longest SLO lookback.
    pub retain_windows: u64,
    /// Closed windows rendered in the exposition's windowed series.
    pub expo_windows: u64,
    /// Declared SLOs.
    pub slos: Vec<Slo>,
}

impl Default for OpsConfig {
    fn default() -> OpsConfig {
        OpsConfig {
            window_secs: 1.0,
            recorder_capacity: 256,
            retain_windows: 64,
            expo_windows: 16,
            slos: Vec::new(),
        }
    }
}

/// An in-flight request's accumulating timeline.
#[derive(Debug, Clone)]
struct Pending {
    priority: Priority,
    template: Option<u64>,
    marks: Vec<(Stage, f64)>,
    hit_tokens: u64,
    lookup_tokens: u64,
}

/// The live ops plane. Owned by the server; every method takes the
/// timestamp the server read from its injected clock (the plane itself
/// never reads time — zg-lint rule D2 stays trivially satisfied).
pub struct OpsPlane {
    cfg: OpsConfig,
    pending: BTreeMap<RequestId, Pending>,
    // Windowed series (all keyed to the injected clock).
    stage_w: BTreeMap<&'static str, WindowedHist>,
    admitted_w: WindowedCounter,
    rejected_w: WindowedCounter,
    completed_w: WindowedCounter,
    expired_w: WindowedCounter,
    hit_tokens_w: WindowedCounter,
    lookup_tokens_w: WindowedCounter,
    slo_err_w: Vec<WindowedCounter>,
    queue_depth_g: WindowedGauge,
    lane_g: Vec<WindowedGauge>,
    resident_g: WindowedGauge,
    // Cumulative series (never retained away).
    stage_total: BTreeMap<&'static str, Hist>,
    admitted_total: u64,
    rejected_total: u64,
    completed_total: u64,
    expired_total: u64,
    batches_total: u64,
    hit_tokens_total: u64,
    lookup_tokens_total: u64,
    inflight: u64,
    // SLO engine.
    firing: Vec<bool>,
    alerts: Vec<SloAlert>,
    postmortems: Vec<PostMortem>,
    /// First window index not yet closed.
    closed_before: u64,
    // Flight recorder.
    recorder: VecDeque<RequestTimeline>,
    recorder_dropped: u64,
    // Last queue observation (for post-mortems).
    last_queue_depth: usize,
    last_lane_depths: [usize; PRIORITY_LANES],
}

impl OpsPlane {
    /// An empty plane under `cfg`.
    pub fn new(cfg: OpsConfig) -> OpsPlane {
        assert!(cfg.window_secs > 0.0, "window width must be positive");
        assert!(
            cfg.recorder_capacity > 0,
            "recorder capacity must be positive"
        );
        let longest = cfg
            .slos
            .iter()
            .map(|s| s.short_windows.max(s.long_windows))
            .max()
            .unwrap_or(0);
        assert!(
            cfg.retain_windows >= longest.max(cfg.expo_windows),
            "retain_windows must cover the longest SLO lookback and expo_windows"
        );
        for slo in &cfg.slos {
            assert!(slo.budget > 0.0 && slo.budget <= 1.0, "budget in (0, 1]");
            assert!(
                slo.short_windows >= 1 && slo.long_windows >= slo.short_windows,
                "lookbacks must be >= 1 window, long >= short"
            );
            assert!(slo.burn_threshold > 0.0, "burn threshold must be positive");
        }
        let w = cfg.window_secs;
        OpsPlane {
            pending: BTreeMap::new(),
            stage_w: BTreeMap::new(),
            admitted_w: WindowedCounter::new(w),
            rejected_w: WindowedCounter::new(w),
            completed_w: WindowedCounter::new(w),
            expired_w: WindowedCounter::new(w),
            hit_tokens_w: WindowedCounter::new(w),
            lookup_tokens_w: WindowedCounter::new(w),
            slo_err_w: cfg.slos.iter().map(|_| WindowedCounter::new(w)).collect(),
            queue_depth_g: WindowedGauge::new(w),
            lane_g: (0..PRIORITY_LANES).map(|_| WindowedGauge::new(w)).collect(),
            resident_g: WindowedGauge::new(w),
            stage_total: BTreeMap::new(),
            admitted_total: 0,
            rejected_total: 0,
            completed_total: 0,
            expired_total: 0,
            batches_total: 0,
            hit_tokens_total: 0,
            lookup_tokens_total: 0,
            inflight: 0,
            firing: vec![false; cfg.slos.len()],
            alerts: Vec::new(),
            postmortems: Vec::new(),
            closed_before: 0,
            recorder: VecDeque::with_capacity(cfg.recorder_capacity),
            recorder_dropped: 0,
            last_queue_depth: 0,
            last_lane_depths: [0; PRIORITY_LANES],
            cfg,
        }
    }

    /// A request was admitted at tick `t`.
    pub fn on_admitted(
        &mut self,
        id: RequestId,
        priority: Priority,
        template: Option<u64>,
        t: f64,
    ) {
        self.admitted_w.add(t, 1.0);
        self.admitted_total += 1;
        self.inflight += 1;
        self.pending.insert(
            id,
            Pending {
                priority,
                template,
                marks: vec![(Stage::Admitted, t)],
                hit_tokens: 0,
                lookup_tokens: 0,
            },
        );
    }

    /// A submission was rejected at tick `t` (never entered the queue).
    pub fn on_rejected(&mut self, t: f64) {
        self.rejected_w.add(t, 1.0);
        self.rejected_total += 1;
    }

    /// A queued request expired at tick `t`.
    pub fn on_expired(&mut self, id: RequestId, t: f64) {
        self.expired_w.add(t, 1.0);
        self.expired_total += 1;
        self.inflight = self.inflight.saturating_sub(1);
        if let Some(mut p) = self.pending.remove(&id) {
            p.marks.push((Stage::Expired, t));
            self.seal(id, p, Outcome::Expired);
        }
    }

    /// A request was popped into an engine batch at tick `t`.
    pub fn on_dispatched(&mut self, id: RequestId, t: f64) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.marks.push((Stage::Dispatched, t));
        }
    }

    /// An engine batch of `size` requests was dispatched at tick `t`.
    pub fn on_batch(&mut self, _t: f64, _size: usize) {
        self.batches_total += 1;
    }

    /// Merge an engine-side observation; `t_merged` is the tick the
    /// scheduler merged replies back into batch order.
    pub fn on_engine_obs(&mut self, obs: RequestObs, t_merged: f64) {
        self.hit_tokens_w.add(t_merged, obs.hit_tokens as f64);
        self.lookup_tokens_w.add(t_merged, obs.lookup_tokens as f64);
        self.hit_tokens_total += obs.hit_tokens;
        self.lookup_tokens_total += obs.lookup_tokens;
        self.resident_g.set(t_merged, obs.resident_tokens as f64);
        if let Some(p) = self.pending.get_mut(&obs.id) {
            p.marks.extend(obs.marks);
            p.marks.push((Stage::Merged, t_merged));
            p.hit_tokens = obs.hit_tokens;
            p.lookup_tokens = obs.lookup_tokens;
        }
    }

    /// A completion for `id` was handed back at tick `t`.
    pub fn on_served(&mut self, id: RequestId, t: f64) {
        self.completed_w.add(t, 1.0);
        self.completed_total += 1;
        self.inflight = self.inflight.saturating_sub(1);
        let Some(mut p) = self.pending.remove(&id) else {
            return;
        };
        p.marks.push((Stage::Replied, t));
        // Stage deltas: consecutive marks feed the stage's latency
        // series, attributed to the resolution window.
        let mut prev: Option<f64> = None;
        let mut first: Option<f64> = None;
        for &(stage, mt) in &p.marks {
            if first.is_none() {
                first = Some(mt);
            }
            if let (Some(pt), Some(label)) = (prev, stage.latency_label()) {
                self.record_stage(label, t, (mt - pt).max(0.0));
            }
            prev = Some(mt);
        }
        if let Some(f) = first {
            let latency = (t - f).max(0.0);
            self.record_stage("total", t, latency);
            // Latency-objective errors are counted exactly once, here.
            for (i, slo) in self.cfg.slos.iter().enumerate() {
                if let SloObjective::LatencyAbove(ceiling) = slo.objective {
                    if latency > ceiling {
                        // INVARIANT: slo_err_w is built with one counter
                        // per configured SLO, so i is in bounds.
                        self.slo_err_w[i].add(t, 1.0);
                    }
                }
            }
        }
        self.seal(id, p, Outcome::Served);
    }

    /// Queue state observed at the top of a scheduler tick.
    pub fn observe_queue(&mut self, t: f64, depth: usize, lanes: [usize; PRIORITY_LANES]) {
        self.queue_depth_g.set(t, depth as f64);
        for (g, &d) in self.lane_g.iter_mut().zip(lanes.iter()) {
            g.set(t, d as f64);
        }
        self.last_queue_depth = depth;
        self.last_lane_depths = lanes;
    }

    /// Close every window strictly before the one containing `t`,
    /// evaluating SLOs at each close (in window order) and retiring
    /// shards beyond the retention horizon.
    ///
    /// Catch-up is clamped to the retention horizon: under a wall clock
    /// the first tick sits ~1.7e9 windows past window 0, and everything
    /// older than `retain_windows` holds no data the series would have
    /// kept anyway, so those windows are skipped rather than closed one
    /// by one.
    pub fn advance(&mut self, t: f64) {
        let cur = zg_trace::window_of(t, self.cfg.window_secs);
        self.closed_before = self
            .closed_before
            .max(cur.saturating_sub(self.cfg.retain_windows));
        while self.closed_before < cur {
            let w = self.closed_before;
            self.close_window(w);
            self.closed_before += 1;
        }
        let horizon = cur.saturating_sub(self.cfg.retain_windows);
        self.retain(horizon);
    }

    /// Close windows through the one containing `t` *inclusive* —
    /// call once at end of run so the final partial window is evaluated
    /// and rendered. Catch-up clamps to the retention horizon exactly
    /// like [`OpsPlane::advance`].
    pub fn finish(&mut self, t: f64) {
        let through = zg_trace::window_of(t, self.cfg.window_secs);
        self.closed_before = self
            .closed_before
            .max((through + 1).saturating_sub(self.cfg.retain_windows));
        while self.closed_before <= through {
            let w = self.closed_before;
            self.close_window(w);
            self.closed_before += 1;
        }
    }

    /// Alerts fired so far (in fire order).
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Drain captured post-mortem bundles (fire order).
    pub fn take_postmortems(&mut self) -> Vec<PostMortem> {
        std::mem::take(&mut self.postmortems)
    }

    /// Flight-recorder contents as JSONL, oldest first (one line per
    /// timeline, trailing newline per line).
    pub fn flight_recorder_jsonl(&self) -> String {
        let mut out = String::new();
        for tl in &self.recorder {
            out.push_str(&tl.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Byte-deterministic Prometheus-style text snapshot of the whole
    /// plane: cumulative totals, per-stage latency histograms, the last
    /// `expo_windows` closed windows' p50/p99/QPS/gauge series, and SLO
    /// state.
    pub fn exposition(&self) -> String {
        let mut e = Expo::new();
        e.counter(
            "zg_serve_requests_total",
            &[("outcome", "admitted")],
            self.admitted_total as f64,
        );
        e.counter(
            "zg_serve_requests_total",
            &[("outcome", "rejected")],
            self.rejected_total as f64,
        );
        e.counter(
            "zg_serve_requests_total",
            &[("outcome", "completed")],
            self.completed_total as f64,
        );
        e.counter(
            "zg_serve_requests_total",
            &[("outcome", "expired")],
            self.expired_total as f64,
        );
        e.counter("zg_serve_batches_total", &[], self.batches_total as f64);
        e.gauge("zg_serve_inflight", &[], self.inflight as f64);
        e.counter(
            "zg_serve_prefix_tokens_total",
            &[("kind", "hit")],
            self.hit_tokens_total as f64,
        );
        e.counter(
            "zg_serve_prefix_tokens_total",
            &[("kind", "lookup")],
            self.lookup_tokens_total as f64,
        );
        for (label, h) in &self.stage_total {
            e.hist("zg_serve_stage_seconds", &[("stage", label)], h);
        }
        // Windowed series over the last `expo_windows` *closed* windows.
        let hi = self.closed_before;
        let lo = hi.saturating_sub(self.cfg.expo_windows);
        for w in lo..hi {
            let ws = w.to_string();
            let qps = self.completed_w.get(w) / self.cfg.window_secs;
            e.gauge("zg_serve_window_qps", &[("window", &ws)], qps);
        }
        for q in [
            ("zg_serve_window_p50_seconds", 0.50),
            ("zg_serve_window_p99_seconds", 0.99),
        ] {
            for (label, wh) in &self.stage_w {
                for w in lo..hi {
                    if let Some(h) = wh.shard(w) {
                        let ws = w.to_string();
                        e.gauge(q.0, &[("stage", label), ("window", &ws)], h.quantile(q.1));
                    }
                }
            }
        }
        for w in lo..hi {
            let ws = w.to_string();
            let lookups = self.lookup_tokens_w.get(w);
            let rate = if lookups > 0.0 {
                self.hit_tokens_w.get(w) / lookups
            } else {
                0.0
            };
            e.gauge("zg_serve_window_hit_token_rate", &[("window", &ws)], rate);
        }
        for w in lo..hi {
            if let Some(v) = self.queue_depth_g.max(w) {
                let ws = w.to_string();
                e.gauge("zg_serve_window_queue_depth_max", &[("window", &ws)], v);
            }
        }
        for (lane, g) in self.lane_g.iter().enumerate() {
            let name = match lane {
                0 => "high",
                1 => "normal",
                _ => "low",
            };
            for w in lo..hi {
                if let Some(v) = g.max(w) {
                    let ws = w.to_string();
                    e.gauge(
                        "zg_serve_window_lane_max",
                        &[("lane", name), ("window", &ws)],
                        v,
                    );
                }
            }
        }
        for w in lo..hi {
            if let Some(v) = self.resident_g.max(w) {
                let ws = w.to_string();
                e.gauge("zg_serve_window_resident_tokens_max", &[("window", &ws)], v);
            }
        }
        for (slo, firing) in self.cfg.slos.iter().zip(&self.firing) {
            e.gauge(
                "zg_serve_slo_firing",
                &[("slo", &slo.name)],
                if *firing { 1.0 } else { 0.0 },
            );
        }
        e.counter("zg_serve_slo_alerts_total", &[], self.alerts.len() as f64);
        e.gauge(
            "zg_serve_flight_recorder_len",
            &[],
            self.recorder.len() as f64,
        );
        e.counter(
            "zg_serve_flight_recorder_dropped_total",
            &[],
            self.recorder_dropped as f64,
        );
        e.finish()
    }

    fn record_stage(&mut self, label: &'static str, t: f64, v: f64) {
        let width = self.cfg.window_secs;
        self.stage_w
            .entry(label)
            .or_insert_with(|| WindowedHist::new(width, &latency_edges()))
            .record(t, v);
        self.stage_total
            .entry(label)
            .or_insert_with(Hist::latency)
            .record(v);
    }

    fn seal(&mut self, id: RequestId, p: Pending, outcome: Outcome) {
        let tl = RequestTimeline {
            id,
            priority: p.priority,
            template: p.template,
            outcome,
            hit_tokens: p.hit_tokens,
            lookup_tokens: p.lookup_tokens,
            marks: p.marks,
        };
        if self.recorder.len() == self.cfg.recorder_capacity {
            self.recorder.pop_front();
            self.recorder_dropped += 1;
        }
        self.recorder.push_back(tl);
    }

    /// Error and event counts of `slo` over windows `from..=to`.
    fn err_events(&self, idx: usize, slo: &Slo, from: u64, to: u64) -> (f64, f64) {
        match slo.objective {
            SloObjective::LatencyAbove(_) => (
                // INVARIANT: slo_err_w has one counter per configured SLO.
                self.slo_err_w[idx].sum_range(from, to),
                self.completed_w.sum_range(from, to),
            ),
            SloObjective::DeadlineMiss => {
                let miss = self.expired_w.sum_range(from, to);
                (miss, miss + self.completed_w.sum_range(from, to))
            }
            SloObjective::Rejection => {
                let rej = self.rejected_w.sum_range(from, to);
                (rej, rej + self.admitted_w.sum_range(from, to))
            }
        }
    }

    /// Burn rate of `slo` over the `lookback` windows ending at `w`:
    /// observed error rate over the budgeted error rate (`0` with no
    /// events).
    fn burn(&self, idx: usize, slo: &Slo, w: u64, lookback: u64) -> f64 {
        let from = (w + 1).saturating_sub(lookback);
        let (err, events) = self.err_events(idx, slo, from, w);
        if events <= 0.0 {
            return 0.0;
        }
        (err / events) / slo.budget
    }

    fn close_window(&mut self, w: u64) {
        for i in 0..self.cfg.slos.len() {
            // INVARIANT: firing and slo_err_w are built with one slot per
            // configured SLO, so i indexes all three in bounds.
            let slo = self.cfg.slos[i].clone();
            let burn_short = self.burn(i, &slo, w, slo.short_windows);
            let burn_long = self.burn(i, &slo, w, slo.long_windows);
            let cond = burn_short >= slo.burn_threshold && burn_long >= slo.burn_threshold;
            // INVARIANT: firing has one slot per configured SLO; i < slos.len().
            if cond && !self.firing[i] {
                let alert = SloAlert {
                    slo: slo.name.clone(),
                    window: w,
                    burn_short,
                    burn_long,
                    threshold: slo.burn_threshold,
                };
                self.alerts.push(alert.clone());
                self.postmortems.push(PostMortem {
                    alert,
                    timelines_jsonl: self.flight_recorder_jsonl(),
                    exposition: self.exposition(),
                    queue_depth: self.last_queue_depth,
                    lane_depths: self.last_lane_depths,
                });
            }
            // INVARIANT: firing has one slot per configured SLO; i < slos.len().
            self.firing[i] = cond;
        }
    }

    fn retain(&mut self, horizon: u64) {
        if horizon == 0 {
            return;
        }
        for wh in self.stage_w.values_mut() {
            wh.retain_from(horizon);
        }
        self.admitted_w.retain_from(horizon);
        self.rejected_w.retain_from(horizon);
        self.completed_w.retain_from(horizon);
        self.expired_w.retain_from(horizon);
        self.hit_tokens_w.retain_from(horizon);
        self.lookup_tokens_w.retain_from(horizon);
        for c in &mut self.slo_err_w {
            c.retain_from(horizon);
        }
        self.queue_depth_g.retain_from(horizon);
        for g in &mut self.lane_g {
            g.retain_from(horizon);
        }
        self.resident_g.retain_from(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo_deadline(short: u64, long: u64, budget: f64, thr: f64) -> Slo {
        Slo {
            name: "deadline".into(),
            objective: SloObjective::DeadlineMiss,
            budget,
            short_windows: short,
            long_windows: long,
            burn_threshold: thr,
        }
    }

    fn plane_with(slos: Vec<Slo>) -> OpsPlane {
        OpsPlane::new(OpsConfig {
            window_secs: 1.0,
            recorder_capacity: 4,
            retain_windows: 16,
            expo_windows: 4,
            slos,
        })
    }

    #[test]
    fn timeline_jsonl_is_canonical() {
        let tl = RequestTimeline {
            id: 7,
            priority: Priority::High,
            template: Some(3),
            outcome: Outcome::Served,
            hit_tokens: 12,
            lookup_tokens: 20,
            marks: vec![(Stage::Admitted, 0.5), (Stage::Replied, 1.25)],
        };
        assert_eq!(
            tl.to_jsonl(),
            "{\"id\":7,\"priority\":\"high\",\"template\":3,\"outcome\":\"served\",\
             \"hit_tokens\":12,\"lookup_tokens\":20,\"marks\":[\
             {\"stage\":\"admitted\",\"t\":0.5},{\"stage\":\"reply\",\"t\":1.25}]}"
        );
        let untemplated = RequestTimeline {
            template: None,
            ..tl
        };
        assert!(untemplated.to_jsonl().contains("\"template\":null"));
    }

    #[test]
    fn stage_deltas_feed_queue_and_total_series() {
        let mut p = plane_with(Vec::new());
        p.on_admitted(0, Priority::Normal, None, 0.1);
        p.on_dispatched(0, 0.4);
        p.on_served(0, 0.5);
        let queue = p.stage_total.get("queue").expect("queue series");
        assert_eq!(queue.n, 1);
        assert!((queue.sum - 0.3).abs() < 1e-12);
        let total = p.stage_total.get("total").expect("total series");
        assert!((total.sum - 0.4).abs() < 1e-12);
        // Windowed shard landed in the resolution window (0).
        assert_eq!(
            p.stage_w.get("queue").and_then(|w| w.shard(0)).map(|h| h.n),
            Some(1)
        );
    }

    #[test]
    fn burn_rate_fires_on_rising_edge_only() {
        // Budget 10%, threshold 1x, 1-window short, 2-window long.
        let mut p = plane_with(vec![slo_deadline(1, 2, 0.1, 1.0)]);
        // Window 0: 1 expiry, 1 completion -> 50% error rate, burn 5.
        p.on_admitted(0, Priority::Normal, None, 0.1);
        p.on_admitted(1, Priority::Normal, None, 0.1);
        p.on_expired(0, 0.5);
        p.on_served(1, 0.6);
        // Window 1: all healthy.
        p.on_admitted(2, Priority::Normal, None, 1.2);
        p.on_served(2, 1.4);
        p.advance(1.0); // closes window 0 -> fires
        assert_eq!(p.alerts().len(), 1);
        assert_eq!(p.alerts()[0].window, 0);
        assert!(p.alerts()[0].burn_short >= 1.0);
        // Window 1 close: short burn 0 but long burn (1 err / 3 events /
        // 0.1) still >= 1 — condition holds, no NEW alert (still firing).
        p.advance(2.0);
        assert_eq!(p.alerts().len(), 1);
        // Window 2 empty: burns drop to 0, firing clears; a later breach
        // fires again.
        p.on_admitted(3, Priority::Normal, None, 3.1);
        p.on_expired(3, 3.2);
        p.advance(4.0);
        assert_eq!(p.alerts().len(), 2);
        let pms = p.take_postmortems();
        assert_eq!(pms.len(), 2);
        assert!(pms[0].render().contains("post-mortem slo=deadline"));
        assert!(p.take_postmortems().is_empty(), "drained");
    }

    #[test]
    fn flight_recorder_is_bounded_ring() {
        let mut p = plane_with(Vec::new()); // capacity 4
        for id in 0..6u64 {
            p.on_admitted(id, Priority::Normal, None, 0.1);
            p.on_served(id, 0.2);
        }
        assert_eq!(p.recorder.len(), 4);
        assert_eq!(p.recorder_dropped, 2);
        let jsonl = p.flight_recorder_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.starts_with("{\"id\":2,"), "oldest surviving first");
    }

    #[test]
    fn exposition_renders_closed_windows_only_and_is_deterministic() {
        let run = || {
            let mut p = plane_with(Vec::new());
            p.on_admitted(0, Priority::High, Some(1), 0.2);
            p.on_dispatched(0, 0.3);
            p.on_served(0, 0.4);
            p.observe_queue(0.4, 3, [1, 2, 0]);
            let before = p.exposition();
            p.finish(0.4);
            (before, p.exposition())
        };
        let (before, after) = run();
        assert!(
            !before.contains("zg_serve_window_qps"),
            "window 0 not closed yet"
        );
        assert!(after.contains("zg_serve_window_qps{window=\"0\"} 1\n"));
        assert!(after.contains("zg_serve_window_queue_depth_max{window=\"0\"} 3\n"));
        assert!(after.contains("zg_serve_window_lane_max{lane=\"normal\",window=\"0\"} 2\n"));
        assert!(after.contains("zg_serve_requests_total{outcome=\"admitted\"} 1\n"));
        let (b2, a2) = run();
        assert_eq!(before, b2, "byte-identical across reruns");
        assert_eq!(after, a2);
    }

    #[test]
    fn retention_keeps_the_lookback_horizon() {
        let mut p = OpsPlane::new(OpsConfig {
            window_secs: 1.0,
            recorder_capacity: 4,
            retain_windows: 2,
            expo_windows: 2,
            slos: Vec::new(),
        });
        p.on_admitted(0, Priority::Normal, None, 0.1);
        p.on_served(0, 0.2);
        p.advance(10.0);
        assert_eq!(p.completed_w.sum_range(0, 20), 0.0, "window 0 retired");
    }
}
