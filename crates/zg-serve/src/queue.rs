//! The bounded admission queue: priority lanes with FIFO order inside
//! each lane, capacity-based backpressure, and deadline expiry.

use std::collections::VecDeque;

use crate::request::{Payload, Priority, Rejection, RequestId, PRIORITY_LANES};

/// A request resident in the queue (admitted, not yet dispatched).
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Server-assigned id.
    pub id: RequestId,
    /// The work to do.
    pub payload: Payload,
    /// Scheduling class.
    pub priority: Priority,
    /// Clock time at admission.
    pub arrived: f64,
    /// Absolute clock time after which the request is expired, if any.
    pub deadline: Option<f64>,
}

/// Bounded priority-FIFO queue.
///
/// Invariants (pinned by the simulation property tests):
/// * total occupancy never exceeds `capacity` — `push` returns a typed
///   [`Rejection::QueueFull`] instead of growing;
/// * within one priority lane, requests leave in arrival order;
/// * across lanes, a batch always drains strictly higher priorities
///   before lower ones;
/// * expiry removes exactly the requests whose deadline has passed,
///   preserving relative order of the survivors.
pub struct BoundedQueue {
    lanes: [VecDeque<QueuedRequest>; PRIORITY_LANES],
    capacity: usize,
    len: usize,
}

impl BoundedQueue {
    /// An empty queue admitting at most `capacity` requests.
    pub fn new(capacity: usize) -> BoundedQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            lanes: std::array::from_fn(|_| VecDeque::new()),
            capacity,
            len: 0,
        }
    }

    /// Admit a request, or reject it with backpressure.
    pub fn push(&mut self, req: QueuedRequest) -> Result<(), Rejection> {
        if self.len >= self.capacity {
            return Err(Rejection::QueueFull {
                capacity: self.capacity,
            });
        }
        // INVARIANT: lane() maps each priority to 0..PRIORITY_LANES.
        self.lanes[req.priority.lane()].push_back(req);
        self.len += 1;
        Ok(())
    }

    /// Remove and return every queued request whose deadline is at or
    /// before `now`, in priority-FIFO order.
    pub fn expire(&mut self, now: f64) -> Vec<QueuedRequest> {
        let mut out = Vec::new();
        for lane in &mut self.lanes {
            let mut keep = VecDeque::with_capacity(lane.len());
            for req in lane.drain(..) {
                match req.deadline {
                    Some(d) if d <= now => out.push(req),
                    _ => keep.push_back(req),
                }
            }
            *lane = keep;
        }
        self.len -= out.len();
        out
    }

    /// Dequeue up to `max` requests: all of `High` before any `Normal`
    /// before any `Low`, FIFO inside each lane.
    pub fn pop_batch(&mut self, max: usize) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(max.min(self.len));
        for lane in &mut self.lanes {
            while out.len() < max {
                match lane.pop_front() {
                    Some(req) => out.push(req),
                    None => break,
                }
            }
        }
        self.len -= out.len();
        out
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: RequestId, priority: Priority, deadline: Option<f64>) -> QueuedRequest {
        QueuedRequest {
            id,
            payload: Payload::Generate {
                prompt: "x".into(),
                max_new: 1,
            },
            priority,
            arrived: 0.0,
            deadline,
        }
    }

    #[test]
    fn capacity_is_enforced_with_typed_rejection() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(req(1, Priority::Normal, None)).is_ok());
        assert!(q.push(req(2, Priority::High, None)).is_ok());
        assert_eq!(
            q.push(req(3, Priority::High, None)),
            Err(Rejection::QueueFull { capacity: 2 })
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_order_is_priority_then_fifo() {
        let mut q = BoundedQueue::new(8);
        for (id, p) in [
            (1, Priority::Low),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::Normal),
            (5, Priority::High),
        ] {
            q.push(req(id, p, None)).unwrap();
        }
        let ids: Vec<RequestId> = q.pop_batch(4).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 5, 2, 4]);
        let ids: Vec<RequestId> = q.pop_batch(4).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn expiry_removes_exactly_the_overdue() {
        let mut q = BoundedQueue::new(8);
        q.push(req(1, Priority::Normal, Some(1.0))).unwrap();
        q.push(req(2, Priority::Normal, Some(5.0))).unwrap();
        q.push(req(3, Priority::High, None)).unwrap();
        let expired: Vec<RequestId> = q.expire(2.0).iter().map(|r| r.id).collect();
        assert_eq!(expired, vec![1]);
        assert_eq!(q.len(), 2);
        // Survivors keep their order.
        let ids: Vec<RequestId> = q.pop_batch(8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn expiry_frees_capacity() {
        let mut q = BoundedQueue::new(1);
        q.push(req(1, Priority::Normal, Some(1.0))).unwrap();
        assert!(q.push(req(2, Priority::Normal, None)).is_err());
        assert_eq!(q.expire(1.0).len(), 1);
        assert!(q.push(req(2, Priority::Normal, None)).is_ok());
    }
}
