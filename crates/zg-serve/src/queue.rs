//! The bounded admission queue: priority lanes with FIFO order inside
//! each lane, capacity-based backpressure, and deadline expiry.

use std::collections::VecDeque;

use crate::request::{Payload, Priority, Rejection, RequestId, PRIORITY_LANES};

/// A request resident in the queue (admitted, not yet dispatched).
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Server-assigned id.
    pub id: RequestId,
    /// The work to do.
    pub payload: Payload,
    /// Scheduling class.
    pub priority: Priority,
    /// Clock time at admission.
    pub arrived: f64,
    /// Absolute clock time after which the request is expired, if any.
    pub deadline: Option<f64>,
    /// Client-declared template key (prefix-aware batching groups
    /// same-key requests; `None` never groups).
    pub template: Option<u64>,
}

/// Bounded priority-FIFO queue.
///
/// Invariants (pinned by the simulation property tests):
/// * total occupancy never exceeds `capacity` — `push` returns a typed
///   [`Rejection::QueueFull`] instead of growing;
/// * within one priority lane, requests leave in arrival order;
/// * across lanes, a batch always drains strictly higher priorities
///   before lower ones;
/// * expiry removes exactly the requests whose deadline has passed,
///   preserving relative order of the survivors.
pub struct BoundedQueue {
    lanes: [VecDeque<QueuedRequest>; PRIORITY_LANES],
    capacity: usize,
    len: usize,
}

impl BoundedQueue {
    /// An empty queue admitting at most `capacity` requests.
    pub fn new(capacity: usize) -> BoundedQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            lanes: std::array::from_fn(|_| VecDeque::new()),
            capacity,
            len: 0,
        }
    }

    /// Admit a request, or reject it with backpressure.
    pub fn push(&mut self, req: QueuedRequest) -> Result<(), Rejection> {
        if self.len >= self.capacity {
            return Err(Rejection::QueueFull {
                capacity: self.capacity,
            });
        }
        // INVARIANT: lane() maps each priority to 0..PRIORITY_LANES.
        self.lanes[req.priority.lane()].push_back(req);
        self.len += 1;
        Ok(())
    }

    /// Remove and return every queued request whose deadline is at or
    /// before `now`, in priority-FIFO order.
    pub fn expire(&mut self, now: f64) -> Vec<QueuedRequest> {
        let mut out = Vec::new();
        for lane in &mut self.lanes {
            let mut keep = VecDeque::with_capacity(lane.len());
            for req in lane.drain(..) {
                match req.deadline {
                    Some(d) if d <= now => out.push(req),
                    _ => keep.push_back(req),
                }
            }
            *lane = keep;
        }
        self.len -= out.len();
        out
    }

    /// Dequeue up to `max` requests: all of `High` before any `Normal`
    /// before any `Low`, FIFO inside each lane.
    pub fn pop_batch(&mut self, max: usize) -> Vec<QueuedRequest> {
        self.pop_batch_grouped(max, 0)
    }

    /// Dequeue up to `max` requests with **prefix-aware composition**:
    /// lanes still drain strictly `High` before `Normal` before `Low`,
    /// and each lane still takes its oldest request first — but after
    /// taking a lane head carrying a template key, up to `window`
    /// queued requests behind it are scanned and those sharing the key
    /// are pulled forward into the same contiguous run. Grouping
    /// same-template requests into one run is what lets the engine
    /// serve them on one replica whose radix pool already holds the
    /// template's KV prefix.
    ///
    /// Fairness bounds (pinned by the scheduler property tests):
    /// * the oldest waiting request of the highest non-empty lane is in
    ///   *every* batch, so the queue always advances and nothing
    ///   starves;
    /// * requests sharing one `(priority, template)` pair leave in
    ///   exact admission order (pulls scan front-to-back);
    /// * untemplated requests (`template == None`) are never reordered
    ///   relative to their lane;
    /// * `window == 0` is plain priority-FIFO ([`BoundedQueue::pop_batch`]).
    pub fn pop_batch_grouped(&mut self, max: usize, window: usize) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(max.min(self.len));
        for lane in &mut self.lanes {
            while out.len() < max {
                let head = match lane.pop_front() {
                    Some(req) => req,
                    None => break,
                };
                let key = head.template;
                out.push(head);
                let key = match key {
                    Some(k) if window > 0 => k,
                    _ => continue,
                };
                // Bounded lookahead: scan at most `window` requests deep,
                // pulling same-template ones forward in admission order.
                let mut scanned = 0usize;
                let mut i = 0usize;
                while scanned < window && out.len() < max {
                    let matches = match lane.get(i) {
                        Some(req) => req.template == Some(key),
                        None => break,
                    };
                    scanned += 1;
                    if matches {
                        match lane.remove(i) {
                            Some(req) => out.push(req),
                            None => break,
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.len -= out.len();
        out
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Occupancy of each priority lane, `High` first.
    pub fn lane_depths(&self) -> [usize; PRIORITY_LANES] {
        std::array::from_fn(|i| self.lanes[i].len())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: RequestId, priority: Priority, deadline: Option<f64>) -> QueuedRequest {
        QueuedRequest {
            id,
            payload: Payload::Generate {
                prompt: "x".into(),
                max_new: 1,
            },
            priority,
            arrived: 0.0,
            deadline,
            template: None,
        }
    }

    fn treq(id: RequestId, priority: Priority, template: Option<u64>) -> QueuedRequest {
        QueuedRequest {
            template,
            ..req(id, priority, None)
        }
    }

    #[test]
    fn capacity_is_enforced_with_typed_rejection() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(req(1, Priority::Normal, None)).is_ok());
        assert!(q.push(req(2, Priority::High, None)).is_ok());
        assert_eq!(
            q.push(req(3, Priority::High, None)),
            Err(Rejection::QueueFull { capacity: 2 })
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_order_is_priority_then_fifo() {
        let mut q = BoundedQueue::new(8);
        for (id, p) in [
            (1, Priority::Low),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::Normal),
            (5, Priority::High),
        ] {
            q.push(req(id, p, None)).unwrap();
        }
        let ids: Vec<RequestId> = q.pop_batch(4).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 5, 2, 4]);
        let ids: Vec<RequestId> = q.pop_batch(4).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn expiry_removes_exactly_the_overdue() {
        let mut q = BoundedQueue::new(8);
        q.push(req(1, Priority::Normal, Some(1.0))).unwrap();
        q.push(req(2, Priority::Normal, Some(5.0))).unwrap();
        q.push(req(3, Priority::High, None)).unwrap();
        let expired: Vec<RequestId> = q.expire(2.0).iter().map(|r| r.id).collect();
        assert_eq!(expired, vec![1]);
        assert_eq!(q.len(), 2);
        // Survivors keep their order.
        let ids: Vec<RequestId> = q.pop_batch(8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn grouped_pop_pulls_same_template_forward() {
        let mut q = BoundedQueue::new(8);
        for (id, t) in [
            (1, Some(9)),
            (2, Some(7)),
            (3, Some(9)),
            (4, None),
            (5, Some(9)),
        ] {
            q.push(treq(id, Priority::Normal, t)).unwrap();
        }
        // Head 1 (template 9) pulls 3 and 5 forward; 2 and 4 keep their
        // relative order behind the group.
        let ids: Vec<RequestId> = q.pop_batch_grouped(8, 8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 3, 5, 2, 4]);
    }

    #[test]
    fn grouped_pop_window_bounds_the_lookahead() {
        let mut q = BoundedQueue::new(8);
        for (id, t) in [(1, Some(9)), (2, None), (3, None), (4, Some(9))] {
            q.push(treq(id, Priority::Normal, t)).unwrap();
        }
        // Window 2 scans only requests 2 and 3: request 4 is out of
        // reach and stays in admission order.
        let ids: Vec<RequestId> = q.pop_batch_grouped(8, 2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn grouped_pop_window_zero_is_plain_fifo() {
        let mk = || {
            let mut q = BoundedQueue::new(8);
            for (id, t) in [(1, Some(3)), (2, Some(4)), (3, Some(3)), (4, Some(4))] {
                q.push(treq(id, Priority::Normal, t)).unwrap();
            }
            q
        };
        let plain: Vec<RequestId> = mk().pop_batch(8).iter().map(|r| r.id).collect();
        let grouped: Vec<RequestId> = mk().pop_batch_grouped(8, 0).iter().map(|r| r.id).collect();
        assert_eq!(plain, vec![1, 2, 3, 4]);
        assert_eq!(plain, grouped);
    }

    #[test]
    fn grouped_pop_never_crosses_priority_lanes() {
        let mut q = BoundedQueue::new(8);
        q.push(treq(1, Priority::Normal, Some(5))).unwrap();
        q.push(treq(2, Priority::High, Some(5))).unwrap();
        q.push(treq(3, Priority::Normal, Some(5))).unwrap();
        q.push(treq(4, Priority::High, Some(6))).unwrap();
        // High drains first even though 1 and 3 share key 5 with 2.
        let ids: Vec<RequestId> = q.pop_batch_grouped(8, 8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 4, 1, 3]);
    }

    #[test]
    fn grouped_pop_respects_max_batch() {
        let mut q = BoundedQueue::new(8);
        for id in 1..=5 {
            q.push(treq(id, Priority::Normal, Some(1))).unwrap();
        }
        let ids: Vec<RequestId> = q.pop_batch_grouped(3, 8).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn expiry_frees_capacity() {
        let mut q = BoundedQueue::new(1);
        q.push(req(1, Priority::Normal, Some(1.0))).unwrap();
        assert!(q.push(req(2, Priority::Normal, None)).is_err());
        assert_eq!(q.expire(1.0).len(), 1);
        assert!(q.push(req(2, Priority::Normal, None)).is_ok());
    }
}
