//! Request/response vocabulary of the scoring server: payloads,
//! priorities, typed rejections, and completion records.

/// Server-assigned request identifier (monotonic per server).
pub type RequestId = u64;

/// Scheduling priority. Lower discriminant is served first; ordering is
/// FIFO *within* a priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Interactive lending decisions (a loan officer is waiting).
    High = 0,
    /// Default priority for online scoring traffic.
    Normal = 1,
    /// Bulk/backfill traffic (portfolio re-scores).
    Low = 2,
}

/// Number of priority classes (size of the queue's lane array).
pub const PRIORITY_LANES: usize = 3;

impl Priority {
    /// Lane index of this priority.
    pub fn lane(self) -> usize {
        self as usize
    }

    /// Lower-case label (timeline JSONL, exposition labels).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// What the request asks the model to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Answer + positive-class probability for one credit instruction
    /// (the Table-2 evaluation item, served online): mirrors
    /// `ZiGongModel::evaluate_item`.
    Score {
        /// Rendered instruction prompt.
        prompt: String,
        /// Negative-class candidate answer.
        negative: String,
        /// Positive-class candidate answer.
        positive: String,
    },
    /// Free-form greedy generation from a prompt.
    Generate {
        /// Prompt text.
        prompt: String,
        /// Maximum new tokens to decode.
        max_new: usize,
    },
}

impl Payload {
    /// The prompt text (for admission validation).
    pub fn prompt(&self) -> &str {
        match self {
            Payload::Score { prompt, .. } | Payload::Generate { prompt, .. } => prompt,
        }
    }
}

/// A request as submitted by a client.
#[derive(Debug, Clone)]
pub struct Request {
    /// The work to do.
    pub payload: Payload,
    /// Scheduling class.
    pub priority: Priority,
    /// Seconds the request may wait in the queue before it is timed
    /// out; `None` uses the server's default (which may itself be
    /// "never").
    pub timeout: Option<f64>,
    /// Client-declared template key: requests rendered from the same
    /// prompt template share one key, letting the scheduler group them
    /// into the same engine chunk (prefix-aware batching) and the
    /// engine route them to the replica whose radix pool already holds
    /// the template's KV prefix. `None` opts out — the request is never
    /// reordered relative to its priority lane.
    pub template: Option<u64>,
}

impl Request {
    /// A `Normal`-priority scoring request with the default timeout.
    pub fn score(
        prompt: impl Into<String>,
        negative: impl Into<String>,
        positive: impl Into<String>,
    ) -> Request {
        Request {
            payload: Payload::Score {
                prompt: prompt.into(),
                negative: negative.into(),
                positive: positive.into(),
            },
            priority: Priority::Normal,
            timeout: None,
            template: None,
        }
    }

    /// A `Normal`-priority generation request with the default timeout.
    pub fn generate(prompt: impl Into<String>, max_new: usize) -> Request {
        Request {
            payload: Payload::Generate {
                prompt: prompt.into(),
                max_new,
            },
            priority: Priority::Normal,
            timeout: None,
            template: None,
        }
    }

    /// Same request at a different priority.
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Same request with an explicit queue timeout in seconds.
    pub fn with_timeout(mut self, seconds: f64) -> Request {
        self.timeout = Some(seconds);
        self
    }

    /// Same request tagged with a prompt-template key for prefix-aware
    /// batching and replica affinity.
    pub fn with_template(mut self, template: u64) -> Request {
        self.template = Some(template);
        self
    }
}

/// Typed admission failure: the request never entered the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is full — backpressure; retry later.
    QueueFull {
        /// The queue's capacity at rejection time.
        capacity: usize,
    },
    /// The prompt was empty (nothing to prefill).
    EmptyPrompt,
    /// A `Generate` request asked for zero new tokens.
    EmptyGeneration,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::EmptyPrompt => write!(f, "empty prompt"),
            Rejection::EmptyGeneration => write!(f, "generate with max_new = 0"),
        }
    }
}

/// Successful model output.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Output of a [`Payload::Score`] request.
    Scored {
        /// Greedy answer text (parseable by the shared Miss-aware parser).
        answer: String,
        /// Positive-class probability in `[0, 1]`.
        p_positive: f64,
    },
    /// Output of a [`Payload::Generate`] request.
    Generated {
        /// Decoded text.
        text: String,
    },
}

/// Typed in-queue failure: the request was admitted but never served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFailure {
    /// The request sat in the queue past its deadline.
    TimedOut {
        /// Seconds it waited before expiring.
        waited: f64,
    },
}

/// Terminal record of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Server-assigned id (returned by `submit`).
    pub id: RequestId,
    /// Scheduling class it ran under.
    pub priority: Priority,
    /// Clock time at admission.
    pub arrived: f64,
    /// Clock time at resolution (batch finish or expiry).
    pub finished: f64,
    /// The reply, or the typed failure.
    pub result: Result<Reply, ServeFailure>,
}

impl Completion {
    /// Queue + service latency in seconds.
    pub fn latency(&self) -> f64 {
        self.finished - self.arrived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::High.lane(), 0);
        assert_eq!(Priority::Low.lane(), PRIORITY_LANES - 1);
    }

    #[test]
    fn builders_fill_fields() {
        let r = Request::score("p", "bad", "good")
            .with_priority(Priority::High)
            .with_timeout(2.5)
            .with_template(7);
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.timeout, Some(2.5));
        assert_eq!(r.template, Some(7));
        assert_eq!(r.payload.prompt(), "p");
        let g = Request::generate("q", 4);
        assert_eq!(g.payload.prompt(), "q");
        assert_eq!(g.priority, Priority::Normal);
        assert_eq!(g.template, None);
    }

    #[test]
    fn rejection_messages_are_informative() {
        assert!(Rejection::QueueFull { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(Rejection::EmptyPrompt.to_string().contains("empty"));
    }

    #[test]
    fn completion_latency_is_finish_minus_arrival() {
        let c = Completion {
            id: 1,
            priority: Priority::Normal,
            arrived: 2.0,
            finished: 5.5,
            result: Err(ServeFailure::TimedOut { waited: 3.5 }),
        };
        assert_eq!(c.latency(), 3.5);
    }
}
