//! The server: admission control in front of the bounded queue, and a
//! clock-driven scheduling loop that coalesces queued requests into
//! engine batches (continuous batching).
//!
//! Time is injected as a [`zg_trace::Clock`]; with a
//! [`zg_trace::ManualClock`] the whole server is a deterministic
//! simulation, with [`zg_trace::wall_clock`] it serves real traffic.
//! All scheduling decisions (admission, expiry, batch composition) are
//! pure functions of queue state and the injected clock — the engine
//! never influences what gets batched next, only when `tick` returns.

use zg_trace::Clock;

use crate::engine::Engine;
use crate::ops::{OpsConfig, OpsPlane};
use crate::queue::{BoundedQueue, QueuedRequest};
use crate::request::{Completion, Payload, Rejection, Request, RequestId, ServeFailure};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded-queue capacity; submissions beyond it are rejected with
    /// [`Rejection::QueueFull`] (backpressure).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one engine batch.
    pub max_batch: usize,
    /// Default queue timeout in seconds for requests that set none
    /// (`None` = wait forever).
    pub default_timeout: Option<f64>,
    /// Prefix-aware batch composition: after taking a lane head with a
    /// template key, scan up to this many queued requests behind it and
    /// pull same-template ones into the same contiguous run (see
    /// [`crate::queue::BoundedQueue::pop_batch_grouped`] for the
    /// fairness bounds). `0` disables reordering (plain priority-FIFO).
    pub reorder_window: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            default_timeout: None,
            reorder_window: 0,
        }
    }
}

/// Monotonic serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected at admission (all [`Rejection`] variants).
    pub rejected: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests expired in the queue.
    pub timed_out: u64,
    /// Engine batches dispatched.
    pub batches: u64,
}

/// A continuous-batching scoring server over an [`Engine`].
pub struct Server<E: Engine> {
    engine: E,
    queue: BoundedQueue,
    clock: Clock,
    config: ServeConfig,
    next_id: RequestId,
    stats: ServerStats,
    ops: Option<OpsPlane>,
}

impl<E: Engine> Server<E> {
    /// A server reading time from `clock`.
    pub fn new(engine: E, config: ServeConfig, clock: Clock) -> Server<E> {
        Server {
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            clock,
            config,
            next_id: 0,
            stats: ServerStats::default(),
            ops: None,
        }
    }

    /// Turn on the live ops plane: per-request timelines, windowed SLO
    /// metrics, burn-rate alerts, and the flight recorder. Installs the
    /// server's clock as the engine's stage clock. Observation is
    /// passive — served scores are bitwise identical with it on or off.
    pub fn enable_ops(&mut self, cfg: OpsConfig) {
        self.engine.install_stage_clock(self.clock.clone());
        self.ops = Some(OpsPlane::new(cfg));
    }

    /// The ops plane, if enabled.
    pub fn ops(&self) -> Option<&OpsPlane> {
        self.ops.as_ref()
    }

    /// Mutable ops plane, if enabled (e.g. to `finish` a run or drain
    /// post-mortems).
    pub fn ops_mut(&mut self) -> Option<&mut OpsPlane> {
        self.ops.as_mut()
    }

    /// The injected clock's current reading.
    pub fn now(&self) -> f64 {
        (self.clock)()
    }

    /// Validate and enqueue a request. Returns the assigned id, or the
    /// typed rejection (the request never entered the queue).
    pub fn submit(&mut self, req: Request) -> Result<RequestId, Rejection> {
        let rejection = match &req.payload {
            _ if req.payload.prompt().is_empty() => Some(Rejection::EmptyPrompt),
            Payload::Generate { max_new: 0, .. } => Some(Rejection::EmptyGeneration),
            _ => None,
        };
        if let Some(r) = rejection {
            self.stats.rejected += 1;
            zg_trace::counter_add("serve.rejected", 1.0);
            if let Some(ops) = &mut self.ops {
                let now = (self.clock)();
                ops.on_rejected(now);
            }
            return Err(r);
        }
        let now = self.now();
        let (priority, template) = (req.priority, req.template);
        let queued = QueuedRequest {
            id: self.next_id,
            payload: req.payload,
            priority,
            arrived: now,
            deadline: req.timeout.or(self.config.default_timeout).map(|t| now + t),
            template,
        };
        match self.queue.push(queued) {
            Ok(()) => {
                let id = self.next_id;
                self.next_id += 1;
                self.stats.admitted += 1;
                zg_trace::counter_add("serve.admitted", 1.0);
                if let Some(ops) = &mut self.ops {
                    ops.on_admitted(id, priority, template, now);
                }
                Ok(id)
            }
            Err(r) => {
                self.stats.rejected += 1;
                zg_trace::counter_add("serve.rejected", 1.0);
                if let Some(ops) = &mut self.ops {
                    ops.on_rejected(now);
                }
                Err(r)
            }
        }
    }

    /// One scheduler step: expire overdue requests, coalesce up to
    /// `max_batch` queued requests into one engine batch, and return the
    /// resulting completions (timeouts first, then served requests in
    /// batch order). An empty queue yields an empty tick.
    pub fn tick(&mut self) -> Vec<Completion> {
        let _span = zg_trace::span("serve.tick");
        let now = self.now();
        // Backlog gauges every tick, so trace reports show queue state,
        // not just completion stats (ambient no-ops when tracing is off).
        let lanes = self.queue.lane_depths();
        zg_trace::gauge_set("serve.queue_depth", self.queue.len() as f64);
        // INVARIANT: lane_depths() is [usize; PRIORITY_LANES] with PRIORITY_LANES == 3.
        zg_trace::gauge_set("serve.lane_high", lanes[0] as f64);
        // INVARIANT: lane_depths() is [usize; PRIORITY_LANES] with PRIORITY_LANES == 3.
        zg_trace::gauge_set("serve.lane_normal", lanes[1] as f64);
        // INVARIANT: lane_depths() is [usize; PRIORITY_LANES] with PRIORITY_LANES == 3.
        zg_trace::gauge_set("serve.lane_low", lanes[2] as f64);
        if let Some(ops) = &mut self.ops {
            ops.advance(now);
            ops.observe_queue(now, self.queue.len(), lanes);
        }
        let mut completions = Vec::new();
        for expired in self.queue.expire(now) {
            self.stats.timed_out += 1;
            zg_trace::counter_add("serve.timeouts", 1.0);
            if let Some(ops) = &mut self.ops {
                ops.on_expired(expired.id, now);
            }
            completions.push(Completion {
                id: expired.id,
                priority: expired.priority,
                arrived: expired.arrived,
                finished: now,
                result: Err(ServeFailure::TimedOut {
                    waited: now - expired.arrived,
                }),
            });
        }
        let batch = self
            .queue
            .pop_batch_grouped(self.config.max_batch, self.config.reorder_window);
        if batch.is_empty() {
            return completions;
        }
        self.stats.batches += 1;
        zg_trace::hist_record("serve.batch_size", batch.len() as f64);
        if let Some(ops) = &mut self.ops {
            for req in &batch {
                ops.on_dispatched(req.id, now);
            }
            ops.on_batch(now, batch.len());
        }
        let replies = self.engine.execute(&batch);
        assert_eq!(
            replies.len(),
            batch.len(),
            "engine must reply to every request in the batch"
        );
        // Served completions are stamped after execute: under a wall
        // clock that includes real service time, under a manual clock it
        // includes whatever the harness (or a timed engine wrapper)
        // advanced during execution.
        let finished = self.now();
        if self.ops.is_some() {
            let obs = self.engine.drain_obs();
            if let Some(ops) = &mut self.ops {
                for o in obs {
                    ops.on_engine_obs(o, finished);
                }
            }
        }
        for (req, (id, reply)) in batch.into_iter().zip(replies) {
            assert_eq!(req.id, id, "engine replies must follow batch order");
            self.stats.completed += 1;
            zg_trace::counter_add("serve.completed", 1.0);
            if let Some(ops) = &mut self.ops {
                ops.on_served(id, finished);
            }
            completions.push(Completion {
                id,
                priority: req.priority,
                arrived: req.arrived,
                finished,
                result: Ok(reply),
            });
        }
        completions
    }

    /// Tick until the queue drains, concatenating completions.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.tick());
        }
        out
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Monotonic serving counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Borrow the engine (e.g. for audits between batches).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Stop the engine's workers and return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.engine.shutdown();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Reply;
    use zg_trace::ManualClock;

    /// Echoes each request's id; used to test scheduling in isolation.
    struct Echo;
    impl Engine for Echo {
        fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
            batch
                .iter()
                .map(|r| {
                    (
                        r.id,
                        Reply::Generated {
                            text: format!("#{}", r.id),
                        },
                    )
                })
                .collect()
        }
    }

    fn server(cfg: ServeConfig) -> (Server<Echo>, ManualClock) {
        let clock = ManualClock::new();
        (Server::new(Echo, cfg, clock.clock()), clock)
    }

    #[test]
    fn admission_validates_payloads() {
        let (mut s, _clock) = server(ServeConfig::default());
        assert_eq!(
            s.submit(Request::generate("", 3)),
            Err(Rejection::EmptyPrompt)
        );
        assert_eq!(
            s.submit(Request::generate("hi", 0)),
            Err(Rejection::EmptyGeneration)
        );
        assert_eq!(s.submit(Request::generate("hi", 1)), Ok(0));
        assert_eq!(s.stats().rejected, 2);
        assert_eq!(s.stats().admitted, 1);
    }

    #[test]
    fn ids_are_monotonic_and_only_burned_on_admission() {
        let (mut s, _clock) = server(ServeConfig {
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        assert_eq!(s.submit(Request::generate("a", 1)), Ok(0));
        assert!(s.submit(Request::generate("b", 1)).is_err());
        s.tick();
        assert_eq!(s.submit(Request::generate("c", 1)), Ok(1));
    }

    #[test]
    fn tick_serves_in_priority_then_fifo_order() {
        use crate::request::Priority;
        let (mut s, _clock) = server(ServeConfig::default());
        let a = s.submit(Request::generate("a", 1)).unwrap();
        let b = s
            .submit(Request::generate("b", 1).with_priority(Priority::High))
            .unwrap();
        let c = s.submit(Request::generate("c", 1)).unwrap();
        let done = s.tick();
        let order: Vec<RequestId> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![b, a, c]);
    }

    #[test]
    fn timeouts_resolve_before_service_with_waited_duration() {
        let (mut s, clock) = server(ServeConfig {
            default_timeout: Some(1.0),
            ..ServeConfig::default()
        });
        let a = s.submit(Request::generate("a", 1)).unwrap();
        clock.advance(2.0);
        let b = s
            .submit(Request::generate("b", 1).with_timeout(5.0))
            .unwrap();
        clock.advance(0.5);
        let done = s.tick();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, a);
        assert_eq!(done[0].result, Err(ServeFailure::TimedOut { waited: 2.5 }));
        assert_eq!(done[1].id, b);
        assert!(done[1].result.is_ok());
        assert_eq!(s.stats().timed_out, 1);
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn batches_are_capped_and_drain_continuously() {
        let (mut s, _clock) = server(ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        });
        for i in 0..5 {
            s.submit(Request::generate(format!("p{i}"), 1)).unwrap();
        }
        assert_eq!(s.tick().len(), 2);
        assert_eq!(s.queue_len(), 3);
        let rest = s.run_until_idle();
        assert_eq!(rest.len(), 3);
        assert_eq!(s.stats().batches, 3);
        assert_eq!(s.stats().completed, 5);
    }

    #[test]
    fn latency_reflects_queue_wait_under_manual_clock() {
        let (mut s, clock) = server(ServeConfig::default());
        s.submit(Request::generate("a", 1)).unwrap();
        clock.advance(3.0);
        let done = s.tick();
        assert_eq!(done[0].latency(), 3.0);
    }
}
