//! Deterministic simulation harness: seeded Poisson traffic, a manual
//! simulated clock, and an event loop driving a [`Server`] through
//! arrivals and scheduler ticks in a reproducible order.
//!
//! Everything here is a pure function of its seeds and configuration:
//! two runs with identical inputs submit the same requests at the same
//! simulated instants, form the same batches, and (with a tracer
//! installed on the same clock) emit byte-identical traces. The
//! simulation property suite and the `serve_load` bench's determinism
//! gate are both built on this module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zg_trace::ManualClock;

use crate::engine::Engine;
use crate::queue::QueuedRequest;
use crate::request::{Completion, Payload, Rejection, Reply, Request, RequestId};
use crate::server::{Server, ServerStats};

/// Arrival times (seconds, ascending) of an open-loop Poisson process:
/// inter-arrival gaps are `Exp(rate)` drawn by inverse CDF from a seeded
/// generator, so the same `(seed, rate, n)` always yields the same
/// schedule.
pub fn poisson_arrivals(seed: u64, rate: f64, n: usize) -> Vec<f64> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // 1 - u is in (0, 1], so the log is finite.
            t += -(1.0 - u).ln() / rate;
            t
        })
        .collect()
}

/// Seeded Poisson traffic: `(arrival_time, request)` pairs, the request
/// for index `i` produced by `make`.
pub fn poisson_traffic(
    seed: u64,
    rate: f64,
    n: usize,
    make: impl Fn(usize) -> Request,
) -> Vec<(f64, Request)> {
    poisson_arrivals(seed, rate, n)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, make(i)))
        .collect()
}

/// Outcome of one simulated run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Every resolved request (served or timed out), in resolution order.
    pub completions: Vec<Completion>,
    /// Admission rejections as `(traffic index, rejection)`.
    pub rejections: Vec<(usize, Rejection)>,
    /// Final server counters.
    pub stats: ServerStats,
}

impl SimOutcome {
    /// Ids that resolved successfully, in resolution (= dispatch) order.
    pub fn served_ids(&self) -> Vec<RequestId> {
        self.completions
            .iter()
            .filter(|c| c.result.is_ok())
            .map(|c| c.id)
            .collect()
    }

    /// Ids that timed out in the queue.
    pub fn timed_out_ids(&self) -> Vec<RequestId> {
        self.completions
            .iter()
            .filter(|c| c.result.is_err())
            .map(|c| c.id)
            .collect()
    }
}

/// Drive `server` through `traffic` (ascending arrival times) on
/// `clock`, ticking the scheduler every `batch_window` simulated
/// seconds, until all traffic is submitted and the queue drains.
///
/// The event order is deterministic: at each step the next arrival is
/// submitted iff it is due at or before the next tick boundary;
/// otherwise the clock jumps to the boundary and the server ticks.
/// Arrivals exactly on a boundary are submitted first (they make that
/// tick's batch).
pub fn drive<E: Engine>(
    server: &mut Server<E>,
    clock: &ManualClock,
    traffic: &[(f64, Request)],
    batch_window: f64,
) -> SimOutcome {
    assert!(batch_window > 0.0, "batch window must be positive");
    let mut completions = Vec::new();
    let mut rejections = Vec::new();
    let mut i = 0;
    let mut next_tick = clock.now() + batch_window;
    while i < traffic.len() || server.queue_len() > 0 {
        let due = traffic.get(i).map(|(t, _)| *t);
        match due {
            Some(t) if t <= next_tick => {
                if t > clock.now() {
                    clock.set(t);
                }
                if let Err(r) = server.submit(traffic[i].1.clone()) {
                    rejections.push((i, r));
                }
                i += 1;
            }
            _ => {
                if next_tick > clock.now() {
                    clock.set(next_tick);
                }
                completions.extend(server.tick());
                next_tick += batch_window;
            }
        }
    }
    SimOutcome {
        completions,
        rejections,
        stats: server.stats(),
    }
}

/// Wraps an engine so each executed batch advances a [`ManualClock`] by
/// `per_request` simulated seconds per request — modelling service time
/// so queueing delay compounds realistically under load. The clock is
/// advanced *after* the inner engine runs, so inner trace events are
/// stamped at dispatch time and the server's completion stamp lands at
/// dispatch + service.
pub struct TimedEngine<E> {
    inner: E,
    clock: ManualClock,
    per_request: f64,
}

impl<E: Engine> TimedEngine<E> {
    /// Wrap `inner`, advancing `clock` by `per_request` seconds per
    /// served request.
    pub fn new(inner: E, clock: ManualClock, per_request: f64) -> TimedEngine<E> {
        assert!(per_request >= 0.0, "service time cannot be negative");
        TimedEngine {
            inner,
            clock,
            per_request,
        }
    }

    /// Borrow the wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutably borrow the wrapped engine.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }
}

impl<E: Engine> Engine for TimedEngine<E> {
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        let out = self.inner.execute(batch);
        self.clock.advance(self.per_request * batch.len() as f64);
        out
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn install_stage_clock(&mut self, clock: zg_trace::Clock) {
        self.inner.install_stage_clock(clock);
    }

    fn drain_obs(&mut self) -> Vec<crate::ops::RequestObs> {
        self.inner.drain_obs()
    }
}

/// A model-free engine for scheduler tests: echoes deterministic replies
/// and records the exact dispatch order of request ids.
#[derive(Debug, Default)]
pub struct EchoEngine {
    /// Request ids in the order the scheduler dispatched them.
    pub served: Vec<RequestId>,
}

impl EchoEngine {
    /// An engine that has served nothing.
    pub fn new() -> EchoEngine {
        EchoEngine::default()
    }
}

impl Engine for EchoEngine {
    fn execute(&mut self, batch: &[QueuedRequest]) -> Vec<(RequestId, Reply)> {
        batch
            .iter()
            .map(|r| {
                self.served.push(r.id);
                let reply = match &r.payload {
                    Payload::Score { .. } => Reply::Scored {
                        answer: "ok".into(),
                        p_positive: 0.5,
                    },
                    Payload::Generate { prompt, .. } => Reply::Generated {
                        text: prompt.clone(),
                    },
                };
                (r.id, reply)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    #[test]
    fn poisson_arrivals_are_seeded_ascending_and_finite() {
        let a = poisson_arrivals(7, 4.0, 200);
        let b = poisson_arrivals(7, 4.0, 200);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(a.iter().all(|t| t.is_finite() && *t > 0.0));
        let c = poisson_arrivals(8, 4.0, 200);
        assert_ne!(a, c, "different seed, different schedule");
        // Mean inter-arrival ≈ 1/rate (loose sanity band).
        let mean = a.last().unwrap_or(&0.0) / 200.0;
        assert!((0.15..0.4).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn drive_resolves_every_admitted_request() {
        let clock = ManualClock::new();
        let mut server = Server::new(EchoEngine::new(), ServeConfig::default(), clock.clock());
        let traffic = poisson_traffic(3, 50.0, 40, |i| Request::generate(format!("p{i}"), 1));
        let out = drive(&mut server, &clock, &traffic, 0.05);
        assert_eq!(out.completions.len() + out.rejections.len(), 40);
        assert!(out.rejections.is_empty(), "default capacity fits 40");
        assert_eq!(out.stats.completed, 40);
    }

    #[test]
    fn timed_engine_turns_service_time_into_latency() {
        let clock = ManualClock::new();
        let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), 0.1);
        let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
        server.submit(Request::generate("a", 1)).unwrap();
        server.submit(Request::generate("b", 1)).unwrap();
        let done = server.tick();
        // Both served in one 2-request batch: 0.2 simulated seconds.
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].latency(), 0.2);
        assert_eq!(done[1].latency(), 0.2);
    }

    #[test]
    fn drive_is_bit_reproducible() {
        let run = || {
            let clock = ManualClock::new();
            let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), 0.02);
            let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
            let traffic = poisson_traffic(11, 30.0, 60, |i| Request::generate(format!("p{i}"), 1));
            let out = drive(&mut server, &clock, &traffic, 0.04);
            let order = server.engine_mut().inner_mut().served.clone();
            (
                out.served_ids(),
                order,
                out.completions
                    .iter()
                    .map(|c| (c.id, c.arrived.to_bits(), c.finished.to_bits()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run(), "identical seeds, identical simulation");
    }
}
