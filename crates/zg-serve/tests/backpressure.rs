//! Backpressure and timeout behaviour against the *real* engine: a
//! saturated bounded queue rejects with typed errors, queued requests
//! past their deadline resolve as `TimedOut` (never served, never
//! panicking), and the server keeps serving afterwards.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_model::{CausalLm, ModelConfig};
use zg_serve::{EngineConfig, Rejection, Request, ServeConfig, ServeFailure, Server, ZiGongEngine};
use zg_tokenizer::BpeTokenizer;
use zg_trace::ManualClock;
use zg_zigong::ZiGongModel;

fn tiny_spec() -> zg_zigong::ZiGongSpec {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut cfg = ModelConfig::mistral_miniature(260);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    cfg.max_seq_len = 64;
    cfg.sliding_window = 32;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, BpeTokenizer::byte_level(), 64, "tiny-bp").spec()
}

#[test]
fn saturated_queue_rejects_then_recovers() {
    let engine = ZiGongEngine::new(tiny_spec(), EngineConfig::default());
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        queue_capacity: 4,
        max_batch: 2,
        default_timeout: None,
        reorder_window: 0,
    };
    let mut server = Server::new(engine, cfg, clock.clock());
    for i in 0..4 {
        server
            .submit(Request::generate(format!("p{i}"), 2))
            .unwrap_or_else(|r| panic!("admission {i} rejected: {r}"));
    }
    // Queue full: typed backpressure, not a panic and not silent loss.
    assert_eq!(
        server.submit(Request::generate("overflow", 2)),
        Err(Rejection::QueueFull { capacity: 4 })
    );
    assert_eq!(server.stats().rejected, 1);
    // Draining one batch frees capacity.
    let served = server.tick();
    assert_eq!(served.len(), 2);
    assert!(served.iter().all(|c| c.result.is_ok()));
    assert!(server.submit(Request::generate("retry", 2)).is_ok());
    let rest = server.run_until_idle();
    assert_eq!(rest.len(), 3);
    assert!(rest.iter().all(|c| c.result.is_ok()));
    server.shutdown();
}

#[test]
fn expired_requests_time_out_instead_of_being_served() {
    let engine = ZiGongEngine::new(tiny_spec(), EngineConfig::default());
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        queue_capacity: 8,
        max_batch: 8,
        default_timeout: Some(1.0),
        reorder_window: 0,
    };
    let mut server = Server::new(engine, cfg, clock.clock());
    let doomed = server.submit(Request::generate("slowpoke", 2)).unwrap();
    clock.advance(0.5);
    let survivor = server
        .submit(Request::generate("fresh", 2).with_timeout(10.0))
        .unwrap();
    clock.advance(1.0); // `doomed` is now 1.5s old with a 1s deadline.
    let done = server.tick();
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].id, doomed);
    assert_eq!(done[0].result, Err(ServeFailure::TimedOut { waited: 1.5 }));
    assert_eq!(done[1].id, survivor);
    assert!(done[1].result.is_ok());
    assert_eq!(server.stats().timed_out, 1);
    assert_eq!(server.stats().completed, 1);
    // Leases and tape stay clean even when requests die in the queue.
    let (audit, stats) = server.engine_mut().audit();
    audit.expect("pool quiescent after timeouts");
    assert_eq!(stats.live_leases, 0);
    server.shutdown();
}

#[test]
fn zero_capacity_burst_never_panics() {
    // Hammer a capacity-1 queue with a burst of valid and invalid
    // requests: every outcome is a typed result.
    let engine = ZiGongEngine::new(tiny_spec(), EngineConfig::default());
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        default_timeout: Some(0.1),
        reorder_window: 0,
    };
    let mut server = Server::new(engine, cfg, clock.clock());
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for i in 0..20 {
        let req = if i % 5 == 4 {
            Request::generate("", 2) // invalid: empty prompt
        } else {
            Request::generate(format!("p{i}"), 1)
        };
        match server.submit(req) {
            Ok(_) => admitted += 1,
            Err(
                Rejection::QueueFull { .. } | Rejection::EmptyPrompt | Rejection::EmptyGeneration,
            ) => rejected += 1,
        }
        if i % 3 == 0 {
            clock.advance(0.05);
            let _ = server.tick();
        }
    }
    let _ = server.run_until_idle();
    let stats = server.stats();
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.admitted, stats.completed + stats.timed_out);
    server.shutdown();
}
