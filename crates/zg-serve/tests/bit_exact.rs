//! Bit-exactness of the serving path against the offline evaluator.
//!
//! The server's contract is that deploying the model changes *nothing*
//! about its numbers: for every request, the served `(answer, p)` must
//! be exact-`f64` equal to `ZiGongModel::evaluate_item` on the same
//! item — across worker counts, request interleavings, prefix sharing
//! (hits and misses), sliding-window overflow, and the truncation
//! fallback path. These tests pin that contract.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_data::german;
use zg_model::{CausalLm, ModelConfig};
use zg_serve::{EngineConfig, Reply, Request, ServeConfig, Server, ZiGongEngine};
use zg_tokenizer::BpeTokenizer;
use zg_trace::ManualClock;
use zg_zigong::{eval_items, EvalItem, ZiGongModel, ANSWER_TOKENS, SCORE_RESERVE};

/// A tiny model whose prompt budget is `max_seq_len`. The sliding
/// window (48) is far below the rendered prompt length (~700 byte-level
/// tokens), so the wide configuration exercises prefix sharing *beyond*
/// the attention window.
fn model(max_seq_len: usize) -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    // Vocab matches the byte-level tokenizer exactly (4 specials + 256
    // bytes) so every greedily decoded id is decodable.
    let mut cfg = ModelConfig::mistral_miniature(260);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    cfg.max_seq_len = max_seq_len;
    cfg.sliding_window = 48;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, BpeTokenizer::byte_level(), max_seq_len, "serve-exact")
}

fn offline_eval(m: &mut ZiGongModel, items: &[EvalItem<'_>]) -> Vec<(String, f64)> {
    items.iter().map(|it| m.evaluate_item(it)).collect()
}

/// Serve all items through a fresh engine, submitting in the order given
/// by `order` (a permutation of item indices), and return the served
/// `(answer, p)` per *item* index. Requests are tagged with one shared
/// template key and served under a reorder window, so prefix-aware
/// grouping and affinity routing are always in play — the exactness
/// contract must hold straight through them. Returns the aggregate pool
/// stats alongside the scores.
fn serve_eval_with_budget(
    m: &ZiGongModel,
    items: &[EvalItem<'_>],
    workers: usize,
    order: &[usize],
    pool_budget_tokens: usize,
) -> (Vec<(String, f64)>, zg_model::PrefixStats) {
    let engine = ZiGongEngine::new(
        m.spec(),
        EngineConfig {
            workers,
            pool_budget_tokens,
            ..EngineConfig::default()
        },
    );
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        queue_capacity: items.len().max(1),
        max_batch: 3,
        default_timeout: None,
        reorder_window: 2,
    };
    let mut server = Server::new(engine, cfg, clock.clock());
    for &i in order {
        let ex = &items[i].example;
        let id = server
            .submit(
                Request::score(
                    ex.prompt.clone(),
                    ex.candidates[0].clone(),
                    ex.candidates[1].clone(),
                )
                .with_template(0),
            )
            .expect("capacity fits all items");
        assert_eq!(id as usize, order.iter().position(|&j| j == i).unwrap());
    }
    let completions = server.run_until_idle();
    assert_eq!(completions.len(), items.len());
    let mut out = vec![(String::new(), 0.0); items.len()];
    for c in completions {
        // Ids are assigned in submission order, so id k served order[k].
        let item_idx = order[c.id as usize];
        match c.result.expect("no timeouts configured") {
            Reply::Scored { answer, p_positive } => out[item_idx] = (answer, p_positive),
            Reply::Generated { .. } => panic!("score request got a generate reply"),
        }
    }
    let (audit, stats) = server.engine_mut().audit();
    audit.expect("no leaked prefix leases after serving");
    assert_eq!(stats.live_leases, 0);
    server.shutdown();
    (out, stats)
}

fn serve_eval(
    m: &ZiGongModel,
    items: &[EvalItem<'_>],
    workers: usize,
    order: &[usize],
) -> Vec<(String, f64)> {
    serve_eval_with_budget(m, items, workers, order, 1 << 14).0
}

fn assert_bit_equal(served: &[(String, f64)], offline: &[(String, f64)], label: &str) {
    for (i, (s, o)) in served.iter().zip(offline).enumerate() {
        assert_eq!(s.0, o.0, "{label}: answer text diverged on item {i}");
        assert_eq!(
            s.1.to_bits(),
            o.1.to_bits(),
            "{label}: p_positive diverged on item {i}: served {} vs offline {}",
            s.1,
            o.1
        );
    }
}

/// Wide context: prompts fit untruncated, so the server runs the
/// shared-prefill path with prefix-pool reuse — and must still be
/// bit-identical to the offline single-prefill evaluator for every
/// worker count and submission order.
#[test]
fn served_scores_bit_identical_to_offline_shared_path() {
    let mut m = model(1024);
    let ds = german(16, 5);
    let refs: Vec<_> = ds.records.iter().take(5).collect();
    let items = eval_items(&ds, &refs);
    // Confirm we are on the shared path (no truncation split) and beyond
    // the sliding window.
    for it in &items {
        let p_ans = m.prompt_ids(&it.example.prompt, ANSWER_TOKENS);
        assert_eq!(p_ans, m.prompt_ids(&it.example.prompt, SCORE_RESERVE));
        assert!(p_ans.len() > 48, "prompt must exceed the sliding window");
    }
    let offline = offline_eval(&mut m, &items);
    let identity: Vec<usize> = (0..items.len()).collect();
    for workers in [1usize, 2, 3, 5] {
        let served = serve_eval(&m, &items, workers, &identity);
        assert_bit_equal(&served, &offline, &format!("workers={workers}"));
    }
}

/// Interleaved submission orders change batch composition and pool
/// hit/miss sequences but never the served bits.
#[test]
fn served_scores_independent_of_request_interleaving() {
    let mut m = model(1024);
    let ds = german(16, 6);
    let refs: Vec<_> = ds.records.iter().take(4).collect();
    let items = eval_items(&ds, &refs);
    let offline = offline_eval(&mut m, &items);
    let n = items.len();
    let reversed: Vec<usize> = (0..n).rev().collect();
    let evens_then_odds: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
    for order in [&reversed, &evens_then_odds] {
        for workers in [1usize, 3] {
            let served = serve_eval(&m, &items, workers, order);
            assert_bit_equal(
                &served,
                &offline,
                &format!("workers={workers} order={order:?}"),
            );
        }
    }
}

/// Narrow context: the two prompt budgets truncate differently, so the
/// server must take the offline evaluator's independent-paths fallback —
/// and match it exactly.
#[test]
fn served_scores_bit_identical_on_truncation_fallback() {
    let mut m = model(64);
    let ds = german(12, 7);
    let refs: Vec<_> = ds.records.iter().take(5).collect();
    let items = eval_items(&ds, &refs);
    for it in &items {
        assert_ne!(
            m.prompt_ids(&it.example.prompt, ANSWER_TOKENS),
            m.prompt_ids(&it.example.prompt, SCORE_RESERVE),
            "narrow budget must force the fallback path"
        );
    }
    let offline = offline_eval(&mut m, &items);
    let identity: Vec<usize> = (0..items.len()).collect();
    for workers in [1usize, 2] {
        let served = serve_eval(&m, &items, workers, &identity);
        assert_bit_equal(&served, &offline, &format!("fallback workers={workers}"));
    }
}

/// Generation requests reproduce `generate_answer` byte for byte.
#[test]
fn served_generation_matches_offline_greedy_decode() {
    let mut m = model(256);
    let prompts = [
        "status of checking account: none, purpose: education",
        "duration in months: 13",
        "q",
    ];
    let offline: Vec<String> = prompts.iter().map(|p| m.generate_answer(p, 8)).collect();
    for workers in [1usize, 3] {
        let engine = ZiGongEngine::new(
            m.spec(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        );
        let clock = ManualClock::new();
        let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
        for p in &prompts {
            server.submit(Request::generate(*p, 8)).unwrap();
        }
        let done = server.run_until_idle();
        assert_eq!(done.len(), prompts.len());
        for c in done {
            match c.result.unwrap() {
                Reply::Generated { text } => {
                    assert_eq!(text, offline[c.id as usize], "workers={workers}")
                }
                Reply::Scored { .. } => panic!("generate request got a score reply"),
            }
        }
        server.shutdown();
    }
}

/// Quantized serving keeps the exactness contract: with
/// `EngineConfig::quantized`, every replica calibrates int8 weights from
/// the same spec, and the served `(answer, p)` is exact-`f64` equal to
/// the quantized offline evaluator for every worker count.
#[test]
fn served_scores_bit_identical_to_offline_quantized() {
    let mut m = model(1024);
    // Freeze the base — the serving shape for a deployed LoRA model; the
    // engine quantizes frozen weights only.
    for (_, p) in m.lm.params() {
        p.set_requires_grad(false);
    }
    let ds = german(16, 9);
    let refs: Vec<_> = ds.records.iter().take(4).collect();
    let items = eval_items(&ds, &refs);
    // Spec is snapshotted *before* quantization: the EngineConfig flag
    // itself must trigger replica calibration.
    let spec = m.spec();
    assert!(m.set_quantized(true) > 0, "frozen model must calibrate");
    let offline = offline_eval(&mut m, &items);
    for workers in [1usize, 3] {
        let engine = ZiGongEngine::new(
            spec.clone(),
            EngineConfig {
                workers,
                quantized: true,
                ..EngineConfig::default()
            },
        );
        let clock = ManualClock::new();
        let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
        for it in &items {
            let ex = &it.example;
            server
                .submit(Request::score(
                    ex.prompt.clone(),
                    ex.candidates[0].clone(),
                    ex.candidates[1].clone(),
                ))
                .unwrap();
        }
        let done = server.run_until_idle();
        assert_eq!(done.len(), items.len());
        for c in done {
            match c.result.unwrap() {
                Reply::Scored { answer, p_positive } => {
                    let (oa, op) = &offline[c.id as usize];
                    assert_eq!(&answer, oa, "workers={workers}: answer diverged");
                    assert_eq!(
                        p_positive.to_bits(),
                        op.to_bits(),
                        "workers={workers}: quantized p diverged"
                    );
                }
                Reply::Generated { .. } => panic!("score request got a generate reply"),
            }
        }
        server.shutdown();
    }
}

/// The prefix pool actually engages under template traffic (hits and
/// inserts both non-zero), and heavy reuse leaves no leases and no
/// autograd tape nodes behind.
#[test]
fn prefix_reuse_engages_and_leaks_nothing() {
    let m = model(1024);
    let ds = german(16, 8);
    let refs: Vec<_> = ds.records.iter().take(4).collect();
    let items = eval_items(&ds, &refs);
    let tape_before = zg_tensor::live_tape_nodes();
    // Inline engine (workers=1) runs on this thread, so the thread-local
    // tape-node counter observes the whole serving path.
    let engine = ZiGongEngine::new(
        m.spec(),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let clock = ManualClock::new();
    let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
    // Two passes over the same items: the second pass is all pool hits.
    for pass in 0..2 {
        for it in &items {
            let ex = &it.example;
            server
                .submit(Request::score(
                    ex.prompt.clone(),
                    ex.candidates[0].clone(),
                    ex.candidates[1].clone(),
                ))
                .unwrap();
        }
        let done = server.run_until_idle();
        assert_eq!(done.len(), items.len(), "pass {pass}");
    }
    let (audit, stats) = server.engine_mut().audit();
    audit.expect("quiescent pool after load");
    assert!(stats.inserts >= 1, "template prefix must be inserted");
    assert!(
        stats.hits as usize >= items.len(),
        "second pass must hit the pool: {stats:?}"
    );
    assert_eq!(stats.live_leases, 0);
    assert_eq!(
        zg_tensor::live_tape_nodes(),
        tape_before,
        "serving must leave the autograd tape at its baseline"
    );
    server.shutdown();
}

/// Eviction pressure: a pool budget far below one prompt's working set
/// forces evictions mid-stream, yet leased blocks survive (requests in
/// flight hold multiple leases each while the pool is over budget), the
/// served bits stay identical to offline, and the final audit is clean
/// with the resident total back under budget.
#[test]
fn eviction_pressure_keeps_leases_and_bits() {
    let mut m = model(1024);
    let ds = german(16, 5);
    let refs: Vec<_> = ds.records.iter().take(5).collect();
    let items = eval_items(&ds, &refs);
    let offline = offline_eval(&mut m, &items);
    let identity: Vec<usize> = (0..items.len()).collect();
    // ~700-token prompts against a 256-token budget: every request's
    // inserts alone exceed the budget while leased.
    for workers in [1usize, 3] {
        let (served, stats) = serve_eval_with_budget(&m, &items, workers, &identity, 256);
        assert_bit_equal(&served, &offline, &format!("pressure workers={workers}"));
        assert!(
            stats.evictions > 0,
            "budget below the working set must evict: {stats:?}"
        );
        assert!(
            stats.resident_tokens <= 256 * workers.max(1),
            "per-pool residency must settle under budget: {stats:?}"
        );
        assert_eq!(stats.live_leases, 0, "clean leak audit under pressure");
    }
}

/// Trace determinism with the *real* engine: for each worker count, two
/// same-seed serving runs emit byte-identical JSONL traces — pool
/// hit/miss/eviction counters, LCP histograms, affinity routing and all.
#[test]
fn serve_traces_bit_identical_across_reruns() {
    let m = model(1024);
    let ds = german(16, 4);
    let refs: Vec<_> = ds.records.iter().take(3).collect();
    let items = eval_items(&ds, &refs);
    let identity: Vec<usize> = (0..items.len()).collect();
    for workers in [1usize, 2, 3, 5] {
        let traced = || {
            let clock = zg_trace::ManualClock::new();
            let tracer = zg_trace::Tracer::with_clock(clock.clock());
            let guard = tracer.install("serve-exact");
            // Engine construction forks worker streams under the tracer.
            let (_, stats) = serve_eval_with_budget(&m, &items, workers, &identity, 1 << 14);
            drop(guard);
            (tracer.finish().to_jsonl(), stats)
        };
        let (a, sa) = traced();
        let (b, sb) = traced();
        assert!(!a.is_empty(), "serving must emit trace events");
        assert_eq!(sa, sb, "workers={workers}: pool stats must reproduce");
        assert_eq!(a, b, "workers={workers}: traces must be byte-identical");
    }
}
