//! Ops-plane determinism and transparency contracts.
//!
//! The live ops plane must be (a) byte-deterministic — identical traffic
//! on identical clocks yields identical exposition text and
//! flight-recorder dumps, across reruns and (for pool-neutral traffic)
//! across worker counts — and (b) bit-transparent — served scores are
//! exact-`f64` equal with observation on or off. These tests pin both,
//! plus the SLO burn-rate alert + post-mortem path end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_data::german;
use zg_model::{CausalLm, ModelConfig};
use zg_serve::{
    drive, poisson_traffic, EchoEngine, EngineConfig, OpsConfig, Reply, Request, ServeConfig,
    Server, Slo, SloObjective, TimedEngine, ZiGongEngine,
};
use zg_tokenizer::BpeTokenizer;
use zg_trace::ManualClock;
use zg_zigong::{eval_items, EvalItem, ZiGongModel};

/// Same tiny fixture as the bit-exactness suite: byte-level tokenizer,
/// one layer, sliding window far below the rendered prompt length.
fn model(max_seq_len: usize) -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut cfg = ModelConfig::mistral_miniature(260);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    cfg.max_seq_len = max_seq_len;
    cfg.sliding_window = 48;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, BpeTokenizer::byte_level(), max_seq_len, "serve-ops")
}

fn ops_config() -> OpsConfig {
    OpsConfig {
        window_secs: 0.25,
        recorder_capacity: 64,
        expo_windows: 8,
        retain_windows: 32,
        slos: vec![Slo {
            name: "p99-latency".into(),
            objective: SloObjective::LatencyAbove(0.5),
            budget: 0.01,
            short_windows: 2,
            long_windows: 8,
            burn_threshold: 2.0,
        }],
    }
}

/// Serve score traffic with the ops plane on; return the served scores
/// plus the finished plane's `(exposition, flight JSONL)` bytes.
fn serve_observed(
    m: &ZiGongModel,
    items: &[EvalItem<'_>],
    workers: usize,
) -> (Vec<(String, f64)>, String, String) {
    let engine = ZiGongEngine::new(
        m.spec(),
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    );
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        queue_capacity: items.len().max(1),
        max_batch: 3,
        default_timeout: None,
        reorder_window: 2,
    };
    let mut server = Server::new(engine, cfg, clock.clock());
    server.enable_ops(ops_config());
    for (i, it) in items.iter().enumerate() {
        let ex = &it.example;
        clock.set(0.1 * i as f64);
        server
            .submit(
                Request::score(
                    ex.prompt.clone(),
                    ex.candidates[0].clone(),
                    ex.candidates[1].clone(),
                )
                .with_template(0),
            )
            .expect("capacity fits all items");
    }
    let done = server.run_until_idle();
    assert_eq!(done.len(), items.len());
    let now = clock.now();
    let ops = server.ops_mut().expect("ops enabled");
    ops.finish(now);
    let expo = ops.exposition();
    let flight = ops.flight_recorder_jsonl();
    let mut scores = vec![(String::new(), 0.0); items.len()];
    for c in done {
        match c.result.expect("no timeouts configured") {
            Reply::Scored { answer, p_positive } => scores[c.id as usize] = (answer, p_positive),
            Reply::Generated { .. } => panic!("score request got a generate reply"),
        }
    }
    server.shutdown();
    (scores, expo, flight)
}

/// Generate-only traffic never touches the prefix pool, so its ops
/// output must be invariant across worker counts, not just reruns.
fn generate_observed(m: &ZiGongModel, workers: usize) -> (Vec<String>, String, String) {
    let engine = ZiGongEngine::new(
        m.spec(),
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    );
    let clock = ManualClock::new();
    let mut server = Server::new(engine, ServeConfig::default(), clock.clock());
    server.enable_ops(ops_config());
    let prompts = [
        "status of checking account: none, purpose: education",
        "duration in months: 13",
        "credit amount: 2500, housing: rent",
        "q",
    ];
    for (i, p) in prompts.iter().enumerate() {
        clock.set(0.07 * i as f64);
        server.submit(Request::generate(*p, 6)).expect("admitted");
    }
    let done = server.run_until_idle();
    assert_eq!(done.len(), prompts.len());
    let now = clock.now();
    let ops = server.ops_mut().expect("ops enabled");
    ops.finish(now);
    let expo = ops.exposition();
    let flight = ops.flight_recorder_jsonl();
    let mut texts = vec![String::new(); prompts.len()];
    for c in done {
        match c.result.expect("no timeouts configured") {
            Reply::Generated { text } => texts[c.id as usize] = text,
            Reply::Scored { .. } => panic!("generate request got a score reply"),
        }
    }
    server.shutdown();
    (texts, expo, flight)
}

/// Exposition and flight-recorder dumps are byte-identical across
/// seeded reruns for every worker count, and the timelines carry the
/// engine-side stage marks.
#[test]
fn ops_output_bit_identical_across_reruns() {
    let m = model(1024);
    let ds = german(16, 4);
    let refs: Vec<_> = ds.records.iter().take(3).collect();
    let items = eval_items(&ds, &refs);
    for workers in [1usize, 2, 3, 5] {
        let (s1, e1, f1) = serve_observed(&m, &items, workers);
        let (s2, e2, f2) = serve_observed(&m, &items, workers);
        assert_eq!(s1, s2, "workers={workers}: served scores must reproduce");
        assert_eq!(
            e1, e2,
            "workers={workers}: exposition must be byte-identical"
        );
        assert_eq!(
            f1, f2,
            "workers={workers}: flight dump must be byte-identical"
        );
        // Timelines decompose latency into the engine-side stages.
        for stage in [
            "admitted",
            "dispatched",
            "prefill",
            "decode",
            "score",
            "merge",
            "reply",
        ] {
            assert!(
                f1.contains(&format!("\"stage\":\"{stage}\"")),
                "workers={workers}: flight dump missing stage {stage}:\n{f1}"
            );
        }
        assert!(e1.contains("zg_serve_requests_total{outcome=\"completed\"} "));
        assert!(e1.contains("# TYPE zg_serve_stage_seconds histogram"));
        assert!(e1.contains("zg_serve_window_p99_seconds{stage=\"total\""));
        assert!(e1.contains("zg_serve_slo_firing{slo=\"p99-latency\"} 0"));
    }
}

/// Pool-neutral generate traffic: exposition and flight dumps must be
/// byte-identical *across* worker counts {1, 2, 3, 5}, since nothing in
/// the observed state may depend on routing.
#[test]
fn ops_output_invariant_across_worker_counts_for_generate() {
    let m = model(256);
    let (t1, e1, f1) = generate_observed(&m, 1);
    for workers in [2usize, 3, 5] {
        let (t, e, f) = generate_observed(&m, workers);
        assert_eq!(t1, t, "workers={workers}: generated texts diverged");
        assert_eq!(e1, e, "workers={workers}: exposition diverged");
        assert_eq!(f1, f, "workers={workers}: flight dump diverged");
    }
}

/// Bit-transparency: served scores with the ops plane enabled are
/// exact-`f64` equal to the same run with it off.
#[test]
fn ops_plane_is_bit_transparent_to_served_scores() {
    let m = model(1024);
    let ds = german(16, 5);
    let refs: Vec<_> = ds.records.iter().take(4).collect();
    let items = eval_items(&ds, &refs);
    let serve_plain = |workers: usize| -> Vec<(String, f64)> {
        let engine = ZiGongEngine::new(
            m.spec(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        );
        let clock = ManualClock::new();
        let cfg = ServeConfig {
            queue_capacity: items.len(),
            max_batch: 3,
            default_timeout: None,
            reorder_window: 2,
        };
        let mut server = Server::new(engine, cfg, clock.clock());
        for (i, it) in items.iter().enumerate() {
            let ex = &it.example;
            clock.set(0.1 * i as f64);
            server
                .submit(
                    Request::score(
                        ex.prompt.clone(),
                        ex.candidates[0].clone(),
                        ex.candidates[1].clone(),
                    )
                    .with_template(0),
                )
                .unwrap();
        }
        let done = server.run_until_idle();
        let mut scores = vec![(String::new(), 0.0); items.len()];
        for c in done {
            match c.result.unwrap() {
                Reply::Scored { answer, p_positive } => {
                    scores[c.id as usize] = (answer, p_positive)
                }
                Reply::Generated { .. } => panic!("score request got a generate reply"),
            }
        }
        server.shutdown();
        scores
    };
    for workers in [1usize, 3] {
        let off = serve_plain(workers);
        let (on, _expo, _flight) = serve_observed(&m, &items, workers);
        for (i, (o, n)) in off.iter().zip(&on).enumerate() {
            assert_eq!(o.0, n.0, "workers={workers}: answer diverged on item {i}");
            assert_eq!(
                o.1.to_bits(),
                n.1.to_bits(),
                "workers={workers}: ops plane changed p_positive on item {i}"
            );
        }
    }
}

/// End-to-end SLO path on the deterministic simulator: overload a timed
/// echo engine until queue deadlines miss, and check the burn-rate alert
/// fires and the post-mortem bundle is complete and byte-deterministic.
#[test]
fn slo_breach_fires_alert_and_dumps_deterministic_postmortem() {
    let run = || {
        let clock = ManualClock::new();
        // One-request batches at 100 ms service against 80 ms deadlines:
        // whenever arrivals burst, the second request of a burst expires
        // behind the first one's service time.
        let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), 0.1);
        let cfg = ServeConfig {
            queue_capacity: 64,
            max_batch: 1,
            default_timeout: Some(0.08),
            reorder_window: 0,
        };
        let mut server = Server::new(engine, cfg, clock.clock());
        server.enable_ops(OpsConfig {
            window_secs: 0.5,
            recorder_capacity: 32,
            expo_windows: 4,
            retain_windows: 16,
            slos: vec![Slo {
                name: "deadline-miss".into(),
                objective: SloObjective::DeadlineMiss,
                budget: 0.05,
                short_windows: 1,
                long_windows: 2,
                burn_threshold: 1.0,
            }],
        });
        // Arrivals far above the engine's 20 req/s capacity: the queue
        // backs up and 80 ms deadlines miss.
        let traffic = poisson_traffic(0x510, 60.0, 80, |i| Request::generate(format!("p{i}"), 1));
        let out = drive(&mut server, &clock, &traffic, 0.02);
        assert!(out.stats.timed_out > 0, "overload must miss deadlines");
        let now = clock.now();
        let ops = server.ops_mut().expect("ops enabled");
        ops.finish(now);
        let alerts = ops.alerts().to_vec();
        let pms: Vec<String> = ops
            .take_postmortems()
            .iter()
            .map(|pm| pm.render())
            .collect();
        let expo = ops.exposition();
        (alerts, pms, expo)
    };
    let (alerts, pms, expo) = run();
    assert!(
        !alerts.is_empty(),
        "burn-rate alert must fire under overload"
    );
    assert_eq!(alerts.len(), pms.len(), "one post-mortem per alert");
    assert!(pms[0].contains("post-mortem slo=deadline-miss"));
    assert!(pms[0].contains("## flight recorder"));
    assert!(pms[0].contains("\"outcome\":\"expired\""));
    assert!(pms[0].contains("## exposition"));
    assert!(expo.contains("zg_serve_slo_alerts_total"));
    let (alerts2, pms2, expo2) = run();
    assert_eq!(alerts, alerts2, "alerts must reproduce");
    assert_eq!(pms, pms2, "post-mortem bytes must reproduce");
    assert_eq!(expo, expo2, "exposition bytes must reproduce");
}
