//! Deterministic-simulation property suite for the continuous-batching
//! scheduler: seeded Poisson traffic over a [`ManualClock`], a mock
//! engine recording dispatch order, and invariants checked across
//! arrival patterns, batch windows, queue capacities, and timeouts:
//!
//! - conservation / no starvation: every submitted request resolves
//!   (served, timed out, or rejected at admission) — nothing is dropped
//!   and nothing waits forever;
//! - FIFO within priority: dispatch order restricted to one priority
//!   class equals admission order;
//! - typed backpressure accounting: rejections happen exactly when the
//!   bounded queue is full, and counters reconcile;
//! - timeout soundness: a timed-out request really waited at least its
//!   deadline;
//! - bit determinism: identical seeds produce identical completions and
//!   byte-identical traces.

use std::collections::BTreeMap;

use proptest::prelude::*;
use zg_serve::{
    drive, poisson_traffic, EchoEngine, Priority, Request, RequestId, ServeConfig, Server,
    SimOutcome, TimedEngine,
};
use zg_trace::{ManualClock, Tracer};

fn mixed_traffic(seed: u64, rate: f64, n: usize, timeout: Option<f64>) -> Vec<(f64, Request)> {
    poisson_traffic(seed, rate, n, |i| {
        let p = match i % 3 {
            0 => Priority::Normal,
            1 => Priority::High,
            _ => Priority::Low,
        };
        let r = Request::generate(format!("req {i}"), 1).with_priority(p);
        match timeout {
            Some(t) => r.with_timeout(t),
            None => r,
        }
    })
}

/// Like [`mixed_traffic`] but tagging each request with one of
/// `templates` keys (round-robin), so prefix-aware grouping engages.
fn templated_traffic(seed: u64, rate: f64, n: usize, templates: u64) -> Vec<(f64, Request)> {
    poisson_traffic(seed, rate, n, |i| {
        let p = match i % 3 {
            0 => Priority::Normal,
            1 => Priority::High,
            _ => Priority::Low,
        };
        Request::generate(format!("req {i}"), 1)
            .with_priority(p)
            .with_template(i as u64 % templates)
    })
}

struct Run {
    out: SimOutcome,
    dispatch_order: Vec<RequestId>,
}

fn run_traffic(traffic: &[(f64, Request)], cfg: ServeConfig, service: f64, window: f64) -> Run {
    let clock = ManualClock::new();
    let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), service);
    let mut server = Server::new(engine, cfg, clock.clock());
    let out = drive(&mut server, &clock, traffic, window);
    let dispatch_order = server.engine_mut().inner_mut().served.clone();
    Run {
        out,
        dispatch_order,
    }
}

fn run_sim(
    seed: u64,
    rate: f64,
    n: usize,
    cfg: ServeConfig,
    service: f64,
    window: f64,
    timeout: Option<f64>,
) -> Run {
    run_traffic(&mixed_traffic(seed, rate, n, timeout), cfg, service, window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: submitted = served + timed out + rejected, and the
    /// server's own counters agree. No admitted request starves.
    #[test]
    fn every_request_resolves(seed in 0u64..10_000,
                              n in 1usize..80,
                              rate in 5.0f64..200.0,
                              capacity in 1usize..64,
                              max_batch in 1usize..12,
                              service in 0.0f64..0.02) {
        let cfg = ServeConfig { queue_capacity: capacity, max_batch, default_timeout: None, reorder_window: 0 };
        let r = run_sim(seed, rate, n, cfg, service, 0.05, None);
        prop_assert_eq!(r.out.completions.len() + r.out.rejections.len(), n);
        prop_assert_eq!(r.out.stats.admitted as usize, r.out.completions.len());
        prop_assert_eq!(r.out.stats.rejected as usize, r.out.rejections.len());
        // Without timeouts, every admitted request is actually served.
        prop_assert_eq!(r.out.stats.timed_out, 0);
        prop_assert_eq!(r.out.stats.completed as usize, r.out.completions.len());
        prop_assert_eq!(r.dispatch_order.len(), r.out.completions.len());
    }

    /// FIFO within priority: for each priority class, the engine saw that
    /// class's requests in admission (= id) order.
    #[test]
    fn fifo_within_priority(seed in 0u64..10_000,
                            n in 1usize..80,
                            rate in 5.0f64..200.0,
                            max_batch in 1usize..12) {
        let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
        let r = run_sim(seed, rate, n, cfg, 0.005, 0.04, None);
        let class: BTreeMap<RequestId, Priority> = r.out.completions.iter()
            .map(|c| (c.id, c.priority))
            .collect();
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            let ids: Vec<RequestId> = r.dispatch_order.iter()
                .copied()
                .filter(|id| class.get(id) == Some(&p))
                .collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]),
                         "priority {p:?} dispatched out of admission order: {ids:?}");
        }
    }

    /// Timeout soundness: every timed-out completion waited at least its
    /// deadline, every served completion has non-negative latency, and
    /// ids never appear in both sets.
    #[test]
    fn timeouts_are_sound(seed in 0u64..10_000,
                          n in 1usize..60,
                          rate in 50.0f64..400.0,
                          timeout in 0.01f64..0.2) {
        let cfg = ServeConfig { queue_capacity: 8, max_batch: 2, default_timeout: None, reorder_window: 0 };
        let r = run_sim(seed, rate, n, cfg, 0.03, 0.05, Some(timeout));
        for c in &r.out.completions {
            match c.result {
                Err(zg_serve::ServeFailure::TimedOut { waited }) => {
                    prop_assert!(waited + 1e-9 >= timeout,
                                 "timed out after {waited}s with a {timeout}s deadline");
                    prop_assert_eq!(c.latency(), waited);
                }
                Ok(_) => prop_assert!(c.latency() >= 0.0),
            }
        }
        let served = r.out.served_ids();
        for id in r.out.timed_out_ids() {
            prop_assert!(!served.contains(&id));
        }
    }

    /// Bit determinism: identical seeds yield identical dispatch orders
    /// and bit-identical completion timestamps.
    #[test]
    fn identical_seeds_identical_simulations(seed in 0u64..10_000,
                                             n in 1usize..60,
                                             rate in 5.0f64..200.0) {
        let cfg = ServeConfig { queue_capacity: 16, max_batch: 4, default_timeout: Some(0.5), reorder_window: 0 };
        let fingerprint = |r: &Run| {
            (
                r.dispatch_order.clone(),
                r.out.completions.iter()
                    .map(|c| (c.id, c.arrived.to_bits(), c.finished.to_bits(), c.result.is_ok()))
                    .collect::<Vec<_>>(),
                r.out.rejections.clone(),
            )
        };
        let a = run_sim(seed, rate, n, cfg, 0.01, 0.03, None);
        let b = run_sim(seed, rate, n, cfg, 0.01, 0.03, None);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Trace determinism: two runs with the same seed emit byte-identical
    /// JSONL traces (timestamps come from the simulated clock, stream
    /// structure from the deterministic scheduler).
    #[test]
    fn identical_seeds_identical_traces(seed in 0u64..10_000,
                                        n in 1usize..40,
                                        rate in 10.0f64..100.0) {
        let traced = || {
            let clock = ManualClock::new();
            let tracer = Tracer::with_clock(clock.clock());
            let guard = tracer.install("sim");
            let engine = TimedEngine::new(EchoEngine::new(), clock.clone(), 0.01);
            let cfg = ServeConfig { queue_capacity: 16, max_batch: 4, default_timeout: Some(0.4), reorder_window: 0 };
            let mut server = Server::new(engine, cfg, clock.clock());
            let traffic = mixed_traffic(seed, rate, n, None);
            let _ = drive(&mut server, &clock, &traffic, 0.03);
            drop(guard);
            tracer.finish().to_jsonl()
        };
        let a = traced();
        let b = traced();
        prop_assert!(a == b, "same seed must give a byte-identical trace");
    }

    /// Prefix-aware grouping keeps the conservation guarantee: with a
    /// reorder window and templated traffic, every submitted request
    /// still resolves and counters still reconcile — grouping reorders
    /// *within* a batch's composition, it never drops or strands work.
    #[test]
    fn grouped_scheduling_conserves_requests(seed in 0u64..10_000,
                                             n in 1usize..80,
                                             rate in 5.0f64..200.0,
                                             templates in 1u64..6,
                                             window in 1usize..10,
                                             max_batch in 1usize..12) {
        let cfg = ServeConfig { max_batch, reorder_window: window, ..ServeConfig::default() };
        let r = run_traffic(&templated_traffic(seed, rate, n, templates), cfg, 0.005, 0.04);
        prop_assert_eq!(r.out.completions.len() + r.out.rejections.len(), n);
        prop_assert_eq!(r.out.stats.timed_out, 0);
        prop_assert_eq!(r.out.stats.completed as usize, r.out.completions.len());
        prop_assert_eq!(r.dispatch_order.len(), r.out.completions.len());
    }

    /// The fairness bound of grouping: requests sharing one
    /// `(priority, template)` pair are dispatched in admission order,
    /// whatever the reorder window pulls forward.
    #[test]
    fn fifo_within_priority_and_template(seed in 0u64..10_000,
                                         n in 1usize..80,
                                         rate in 5.0f64..200.0,
                                         templates in 1u64..6,
                                         window in 1usize..10,
                                         max_batch in 1usize..12) {
        // Capacity >= n: nothing is rejected, so ids equal submission
        // indices and the id -> template mapping below is exact.
        let cfg = ServeConfig {
            queue_capacity: 128,
            max_batch,
            reorder_window: window,
            ..ServeConfig::default()
        };
        let traffic = templated_traffic(seed, rate, n, templates);
        let r = run_traffic(&traffic, cfg, 0.005, 0.04);
        let class: BTreeMap<RequestId, Priority> = r.out.completions.iter()
            .map(|c| (c.id, c.priority))
            .collect();
        // Ids are assigned in admission order and templates round-robin
        // on submission index, so id % templates recovers each request's
        // template key.
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            for t in 0..templates {
                let ids: Vec<RequestId> = r.dispatch_order.iter()
                    .copied()
                    .filter(|id| class.get(id) == Some(&p) && id % templates == t)
                    .collect();
                prop_assert!(ids.windows(2).all(|w| w[0] < w[1]),
                             "({p:?}, template {t}) dispatched out of admission order: {ids:?}");
            }
        }
    }

    /// A zero reorder window with templated traffic is *exactly* plain
    /// priority-FIFO: the dispatch order matches the same traffic with
    /// no template keys at all.
    #[test]
    fn window_zero_ignores_templates(seed in 0u64..10_000,
                                     n in 1usize..60,
                                     rate in 5.0f64..200.0,
                                     max_batch in 1usize..12) {
        let cfg = ServeConfig { max_batch, reorder_window: 0, ..ServeConfig::default() };
        let tagged = run_traffic(&templated_traffic(seed, rate, n, 3), cfg, 0.005, 0.04);
        let plain = run_traffic(&mixed_traffic(seed, rate, n, None), cfg, 0.005, 0.04);
        prop_assert_eq!(tagged.dispatch_order, plain.dispatch_order);
    }

    /// Grouped scheduling stays bit-deterministic: identical seeds give
    /// identical dispatch orders and completion timestamps under any
    /// reorder window.
    #[test]
    fn grouped_identical_seeds_identical_simulations(seed in 0u64..10_000,
                                                     n in 1usize..60,
                                                     rate in 5.0f64..200.0,
                                                     window in 0usize..10) {
        let cfg = ServeConfig {
            queue_capacity: 16,
            max_batch: 4,
            default_timeout: Some(0.5),
            reorder_window: window,
        };
        let fingerprint = |r: &Run| {
            (
                r.dispatch_order.clone(),
                r.out.completions.iter()
                    .map(|c| (c.id, c.arrived.to_bits(), c.finished.to_bits(), c.result.is_ok()))
                    .collect::<Vec<_>>(),
                r.out.rejections.clone(),
            )
        };
        let a = run_traffic(&templated_traffic(seed, rate, n, 4), cfg, 0.01, 0.03);
        let b = run_traffic(&templated_traffic(seed, rate, n, 4), cfg, 0.01, 0.03);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}

/// A non-property regression: saturating a tiny queue under a burst
/// produces interleaved served/timeout/rejected outcomes and still
/// reconciles exactly.
#[test]
fn burst_reconciliation() {
    let cfg = ServeConfig {
        queue_capacity: 3,
        max_batch: 2,
        default_timeout: Some(0.06),
        reorder_window: 0,
    };
    let r = run_sim(42, 500.0, 50, cfg, 0.01, 0.05, None);
    assert_eq!(r.out.completions.len() + r.out.rejections.len(), 50);
    assert!(!r.out.rejections.is_empty(), "burst must trip backpressure");
    assert!(
        r.out.stats.timed_out > 0,
        "tiny deadline must expire requests"
    );
    assert!(r.out.stats.completed > 0, "some requests are still served");
}
