//! Measures the naive/tiled/SIMD crossover on small square GEMMs to
//! validate the `Auto` dispatch thresholds (`TILED_MIN_FLOPS`,
//! `SIMD_MIN_FLOPS` in `ops_matmul.rs`). Run with:
//!
//! ```text
//! cargo run --release -p zg-tensor --example gemm_crossover
//! ```

use std::time::Instant;

use zg_tensor::{gemm_naive, gemm_simd, gemm_tiled, simd_available};

fn mat(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn time_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.05 / once) as usize).clamp(1, 100_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn main() {
    println!("avx2: {}", simd_available());
    println!(
        "{:>5} {:>12} {:>12} {:>12}  winner",
        "dim", "naive ns", "tiled ns", "simd ns"
    );
    for dim in [4usize, 6, 8, 12, 16, 20, 24, 32, 48, 64, 96] {
        let (m, n, k) = (dim, dim, dim);
        let a = mat(1, m * k);
        let b = mat(2, k * n);
        let mut c = vec![0.0f32; m * n];
        let t_naive = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_naive(false, false, m, n, k, &a, &b, &mut c);
        });
        let t_tiled = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_tiled(false, false, m, n, k, &a, &b, &mut c);
        });
        let t_simd = time_call(|| {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_simd(false, false, m, n, k, &a, &b, &mut c);
        });
        let winner = if t_simd <= t_tiled && t_simd <= t_naive {
            "simd"
        } else if t_tiled <= t_naive {
            "tiled"
        } else {
            "naive"
        };
        println!(
            "{dim:>5} {:>12.0} {:>12.0} {:>12.0}  {winner}",
            t_naive * 1e9,
            t_tiled * 1e9,
            t_simd * 1e9
        );
    }
}
