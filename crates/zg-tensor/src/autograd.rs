//! Reverse-mode sweep: topological ordering of the dynamically recorded
//! graph and gradient propagation.

use std::collections::HashSet;

use crate::tensor::Tensor;

impl Tensor {
    /// Backpropagate from this tensor, seeding its gradient with ones.
    ///
    /// Typically called on a scalar loss. For non-scalars the seed is a
    /// ones-tensor of the same shape (i.e. the gradient of `sum(self)`).
    pub fn backward(&self) {
        let seed = vec![1.0; self.numel()];
        self.backward_with(&seed);
    }

    /// Backpropagate with an explicit output gradient (vector-Jacobian seed).
    pub fn backward_with(&self, seed: &[f32]) {
        assert_eq!(seed.len(), self.numel(), "seed gradient shape mismatch");
        let order = topo_order(self);
        self.accumulate_grad(seed);
        // Reverse topological order: every node's gradient is complete
        // before its backward closure runs.
        for node in order.iter().rev() {
            if let Some(backward) = &node.0.backward {
                if node.0.grad.borrow().is_some() {
                    backward(node);
                }
            }
        }
        // Free intermediate gradients; leaves (parameters) keep theirs so
        // gradient accumulation across micro-batches works.
        for node in &order {
            if !node.0.parents.is_empty() {
                node.zero_grad();
            }
        }
    }
}

/// Iterative DFS post-order over the graph rooted at `root`.
///
/// Iterative rather than recursive: transformer graphs are thousands of
/// nodes deep and would overflow the stack otherwise.
fn topo_order(root: &Tensor) -> Vec<Tensor> {
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Stack of (node, child_cursor).
    let mut stack: Vec<(Tensor, usize)> = vec![(root.clone(), 0)];
    visited.insert(root.id());
    while let Some((node, cursor)) = stack.pop() {
        if cursor < node.0.parents.len() {
            let child = node.0.parents[cursor].clone();
            stack.push((node, cursor + 1));
            if child.requires_grad() && visited.insert(child.id()) {
                stack.push((child, 0));
            }
        } else {
            order.push(node);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_gradient() {
        // y = (x * 3) + 2 ; dy/dx = 3
        let x = Tensor::param(vec![1.0, 2.0], [2]);
        let y = x.mul_scalar(3.0).add_scalar(2.0);
        let s = y.sum();
        s.backward();
        assert_eq!(x.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = x*x + x ; dy/dx = 2x + 1
        let x = Tensor::param(vec![3.0], [1]);
        let y = x.mul(&x).add(&x);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![7.0]);
    }

    #[test]
    fn backward_twice_accumulates_on_leaves() {
        let x = Tensor::param(vec![1.0], [1]);
        let y = x.mul_scalar(2.0);
        y.sum().backward();
        let y2 = x.mul_scalar(2.0);
        y2.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![4.0]);
    }

    #[test]
    fn no_grad_leaves_untouched() {
        let x = Tensor::param(vec![1.0], [1]);
        crate::no_grad(|| {
            let y = x.mul_scalar(2.0);
            assert!(!y.requires_grad());
        });
        assert!(x.grad().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let x = Tensor::param(vec![1.0], [1]);
        let mut y = x.clone();
        for _ in 0..20_000 {
            y = y.add_scalar(0.0);
        }
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0]);
    }

    #[test]
    fn backward_with_custom_seed() {
        let x = Tensor::param(vec![1.0, 1.0], [2]);
        let y = x.mul_scalar(1.0);
        y.backward_with(&[2.0, 5.0]);
        assert_eq!(x.grad().unwrap(), vec![2.0, 5.0]);
    }
}
