//! Thread-local switch for bit-identical op fast paths.
//!
//! Several kernels carry two implementations: a straightforward reference
//! path and an optimized path that performs the *same floating-point
//! operations in the same order* (or skips work whose result is provably
//! discarded, such as gradients of frozen parameters). The optimized paths
//! are on by default; benchmarks pin them off to measure the reference
//! behavior, and parity tests pin them both ways to prove bit-identity.
//!
//! This mirrors [`crate::set_gemm_kernel`]: per-thread state so concurrent
//! training workers and benchmark stages don't interfere.

use std::cell::Cell;

thread_local! {
    static FAST_PATHS: Cell<bool> = const { Cell::new(true) };
}

/// Whether optimized (bit-identical) op fast paths are enabled on this
/// thread. Defaults to `true`.
pub fn op_fast_paths() -> bool {
    FAST_PATHS.with(|f| f.get())
}

/// Enable or disable op fast paths for the current thread, returning the
/// previous setting (restore it when a pinned scope ends).
pub fn set_op_fast_paths(enabled: bool) -> bool {
    FAST_PATHS.with(|f| f.replace(enabled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_on_and_restorable() {
        assert!(op_fast_paths());
        let prev = set_op_fast_paths(false);
        assert!(prev);
        assert!(!op_fast_paths());
        set_op_fast_paths(prev);
        assert!(op_fast_paths());
    }
}
