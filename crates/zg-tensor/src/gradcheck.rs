//! Numerical gradient checking: central finite differences against the
//! autograd engine. Exposed publicly so downstream crates can verify
//! their custom ops (`zg-model` uses it for RoPE in its tests).

use crate::tensor::Tensor;

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Index of the worst element.
    pub worst_index: usize,
    /// Analytic gradient at the worst element.
    pub analytic: f32,
    /// Numeric gradient at the worst element.
    pub numeric: f32,
}

impl GradCheckReport {
    /// Whether the check passed at tolerance `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol
    }
}

/// Check `d f(x) / dx` for a scalar-valued tensor function.
///
/// `f` must be a pure function of the input values: it is re-evaluated at
/// perturbed inputs for the finite-difference quotient. `h` is the
/// half-step (1e-3 is right for f32).
pub fn gradcheck(f: impl Fn(&Tensor) -> Tensor, x0: &[f32], h: f32) -> GradCheckReport {
    let n = x0.len();
    assert!(n > 0, "empty input");
    // Analytic gradient.
    let x = Tensor::param(x0.to_vec(), [n]);
    let y = f(&x);
    assert_eq!(y.numel(), 1, "gradcheck needs a scalar-valued function");
    y.backward();
    // INVARIANT: x is a fresh param and y.backward() just ran on a graph
    // rooted at it, so the leaf gradient is populated.
    let analytic = x.grad().expect("gradient must exist");

    let eval = |vals: Vec<f32>| -> f32 { f(&Tensor::from_vec(vals, [n])).item() };
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        worst_index: 0,
        analytic: analytic[0],
        numeric: 0.0,
    };
    for i in 0..n {
        let mut plus = x0.to_vec();
        plus[i] += h;
        let mut minus = x0.to_vec();
        minus[i] -= h;
        let numeric = (eval(plus) - eval(minus)) / (2.0 * h);
        let err = (analytic[i] - numeric).abs();
        if err > report.max_abs_err {
            report.max_abs_err = err;
            report.worst_index = i;
            report.analytic = analytic[i];
            report.numeric = numeric;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_composite_expression() {
        let r = gradcheck(
            |x| x.silu().mul(x).sum_axis(0, false).sqrt().sum(),
            &[0.7, 1.3, 2.1],
            1e-3,
        );
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn passes_on_matmul_softmax_chain() {
        let r = gradcheck(
            |x| {
                let m = x.reshape([2, 3]);
                m.matmul(&m.t()).softmax().sum_axis(-1, false).mean()
            },
            &[0.1, -0.4, 0.9, 0.3, 0.2, -0.7],
            1e-3,
        );
        assert!(r.passes(1e-2), "{r:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // A custom op with an intentionally wrong backward (factor 3
        // instead of 2) must fail the check.
        let r = gradcheck(
            |x| {
                let data: Vec<f32> = x.data().iter().map(|v| v * 2.0).collect();
                let xc = x.clone();
                Tensor::custom(data, [x.numel()], vec![x.clone()], move |out| {
                    let g = out.grad().expect("grad");
                    let wrong: Vec<f32> = g.iter().map(|v| v * 3.0).collect();
                    if xc.requires_grad() {
                        xc.accumulate_grad(&wrong);
                    }
                })
                .sum()
            },
            &[1.0, 2.0],
            1e-3,
        );
        assert!(!r.passes(1e-2), "wrong gradient must be detected: {r:?}");
        assert!((r.analytic - 3.0).abs() < 1e-5);
        assert!((r.numeric - 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "scalar-valued")]
    fn non_scalar_rejected() {
        gradcheck(|x| x.mul_scalar(2.0), &[1.0, 2.0], 1e-3);
    }
}
