//! Random weight initialization. Every initializer takes an explicit RNG so
//! experiments are reproducible from a seed — there is no global RNG.

use rand::Rng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Standard-normal sample via Box–Muller (avoids depending on rand_distr).
pub fn randn_sample(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data: Vec<f32> = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Normal samples with the given mean and standard deviation.
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data: Vec<f32> = (0..shape.numel())
            .map(|_| mean + std * randn_sample(rng))
            .collect();
        Tensor::from_vec(data, shape)
    }

    /// Xavier/Glorot-uniform init for a `(fan_in, fan_out)` weight matrix.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform([fan_in, fan_out], -bound, bound, rng)
    }

    /// Kaiming-normal init (`std = sqrt(2/fan_in)`) for ReLU-family nets.
    pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::randn([fan_in, fan_out], 0.0, std, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_from_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::randn([4, 4], 0.0, 1.0, &mut r1);
        let b = Tensor::randn([4, 4], 0.0, 1.0, &mut r2);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn randn_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::randn([20_000], 0.0, 1.0, &mut rng);
        let d = t.data();
        let mean: f32 = d.iter().sum::<f32>() / d.len() as f32;
        let var: f32 = d.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_bound_scales_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::xavier_uniform(300, 300, &mut rng);
        let bound = (6.0f32 / 600.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::kaiming_normal(200, 100, &mut rng);
        let d = t.data();
        let std = (d.iter().map(|v| v * v).sum::<f32>() / d.len() as f32).sqrt();
        let expect = (2.0f32 / 200.0).sqrt();
        assert!((std - expect).abs() < 0.02, "{std} vs {expect}");
    }
}
