//! Debug-mode autograd graph-leak sanitizer.
//!
//! Every tape node (an op output created while gradient recording is on,
//! with at least one `requires_grad` parent) increments a thread-local
//! counter at construction and decrements it when its `Inner` drops. In
//! release builds the counter is never touched, so the hooks compile to
//! nothing.
//!
//! [`GraphLeakGuard`] is the RAII consumer: it snapshots the live count at
//! construction and asserts on drop that the count returned to that
//! baseline. Wrapping an inference path (which must run entirely under
//! [`crate::no_grad`]) in a guard turns "we accidentally kept autograd
//! state alive" — the classic slow-leak bug in a long eval loop — into an
//! immediate, labelled panic in debug builds.
//!
//! The counter is thread-local because [`crate::Tensor`] itself is
//! single-threaded (`Rc`); create the guard on the thread doing the work.

use std::cell::Cell;

thread_local! {
    static LIVE_TAPE_NODES: Cell<u64> = const { Cell::new(0) };
}

/// Called by `Tensor::from_op` when it builds a tracked (graph) node.
#[inline]
pub(crate) fn node_created() {
    #[cfg(debug_assertions)]
    LIVE_TAPE_NODES.with(|c| c.set(c.get() + 1));
}

/// Called by `Inner::drop` for tracked nodes.
#[inline]
pub(crate) fn node_dropped() {
    #[cfg(debug_assertions)]
    LIVE_TAPE_NODES.with(|c| c.set(c.get().saturating_sub(1)));
}

/// Number of autograd tape nodes currently alive on this thread.
///
/// Always `0` in release builds (the bookkeeping is compiled out).
pub fn live_tape_nodes() -> u64 {
    LIVE_TAPE_NODES.with(|c| c.get())
}

/// RAII assertion that a scope does not leak autograd tape nodes.
///
/// In debug builds, dropping the guard panics if the thread's live tape
/// node count differs from what it was at construction. In release builds
/// the guard is free and never fires. The check is skipped while already
/// panicking so it cannot mask an original failure.
///
/// ```
/// use zg_tensor::{no_grad, GraphLeakGuard, Tensor};
/// let _guard = GraphLeakGuard::new("doc-example");
/// no_grad(|| {
///     let w = Tensor::param(vec![1.0], [1]);
///     let _y = w.mul(&w); // no_grad: detached, nothing leaks
/// });
/// // guard drops here and verifies the tape is back at baseline
/// ```
pub struct GraphLeakGuard {
    label: String,
    baseline: u64,
    pooled_baseline: u64,
}

impl GraphLeakGuard {
    /// Snapshot the current live tape node count and pooled-buffer
    /// checkout count. `label` names the scope in the panic message.
    pub fn new(label: &str) -> Self {
        GraphLeakGuard {
            label: label.to_string(),
            baseline: live_tape_nodes(),
            pooled_baseline: crate::pool::live_pooled_buffers(),
        }
    }

    /// The live tape node count captured at construction.
    pub fn baseline(&self) -> u64 {
        self.baseline
    }
}

impl Drop for GraphLeakGuard {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let now = live_tape_nodes();
            assert_eq!(
                now, self.baseline,
                "GraphLeakGuard({}): live autograd tape nodes changed from {} to {} \
                 across the guarded scope — graph state escaped (or was freed) inside \
                 a region that must be tape-neutral",
                self.label, self.baseline, now
            );
            let pooled = crate::pool::live_pooled_buffers();
            assert_eq!(
                pooled, self.pooled_baseline,
                "GraphLeakGuard({}): checked-out pooled buffers changed from {} to {} \
                 across the guarded scope — pooled scratch escaped its backward pass",
                self.label, self.pooled_baseline, pooled
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{no_grad, Tensor};

    #[test]
    fn no_grad_scope_is_tape_neutral() {
        let _guard = GraphLeakGuard::new("no-grad-scope");
        no_grad(|| {
            let w = Tensor::param(vec![1.0, 2.0], [2]);
            let y = w.mul(&w).sum();
            assert!(y.grad().is_none());
        });
    }

    #[test]
    fn balanced_graph_build_and_drop_is_clean() {
        let guard = GraphLeakGuard::new("balanced");
        let before = live_tape_nodes();
        {
            let w = Tensor::param(vec![1.0, 2.0], [2]);
            let loss = w.mul(&w).sum();
            if cfg!(debug_assertions) {
                assert!(live_tape_nodes() > before, "graph nodes should be counted");
            }
            loss.backward();
        }
        // graph dropped: the guard's Drop re-checks the baseline
        drop(guard);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sanitizer only arms in debug builds")]
    #[should_panic(expected = "GraphLeakGuard(intentional-leak)")]
    fn guard_catches_intentional_leak() {
        // Keep the graph alive past the guard by stashing the op output in
        // an outer slot: the guard must panic on drop.
        let _stash: Option<Tensor>;
        {
            let _guard = GraphLeakGuard::new("intentional-leak");
            let w = Tensor::param(vec![1.0], [1]);
            _stash = Some(w.mul(&w));
        }
    }

    #[test]
    fn counter_tracks_graph_nodes_only() {
        let before = live_tape_nodes();
        let leaf = Tensor::from_vec(vec![1.0], [1]);
        let detached = leaf.mul(&leaf); // no requires_grad parent: not a tape node
        assert_eq!(live_tape_nodes(), before);
        drop(detached);
        drop(leaf);
        assert_eq!(live_tape_nodes(), before);
    }
}
