//! # zg-tensor
//!
//! A compact, dependency-light f32 tensor engine with tape-based
//! reverse-mode automatic differentiation. This is the computational
//! substrate for the ZiGong reproduction: the Mistral-style language model
//! in `zg-model`, LoRA adapters in `zg-lora`, and the TracIn/TracSeq
//! influence machinery in `zg-influence` are all built on it.
//!
//! Highlights:
//! - NumPy-style broadcasting for binary ops, with gradient reduction over
//!   broadcast axes.
//! - Batched matmul with broadcastable batch dimensions.
//! - Fused softmax / log-softmax / cross-entropy kernels.
//! - [`Tensor::custom`] — define new differentiable ops downstream.
//! - [`no_grad`] scopes for tape-free inference.
//! - [`TensorStore`] — the `ZGT1` checkpoint format (TracIn replays
//!   gradients at stored checkpoints, so checkpoints are load-bearing).
//!
//! ```
//! use zg_tensor::Tensor;
//! let w = Tensor::param(vec![0.5, -0.5], [2]);
//! let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
//! let loss = w.mul(&x).sum().square();
//! loss.backward();
//! assert!(w.grad().is_some());
//! ```

mod autograd;
mod fastpath;
mod gradcheck;
mod init;
mod leak;
mod ops_binary;
mod ops_matmul;
mod ops_nn;
mod ops_reduce;
mod ops_shape;
mod ops_stats;
mod ops_unary;
mod pool;
mod quant;
mod shape;
mod simd;
mod store;
mod tensor;

pub use fastpath::{op_fast_paths, set_op_fast_paths};
pub use gradcheck::{gradcheck, GradCheckReport};
pub use init::randn_sample;
pub use leak::{live_tape_nodes, GraphLeakGuard};
pub use ops_matmul::{
    available_threads, default_gemm_kernel, gemm, gemm_kernel, gemm_naive, gemm_tiled,
    gemm_with_threads, set_gemm_kernel, GemmKernel,
};
pub use pool::{
    clear_pool, live_pooled_buffers, pool_stats, pool_stats_scope, reset_pool_stats,
    set_pool_enabled, PoolStats, PoolStatsScope, PooledBuf,
};
pub use quant::{quant_env_enabled, quantized_inference, set_quantized_inference, QuantizedMatrix};
pub use shape::{Shape, StridedIter};
pub use simd::{gemm_simd, gemm_simd_with_threads, simd_available};
pub use store::TensorStore;
pub use tensor::{grad_enabled, no_grad, Tensor};
