//! Binary elementwise operations with NumPy-style broadcasting and
//! broadcast-aware gradient reduction.

use crate::shape::{Shape, StridedIter};
use crate::tensor::Tensor;

/// How one operand's elements map onto the broadcast output.
///
/// The two non-trivial fast plans cover the model's hot broadcasts:
/// `Cycle` for right-aligned operands (attention masks, per-channel gains,
/// row vectors) and `Repeat` for left-aligned operands (per-row statistics
/// such as RMSNorm's `mean(x²)`), with `Strided` as the general odometer
/// fallback.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BcPlan {
    /// Operand shape equals the output: `offset = i`.
    Full,
    /// Only leading axes broadcast; the operand tiles the output:
    /// `offset = i % len`.
    Cycle(usize),
    /// Only trailing axes broadcast; each operand element covers `inner`
    /// consecutive outputs: `offset = i / inner`.
    Repeat(usize),
    /// General strided broadcast.
    Strided,
}

/// Classify how `shape` (left-padded with 1s) maps onto `out`.
fn bc_plan(shape: &Shape, out: &Shape) -> BcPlan {
    if shape == out {
        return BcPlan::Full;
    }
    let od = out.dims();
    let sd = shape.dims();
    let pad = od.len() - sd.len();
    let dim = |d: usize| if d < pad { 1 } else { sd[d - pad] };
    // All-1 prefix + matching suffix → the operand tiles the output.
    let first = (0..od.len()).position(|d| dim(d) != 1).unwrap_or(od.len());
    if (first..od.len()).all(|d| dim(d) == od[d]) {
        return BcPlan::Cycle(od[first..].iter().product());
    }
    // Matching prefix + all-1 suffix → each element repeats over a run.
    let last = (0..od.len())
        .rposition(|d| dim(d) != 1)
        .map_or(0, |d| d + 1);
    if (0..last).all(|d| dim(d) == od[d]) {
        return BcPlan::Repeat(od[last..].iter().product());
    }
    BcPlan::Strided
}

/// Elementwise forward over the broadcast of two tensors.
fn broadcast_forward(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> (Vec<f32>, Shape) {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        // INVARIANT: incompatible shapes are an unrecoverable caller bug;
        // panicking with both shapes is the documented contract.
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let n = out_shape.numel();
    let ad = a.data();
    let bd = b.data();
    let mut out = crate::pool::take_cleared(n);
    let (pa, pb) = if *a.shape() == out_shape && *b.shape() == out_shape {
        (BcPlan::Full, BcPlan::Full)
    } else if crate::fastpath::op_fast_paths() {
        (
            bc_plan(a.shape(), &out_shape),
            bc_plan(b.shape(), &out_shape),
        )
    } else {
        (BcPlan::Strided, BcPlan::Strided)
    };
    // Every arm visits output positions in ascending order and applies `f`
    // to the exact operand pair the strided fallback would — the plans only
    // replace per-element index arithmetic with slicing.
    match (pa, pb) {
        (BcPlan::Full, BcPlan::Full) => {
            out.extend(ad.iter().zip(bd.iter()).map(|(&x, &y)| f(x, y)));
        }
        (BcPlan::Full, BcPlan::Cycle(l)) => {
            for chunk in ad.chunks_exact(l) {
                out.extend(chunk.iter().zip(bd.iter()).map(|(&x, &y)| f(x, y)));
            }
        }
        (BcPlan::Cycle(l), BcPlan::Full) => {
            for chunk in bd.chunks_exact(l) {
                out.extend(ad.iter().zip(chunk.iter()).map(|(&x, &y)| f(x, y)));
            }
        }
        (BcPlan::Full, BcPlan::Repeat(inner)) => {
            for (chunk, &y) in ad.chunks_exact(inner).zip(bd.iter()) {
                out.extend(chunk.iter().map(|&x| f(x, y)));
            }
        }
        (BcPlan::Repeat(inner), BcPlan::Full) => {
            for (&x, chunk) in ad.iter().zip(bd.chunks_exact(inner)) {
                out.extend(chunk.iter().map(|&y| f(x, y)));
            }
        }
        _ => {
            let sa = a.shape().broadcast_strides(&out_shape);
            let sb = b.shape().broadcast_strides(&out_shape);
            let ia = StridedIter::new(out_shape.dims(), &sa);
            let ib = StridedIter::new(out_shape.dims(), &sb);
            out.extend(ia.zip(ib).map(|(oa, ob)| f(ad[oa], bd[ob])));
        }
    }
    (out, out_shape)
}

/// Sliced gradient accumulation when the *target* operand is output-shaped
/// (`offset = i`) and the other operand follows plan `po`. `df` is called
/// as `df(target_val, other_val)`.
fn grad_full_target(
    gt: &mut [f32],
    g: &[f32],
    tv: &[f32],
    ov: &[f32],
    po: BcPlan,
    df: impl Fn(f32, f32) -> f32,
) {
    match po {
        BcPlan::Full => {
            for i in 0..g.len() {
                gt[i] += g[i] * df(tv[i], ov[i]);
            }
        }
        BcPlan::Cycle(l) => {
            for (gtc, (gc, tc)) in gt
                .chunks_exact_mut(l)
                .zip(g.chunks_exact(l).zip(tv.chunks_exact(l)))
            {
                for j in 0..l {
                    gtc[j] += gc[j] * df(tc[j], ov[j]);
                }
            }
        }
        BcPlan::Repeat(inner) => {
            for (r, (gtc, (gc, tc))) in gt
                .chunks_exact_mut(inner)
                .zip(g.chunks_exact(inner).zip(tv.chunks_exact(inner)))
                .enumerate()
            {
                let y = ov[r];
                for j in 0..inner {
                    gtc[j] += gc[j] * df(tc[j], y);
                }
            }
        }
        // INVARIANT: callers dispatch Strided to the reference loop.
        BcPlan::Strided => unreachable!("strided plan reached the sliced kernel"),
    }
}

/// Sliced gradient accumulation when the *target* operand broadcasts per
/// plan `pt` and the other operand is output-shaped. Contributions land in
/// the same ascending-output order as the reference loop, so the f32
/// accumulation sequence per slot is unchanged.
fn grad_bcast_target(
    gt: &mut [f32],
    g: &[f32],
    tv: &[f32],
    ov: &[f32],
    pt: BcPlan,
    df: impl Fn(f32, f32) -> f32,
) {
    match pt {
        BcPlan::Cycle(l) => {
            for (gc, oc) in g.chunks_exact(l).zip(ov.chunks_exact(l)) {
                for j in 0..l {
                    gt[j] += gc[j] * df(tv[j], oc[j]);
                }
            }
        }
        BcPlan::Repeat(inner) => {
            for (r, (gc, oc)) in g
                .chunks_exact(inner)
                .zip(ov.chunks_exact(inner))
                .enumerate()
            {
                let t = tv[r];
                for j in 0..inner {
                    gt[r] += gc[j] * df(t, oc[j]);
                }
            }
        }
        // INVARIANT: callers dispatch Full targets to `grad_full_target`
        // and Strided plans to the reference loop.
        _ => unreachable!("full/strided target in broadcast-side kernel"),
    }
}

/// Backward for a broadcast binary op: accumulates `d(out)/d(a)`-weighted
/// output gradient into each parent, summing over broadcast axes implicitly
/// (repeated offsets accumulate).
fn broadcast_backward(
    out: &Tensor,
    a: &Tensor,
    b: &Tensor,
    da: impl Fn(f32, f32) -> f32, // ∂f/∂a at (a_val, b_val)
    db: impl Fn(f32, f32) -> f32, // ∂f/∂b at (a_val, b_val)
) {
    let g = out.out_grad();
    let g: &[f32] = &g;
    let ad = a.data();
    let bd = b.data();
    let out_shape = out.shape();
    let (pa, pb) = if crate::fastpath::op_fast_paths() {
        (bc_plan(a.shape(), out_shape), bc_plan(b.shape(), out_shape))
    } else {
        (BcPlan::Strided, BcPlan::Strided)
    };
    // The sliced kernels need at least one output-shaped operand so the
    // other side can be addressed by slice; they also skip a parent whose
    // gradient buffer would be discarded (e.g. the additive attention mask).
    if pa != BcPlan::Strided && pb != BcPlan::Strided && (pa == BcPlan::Full || pb == BcPlan::Full)
    {
        if a.requires_grad() {
            let mut ga = crate::pool::PooledBuf::zeroed(a.numel());
            if pa == BcPlan::Full {
                grad_full_target(&mut ga, g, &ad, &bd, pb, &da);
            } else {
                grad_bcast_target(&mut ga, g, &ad, &bd, pa, &da);
            }
            a.accumulate_grad(&ga);
        }
        if b.requires_grad() {
            let mut gb = crate::pool::PooledBuf::zeroed(b.numel());
            let dbf = |t: f32, o: f32| db(o, t);
            if pb == BcPlan::Full {
                grad_full_target(&mut gb, g, &bd, &ad, pa, dbf);
            } else {
                grad_bcast_target(&mut gb, g, &bd, &ad, pb, dbf);
            }
            b.accumulate_grad(&gb);
        }
        return;
    }
    let sa = a.shape().broadcast_strides(out_shape);
    let sb = b.shape().broadcast_strides(out_shape);
    let mut ga = crate::pool::PooledBuf::zeroed(a.numel());
    let mut gb = crate::pool::PooledBuf::zeroed(b.numel());
    let ia = StridedIter::new(out_shape.dims(), &sa);
    let ib = StridedIter::new(out_shape.dims(), &sb);
    for (i, (oa, ob)) in ia.zip(ib).enumerate() {
        let (x, y) = (ad[oa], bd[ob]);
        ga[oa] += g[i] * da(x, y);
        gb[ob] += g[i] * db(x, y);
    }
    drop(ad);
    drop(bd);
    if a.requires_grad() {
        a.accumulate_grad(&ga);
    }
    if b.requires_grad() {
        b.accumulate_grad(&gb);
    }
}

macro_rules! binary_op {
    ($name:ident, $doc:literal, $f:expr, $da:expr, $db:expr) => {
        #[doc = $doc]
        pub fn $name(&self, other: &Tensor) -> Tensor {
            let (data, shape) = broadcast_forward(self, other, $f);
            let a = self.clone();
            let b = other.clone();
            Tensor::from_op(
                data,
                shape,
                vec![self.clone(), other.clone()],
                Box::new(move |out| broadcast_backward(out, &a, &b, $da, $db)),
            )
        }
    };
}

impl Tensor {
    binary_op!(
        add,
        "Elementwise `self + other` with broadcasting.",
        |x, y| x + y,
        |_, _| 1.0,
        |_, _| 1.0
    );

    binary_op!(
        sub,
        "Elementwise `self - other` with broadcasting.",
        |x, y| x - y,
        |_, _| 1.0,
        |_, _| -1.0
    );

    binary_op!(
        mul,
        "Elementwise `self * other` (Hadamard product) with broadcasting.",
        |x, y| x * y,
        |_, y| y,
        |x, _| x
    );

    binary_op!(
        div,
        "Elementwise `self / other` with broadcasting.",
        |x, y| x / y,
        |_, y| 1.0 / y,
        |x, y| -x / (y * y)
    );

    binary_op!(
        maximum,
        "Elementwise maximum with broadcasting. Ties route gradient to `self`.",
        |x, y| x.max(y),
        |x, y| if x >= y { 1.0 } else { 0.0 },
        |x, y| if x >= y { 0.0 } else { 1.0 }
    );

    binary_op!(
        minimum,
        "Elementwise minimum with broadcasting. Ties route gradient to `self`.",
        |x: f32, y: f32| x.min(y),
        |x, y| if x <= y { 1.0 } else { 0.0 },
        |x, y| if x <= y { 0.0 } else { 1.0 }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(v, s.to_vec())
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![10.0, 20.0], &[2]);
        let c = a.add(&b);
        assert_eq!(c.to_vec(), vec![11.0, 22.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn add_broadcast_row() {
        // (2,3) + (3,) broadcasts the row vector.
        let a = t(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[2, 3]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
        c.sum().backward();
        // b's gradient sums over the broadcast (row) axis.
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_gradients() {
        let a = t(vec![2.0, 3.0], &[2]);
        let b = t(vec![5.0, 7.0], &[2]);
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn mul_with_self_doubles_grad() {
        let a = t(vec![3.0], &[1]);
        a.mul(&a).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![6.0]);
    }

    #[test]
    fn div_gradients() {
        let a = t(vec![6.0], &[1]);
        let b = t(vec![2.0], &[1]);
        let c = a.div(&b);
        assert_eq!(c.to_vec(), vec![3.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.5]);
        assert_eq!(b.grad().unwrap(), vec![-1.5]);
    }

    #[test]
    fn sub_broadcast_scalar_tensor() {
        let a = t(vec![5.0, 8.0], &[2]);
        let s = t(vec![3.0], &[]);
        let c = a.sub(&s);
        assert_eq!(c.to_vec(), vec![2.0, 5.0]);
        c.sum().backward();
        assert_eq!(s.grad().unwrap(), vec![-2.0]);
    }

    #[test]
    fn maximum_routes_gradient() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        let c = a.maximum(&b);
        assert_eq!(c.to_vec(), vec![3.0, 5.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn minimum_routes_gradient() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        let c = a.minimum(&b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 0.0]);
        assert_eq!(b.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = t(vec![1.0; 3], &[3]);
        let b = t(vec![1.0; 4], &[4]);
        a.add(&b);
    }

    #[test]
    fn broadcast_both_directions() {
        // (3,1) * (1,4) -> (3,4)
        let a = t(vec![1.0, 2.0, 3.0], &[3, 1]);
        let b = t(vec![1.0, 10.0, 100.0, 1000.0], &[1, 4]);
        let c = a.mul(&b);
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(c.at(&[2, 3]), 3000.0);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1111.0, 1111.0, 1111.0]);
        assert_eq!(b.grad().unwrap(), vec![6.0, 6.0, 6.0, 6.0]);
    }
}
