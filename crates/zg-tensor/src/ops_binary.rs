//! Binary elementwise operations with NumPy-style broadcasting and
//! broadcast-aware gradient reduction.

use crate::shape::{Shape, StridedIter};
use crate::tensor::Tensor;

/// Elementwise forward over the broadcast of two tensors.
fn broadcast_forward(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> (Vec<f32>, Shape) {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        // INVARIANT: incompatible shapes are an unrecoverable caller bug;
        // panicking with both shapes is the documented contract.
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let n = out_shape.numel();
    let ad = a.data();
    let bd = b.data();
    let mut out = Vec::with_capacity(n);
    if *a.shape() == out_shape && *b.shape() == out_shape {
        // Fast path: same shape, contiguous zip.
        out.extend(ad.iter().zip(bd.iter()).map(|(&x, &y)| f(x, y)));
    } else {
        let sa = a.shape().broadcast_strides(&out_shape);
        let sb = b.shape().broadcast_strides(&out_shape);
        let ia = StridedIter::new(out_shape.dims(), &sa);
        let ib = StridedIter::new(out_shape.dims(), &sb);
        out.extend(ia.zip(ib).map(|(oa, ob)| f(ad[oa], bd[ob])));
    }
    (out, out_shape)
}

/// Backward for a broadcast binary op: accumulates `d(out)/d(a)`-weighted
/// output gradient into each parent, summing over broadcast axes implicitly
/// (repeated offsets accumulate).
fn broadcast_backward(
    out: &Tensor,
    a: &Tensor,
    b: &Tensor,
    da: impl Fn(f32, f32) -> f32, // ∂f/∂a at (a_val, b_val)
    db: impl Fn(f32, f32) -> f32, // ∂f/∂b at (a_val, b_val)
) {
    let g = out.out_grad();
    let g: &[f32] = &g;
    let ad = a.data();
    let bd = b.data();
    let out_shape = out.shape();
    let sa = a.shape().broadcast_strides(out_shape);
    let sb = b.shape().broadcast_strides(out_shape);
    let mut ga = vec![0.0f32; a.numel()];
    let mut gb = vec![0.0f32; b.numel()];
    let ia = StridedIter::new(out_shape.dims(), &sa);
    let ib = StridedIter::new(out_shape.dims(), &sb);
    for (i, (oa, ob)) in ia.zip(ib).enumerate() {
        let (x, y) = (ad[oa], bd[ob]);
        ga[oa] += g[i] * da(x, y);
        gb[ob] += g[i] * db(x, y);
    }
    drop(ad);
    drop(bd);
    if a.requires_grad() {
        a.accumulate_grad(&ga);
    }
    if b.requires_grad() {
        b.accumulate_grad(&gb);
    }
}

macro_rules! binary_op {
    ($name:ident, $doc:literal, $f:expr, $da:expr, $db:expr) => {
        #[doc = $doc]
        pub fn $name(&self, other: &Tensor) -> Tensor {
            let (data, shape) = broadcast_forward(self, other, $f);
            let a = self.clone();
            let b = other.clone();
            Tensor::from_op(
                data,
                shape,
                vec![self.clone(), other.clone()],
                Box::new(move |out| broadcast_backward(out, &a, &b, $da, $db)),
            )
        }
    };
}

impl Tensor {
    binary_op!(
        add,
        "Elementwise `self + other` with broadcasting.",
        |x, y| x + y,
        |_, _| 1.0,
        |_, _| 1.0
    );

    binary_op!(
        sub,
        "Elementwise `self - other` with broadcasting.",
        |x, y| x - y,
        |_, _| 1.0,
        |_, _| -1.0
    );

    binary_op!(
        mul,
        "Elementwise `self * other` (Hadamard product) with broadcasting.",
        |x, y| x * y,
        |_, y| y,
        |x, _| x
    );

    binary_op!(
        div,
        "Elementwise `self / other` with broadcasting.",
        |x, y| x / y,
        |_, y| 1.0 / y,
        |x, y| -x / (y * y)
    );

    binary_op!(
        maximum,
        "Elementwise maximum with broadcasting. Ties route gradient to `self`.",
        |x, y| x.max(y),
        |x, y| if x >= y { 1.0 } else { 0.0 },
        |x, y| if x >= y { 0.0 } else { 1.0 }
    );

    binary_op!(
        minimum,
        "Elementwise minimum with broadcasting. Ties route gradient to `self`.",
        |x: f32, y: f32| x.min(y),
        |x, y| if x <= y { 1.0 } else { 0.0 },
        |x, y| if x <= y { 0.0 } else { 1.0 }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(v, s.to_vec())
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![10.0, 20.0], &[2]);
        let c = a.add(&b);
        assert_eq!(c.to_vec(), vec![11.0, 22.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn add_broadcast_row() {
        // (2,3) + (3,) broadcasts the row vector.
        let a = t(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[2, 3]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
        c.sum().backward();
        // b's gradient sums over the broadcast (row) axis.
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_gradients() {
        let a = t(vec![2.0, 3.0], &[2]);
        let b = t(vec![5.0, 7.0], &[2]);
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn mul_with_self_doubles_grad() {
        let a = t(vec![3.0], &[1]);
        a.mul(&a).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![6.0]);
    }

    #[test]
    fn div_gradients() {
        let a = t(vec![6.0], &[1]);
        let b = t(vec![2.0], &[1]);
        let c = a.div(&b);
        assert_eq!(c.to_vec(), vec![3.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.5]);
        assert_eq!(b.grad().unwrap(), vec![-1.5]);
    }

    #[test]
    fn sub_broadcast_scalar_tensor() {
        let a = t(vec![5.0, 8.0], &[2]);
        let s = t(vec![3.0], &[]);
        let c = a.sub(&s);
        assert_eq!(c.to_vec(), vec![2.0, 5.0]);
        c.sum().backward();
        assert_eq!(s.grad().unwrap(), vec![-2.0]);
    }

    #[test]
    fn maximum_routes_gradient() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        let c = a.maximum(&b);
        assert_eq!(c.to_vec(), vec![3.0, 5.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn minimum_routes_gradient() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        let c = a.minimum(&b);
        assert_eq!(c.to_vec(), vec![1.0, 2.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 0.0]);
        assert_eq!(b.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = t(vec![1.0; 3], &[3]);
        let b = t(vec![1.0; 4], &[4]);
        a.add(&b);
    }

    #[test]
    fn broadcast_both_directions() {
        // (3,1) * (1,4) -> (3,4)
        let a = t(vec![1.0, 2.0, 3.0], &[3, 1]);
        let b = t(vec![1.0, 10.0, 100.0, 1000.0], &[1, 4]);
        let c = a.mul(&b);
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(c.at(&[2, 3]), 3000.0);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1111.0, 1111.0, 1111.0]);
        assert_eq!(b.grad().unwrap(), vec![6.0, 6.0, 6.0, 6.0]);
    }
}
