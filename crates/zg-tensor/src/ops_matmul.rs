//! Batched matrix multiplication with broadcastable leading (batch)
//! dimensions, plus the small row-major GEMM kernels used throughout.

use crate::shape::{Shape, StridedIter};
use crate::tensor::Tensor;

/// `c += op(a) · op(b)` for row-major matrices.
///
/// Logical dimensions are always `(m, k) · (k, n) -> (m, n)`; the `ta`/`tb`
/// flags say the physical buffer is stored transposed. Loop orders are chosen
/// per case for contiguous inner loops.
#[allow(clippy::too_many_arguments)]
pub fn gemm(ta: bool, tb: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    match (ta, tb) {
        (false, false) => {
            // ikj: stream rows of b.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        }
        (false, true) => {
            // b physically (n, k): dot products of contiguous rows.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        }
        (true, false) => {
            // a physically (k, m): kij with axpy rows.
            for kk in 0..k {
                let arow = &a[kk * m..(kk + 1) * m];
                let brow = &b[kk * n..(kk + 1) * n];
                for (i, &aki) in arow.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let crow = &mut c[i * n..(i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aki * bv;
                    }
                }
            }
        }
        (true, true) => {
            // Rare path: fall back to index arithmetic.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a[kk * m + i] * b[j * k + kk];
                    }
                    c[i * n + j] += acc;
                }
            }
        }
    }
}

/// Split a shape into (batch dims, rows, cols) for matmul.
fn split_matrix(shape: &Shape) -> (&[usize], usize, usize) {
    let dims = shape.dims();
    assert!(
        dims.len() >= 2,
        "matmul operand must have rank >= 2, got {shape}"
    );
    let (batch, mat) = dims.split_at(dims.len() - 2);
    (batch, mat[0], mat[1])
}

/// Per-batch flat chunk offsets for both operands and the output.
struct BatchPlan {
    batch: Shape,
    a_offsets: Vec<usize>,
    b_offsets: Vec<usize>,
}

fn batch_plan(a_shape: &Shape, b_shape: &Shape) -> BatchPlan {
    let (ab, m, k) = split_matrix(a_shape);
    let (bb, _, n) = split_matrix(b_shape);
    let ab = Shape::new(ab);
    let bb = Shape::new(bb);
    let batch = ab
        .broadcast(&bb)
        .unwrap_or_else(|| panic!("matmul batch dims {ab} and {bb} do not broadcast"));
    // Batch strides measured in matrix chunks, then scaled to element offsets.
    let sa = ab.broadcast_strides(&batch);
    let sb = bb.broadcast_strides(&batch);
    let a_offsets: Vec<usize> = StridedIter::new(batch.dims(), &sa)
        .map(|o| o * m * k)
        .collect();
    let b_offsets: Vec<usize> = StridedIter::new(batch.dims(), &sb)
        .map(|o| o * k * n)
        .collect();
    BatchPlan {
        batch,
        a_offsets,
        b_offsets,
    }
}

impl Tensor {
    /// Matrix product. Last two dims multiply `(…, m, k) · (…, k, n) ->
    /// (…, m, n)`; leading dims broadcast NumPy-style.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (_, m, k) = split_matrix(self.shape());
        let (_, k2, n) = split_matrix(other.shape());
        assert_eq!(
            k,
            k2,
            "matmul inner dims differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let plan = batch_plan(self.shape(), other.shape());
        let nbatch = plan.batch.numel();
        let mut out = vec![0.0f32; nbatch * m * n];
        {
            let ad = self.data();
            let bd = other.data();
            for (bi, (&ao, &bo)) in plan.a_offsets.iter().zip(&plan.b_offsets).enumerate() {
                gemm(
                    false,
                    false,
                    m,
                    n,
                    k,
                    &ad[ao..ao + m * k],
                    &bd[bo..bo + k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                );
            }
        }
        let mut out_dims = plan.batch.dims().to_vec();
        out_dims.push(m);
        out_dims.push(n);

        let a = self.clone();
        let b = other.clone();
        Tensor::from_op(
            out,
            Shape(out_dims),
            vec![self.clone(), other.clone()],
            Box::new(move |outt| {
                let g = outt.0.grad.borrow();
                let g = g.as_ref().expect("missing output grad");
                let plan = batch_plan(a.shape(), b.shape());
                let ad = a.data();
                let bd = b.data();
                let mut ga = vec![0.0f32; a.numel()];
                let mut gb = vec![0.0f32; b.numel()];
                for (bi, (&ao, &bo)) in plan.a_offsets.iter().zip(&plan.b_offsets).enumerate() {
                    let gchunk = &g[bi * m * n..(bi + 1) * m * n];
                    // dA = dY · Bᵀ  (broadcast batches accumulate at the
                    // same offset, which performs the required reduction).
                    gemm(
                        false,
                        true,
                        m,
                        k,
                        n,
                        gchunk,
                        &bd[bo..bo + k * n],
                        &mut ga[ao..ao + m * k],
                    );
                    // dB = Aᵀ · dY
                    gemm(
                        true,
                        false,
                        k,
                        n,
                        m,
                        &ad[ao..ao + m * k],
                        gchunk,
                        &mut gb[bo..bo + k * n],
                    );
                }
                drop(ad);
                drop(bd);
                if a.requires_grad() {
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_nn() {
        // (2,3)·(3,2)
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0; 4];
        gemm(false, false, 2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_transpose_variants_agree() {
        // Random-ish small matrices; all four variants must agree with NN.
        let m = 3;
        let n = 4;
        let k = 5;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut c_ref = vec![0.0; m * n];
        gemm(false, false, m, n, k, &a, &b, &mut c_ref);

        // Physically transpose a -> at (k,m) and b -> bt (n,k).
        let mut at = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut bt = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        for (ta, tb, pa, pb) in [
            (true, false, &at, &b),
            (false, true, &a, &bt),
            (true, true, &at, &bt),
        ] {
            let mut c = vec![0.0; m * n];
            gemm(ta, tb, m, n, k, pa, pb, &mut c);
            for (x, y) in c.iter().zip(&c_ref) {
                assert!((x - y).abs() < 1e-5, "({ta},{tb}) mismatch");
            }
        }
    }

    #[test]
    fn matmul_2d_forward_backward() {
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::param(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
        c.sum().backward();
        // dA = 1·Bᵀ summed: rows of ones times Bᵀ
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_batched_equal_batches() {
        // (2,2,3)·(2,3,1)
        let a = Tensor::param((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::param(vec![1.0; 6], [2, 3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.to_vec(), vec![3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_broadcast_weight() {
        // (2,2,3)·(3,2): shared weight across the batch.
        let a = Tensor::param(vec![1.0; 12], [2, 2, 3]);
        let w = Tensor::param(vec![0.5; 6], [3, 2]);
        let c = a.matmul(&w);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert!(c.to_vec().iter().all(|&v| (v - 1.5).abs() < 1e-6));
        c.sum().backward();
        // Each weight element sees all 4 rows of ones.
        assert_eq!(w.grad().unwrap(), vec![4.0; 6]);
    }

    #[test]
    fn matmul_gradcheck_numeric() {
        // Finite-difference check on a 2x3 · 3x2 product.
        let av: Vec<f32> = vec![0.3, -0.5, 0.8, 1.1, -0.2, 0.4];
        let bv: Vec<f32> = vec![0.7, 0.1, -0.3, 0.9, 0.2, -0.6];
        let f = |av: &[f32], bv: &[f32]| -> f32 {
            let a = Tensor::from_vec(av.to_vec(), [2, 3]);
            let b = Tensor::from_vec(bv.to_vec(), [3, 2]);
            a.matmul(&b).sum().item()
        };
        let a = Tensor::param(av.clone(), [2, 3]);
        let b = Tensor::param(bv.clone(), [3, 2]);
        a.matmul(&b).sum().backward();
        let ga = a.grad().unwrap();
        let h = 1e-2;
        for i in 0..av.len() {
            let mut ap = av.clone();
            ap[i] += h;
            let mut am = av.clone();
            am[i] -= h;
            let num = (f(&ap, &bv) - f(&am, &bv)) / (2.0 * h);
            assert!((ga[i] - num).abs() < 1e-2, "a[{i}]: {} vs {num}", ga[i]);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        a.matmul(&b);
    }
}
