//! Batched matrix multiplication with broadcastable leading (batch)
//! dimensions, plus the row-major GEMM kernels used throughout.
//!
//! Three f32 kernels live here (plus the int8 path in [`crate::quant`]):
//!
//! * [`gemm_naive`] — the original scalar triple loops, kept as the
//!   bit-exact reference and as the small-matrix fallback.
//! * [`gemm_tiled`] — a packed, register-blocked microkernel
//!   (`MR`×`NR` accumulator tiles over packed A/B panels) with a
//!   row-partitioned multi-threaded dispatch for large products.
//! * [`crate::gemm_simd`] — the cache-blocked AVX2 kernel in
//!   [`crate::simd`], selected by [`GemmKernel::Simd`] and preferred by
//!   [`GemmKernel::Auto`] when the CPU supports it.
//!
//! The tiled and SIMD kernels load the destination tile into their
//! accumulators before the k-loop and add products in ascending-k
//! order, which is exactly the float-operation order of the naive
//! `ikj`/`kij` loops — so for every call site in this workspace (all of
//! which either start from a zero `c` or accumulate through the
//! `(ta=false)`/`(tb=false)` variants) both are **bit-identical** to
//! the naive kernel, and the threaded dispatches are bit-identical to
//! serial because each thread computes a disjoint set of output rows
//! with the same kernel. (Caveat from PR 1 still applies: the CI
//! container is 1-core, so the threaded path is exercised via explicit
//! worker counts in tests.)

use std::cell::Cell;

use crate::shape::{Shape, StridedIter};
use crate::tensor::Tensor;

/// Which GEMM kernel [`gemm`] dispatches to. Thread-local; defaults to
/// [`default_gemm_kernel`] ([`GemmKernel::Auto`] unless overridden by
/// the `ZG_GEMM_KERNEL` env var). The benchmark binaries pin
/// [`GemmKernel::Naive`] to measure the pre-fast-path baseline on the
/// same build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Original scalar triple loops, always.
    Naive,
    /// Tiled microkernel, single-threaded.
    Tiled,
    /// Cache-blocked AVX2 microkernel ([`crate::gemm_simd`]),
    /// single-threaded; falls back to its portable edge kernel on
    /// non-AVX2 hosts with bit-identical results.
    Simd,
    /// Best available kernel (SIMD when the CPU supports it, else
    /// tiled); large products additionally fan output rows across
    /// `available_parallelism` threads.
    Auto,
}

/// The process-wide default kernel: `ZG_GEMM_KERNEL` ∈
/// `naive|tiled|simd|auto` when set (read once), else
/// [`GemmKernel::Auto`]. CI uses the env override to force every test
/// through a specific kernel.
pub fn default_gemm_kernel() -> GemmKernel {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<GemmKernel> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("ZG_GEMM_KERNEL").as_deref() {
        Ok("naive") => GemmKernel::Naive,
        Ok("tiled") => GemmKernel::Tiled,
        Ok("simd") => GemmKernel::Simd,
        _ => GemmKernel::Auto,
    })
}

thread_local! {
    static GEMM_KERNEL: Cell<GemmKernel> = Cell::new(default_gemm_kernel());
}

/// Select the kernel used by [`gemm`] on this thread; returns the
/// previous selection so callers can restore it.
pub fn set_gemm_kernel(kernel: GemmKernel) -> GemmKernel {
    GEMM_KERNEL.with(|c| c.replace(kernel))
}

/// The kernel [`gemm`] currently dispatches to on this thread.
pub fn gemm_kernel() -> GemmKernel {
    GEMM_KERNEL.with(Cell::get)
}

/// Microkernel tile height (output rows per packed A panel).
const MR: usize = 8;
/// Microkernel tile width (output cols per packed B panel).
const NR: usize = 8;

/// Below this `m·n·k` the packing overhead dominates and the naive
/// loops win; measured crossover is around a 16³ product.
const TILED_MIN_FLOPS: usize = 16 * 16 * 16;
/// Above this `m·n·k` the KC-blocked SIMD kernel's extra packing
/// bookkeeping is amortized and it beats both other kernels; below it
/// (but above `TILED_MIN_FLOPS`) `Auto` keeps the tiled kernel.
/// Measured on the CI host (`examples/gemm_crossover.rs`): naive wins
/// through 8³, SIMD wins from 12³ up — so the floor sits at the naive
/// guard and the tiled middle band is empty on AVX2 hosts.
const SIMD_MIN_FLOPS: usize = TILED_MIN_FLOPS;
/// Minimum `m·n·k` before the row-threaded dispatch is worth the
/// thread-spawn cost (~10 µs per scoped thread).
const THREADED_MIN_FLOPS: usize = 128 * 128 * 128;

/// `c += op(a) · op(b)` for row-major matrices.
///
/// Logical dimensions are always `(m, k) · (k, n) -> (m, n)`; the `ta`/`tb`
/// flags say the physical buffer is stored transposed. Dispatches to the
/// kernel selected by [`set_gemm_kernel`]: the tiled microkernel (with
/// row-threading for large products under [`GemmKernel::Auto`]), falling
/// back to the naive loops for small products where packing costs more
/// than it saves.
#[allow(clippy::too_many_arguments)]
pub fn gemm(ta: bool, tb: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let flops = m * n * k;
    // Resolve the dispatch first so tracing sees the actual kernel used,
    // not just the thread-local selection.
    enum Dispatch {
        Naive,
        Tiled,
        Simd,
        Threaded(usize),
        SimdThreaded(usize),
    }
    let dispatch = match gemm_kernel() {
        GemmKernel::Naive => Dispatch::Naive,
        _ if flops < TILED_MIN_FLOPS || m < MR / 2 || n < NR / 2 => Dispatch::Naive,
        GemmKernel::Tiled => Dispatch::Tiled,
        GemmKernel::Simd => Dispatch::Simd,
        GemmKernel::Auto => {
            let simd = crate::simd::simd_available();
            let threads = if flops >= THREADED_MIN_FLOPS {
                available_threads()
            } else {
                1
            };
            match (simd, threads > 1) {
                (true, true) => Dispatch::SimdThreaded(threads),
                (true, false) if flops >= SIMD_MIN_FLOPS => Dispatch::Simd,
                (true, false) => Dispatch::Tiled,
                (false, true) => Dispatch::Threaded(threads),
                (false, false) => Dispatch::Tiled,
            }
        }
    };
    if zg_trace::enabled() {
        zg_trace::counter_add(
            match dispatch {
                Dispatch::Naive => "gemm.dispatch.naive",
                Dispatch::Tiled => "gemm.dispatch.tiled",
                Dispatch::Simd => "gemm.dispatch.simd",
                Dispatch::Threaded(_) => "gemm.dispatch.threaded",
                Dispatch::SimdThreaded(_) => "gemm.dispatch.simd_threaded",
            },
            1.0,
        );
        zg_trace::hist_record("gemm.mnk", flops as f64);
    }
    match dispatch {
        Dispatch::Naive => gemm_naive(ta, tb, m, n, k, a, b, c),
        Dispatch::Tiled => gemm_tiled(ta, tb, m, n, k, a, b, c),
        Dispatch::Simd => crate::simd::gemm_simd(ta, tb, m, n, k, a, b, c),
        Dispatch::Threaded(threads) => gemm_with_threads(ta, tb, m, n, k, a, b, c, threads),
        Dispatch::SimdThreaded(threads) => {
            crate::simd::gemm_simd_with_threads(ta, tb, m, n, k, a, b, c, threads)
        }
    }
}

/// The fastest *serial* kernel on this host — what batch-parallel
/// workers pin to avoid nested thread spawns.
pub(crate) fn serial_kernel() -> GemmKernel {
    if crate::simd::simd_available() {
        GemmKernel::Simd
    } else {
        GemmKernel::Tiled
    }
}

/// Trace hook for the int8 quantized path (mirrors the f32 dispatch
/// counters; called by [`crate::QuantizedMatrix::matmul_into`]).
pub(crate) fn count_quant_dispatch(m: usize, n: usize, k: usize) {
    if zg_trace::enabled() {
        zg_trace::counter_add("gemm.dispatch.quant", 1.0);
        zg_trace::hist_record("gemm.mnk", (m * n * k) as f64);
    }
}

/// The machine's available parallelism (cached).
pub fn available_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Original scalar GEMM (reference kernel). Loop orders are chosen per
/// transpose case for contiguous inner loops.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    match (ta, tb) {
        (false, false) => {
            // ikj: stream rows of b.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        }
        (false, true) => {
            // b physically (n, k): dot products of contiguous rows.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        }
        (true, false) => {
            // a physically (k, m): kij with axpy rows.
            for kk in 0..k {
                let arow = &a[kk * m..(kk + 1) * m];
                let brow = &b[kk * n..(kk + 1) * n];
                for (i, &aki) in arow.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let crow = &mut c[i * n..(i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aki * bv;
                    }
                }
            }
        }
        (true, true) => {
            // Rare path: fall back to index arithmetic.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a[kk * m + i] * b[j * k + kk];
                    }
                    c[i * n + j] += acc;
                }
            }
        }
    }
}

/// Packed B: all `NR`-wide column panels of `op(b)`, zero-padded on the
/// right edge so the microkernel inner loop is branch-free. Panel `jp`
/// occupies `bp[jp·k·NR .. (jp+1)·k·NR]` with layout `[p][jj]`.
fn pack_b(tb: bool, b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let n_panels = n.div_ceil(NR);
    let mut bp = crate::pool::take_zeroed(n_panels * k * NR);
    for jp in 0..n_panels {
        let col0 = jp * NR;
        let nr = NR.min(n - col0);
        let panel = &mut bp[jp * k * NR..(jp + 1) * k * NR];
        if tb {
            // b physically (n, k): column j of op(b) is row j of b.
            for jj in 0..nr {
                let src = &b[(col0 + jj) * k..(col0 + jj + 1) * k];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            }
        } else {
            for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                chunk[..nr].copy_from_slice(&b[p * n + col0..p * n + col0 + nr]);
            }
        }
    }
    bp
}

/// Pack `mr` rows of `op(a)` starting at `row0` into `ap` (layout
/// `[p][i]`, zero-padded to `MR` rows).
fn pack_a_panel(ta: bool, a: &[f32], m: usize, k: usize, row0: usize, mr: usize, ap: &mut [f32]) {
    debug_assert_eq!(ap.len(), k * MR);
    ap.fill(0.0);
    if ta {
        // a physically (k, m): row i of op(a) is column i of a.
        for (p, chunk) in ap.chunks_exact_mut(MR).enumerate() {
            chunk[..mr].copy_from_slice(&a[p * m + row0..p * m + row0 + mr]);
        }
    } else {
        for i in 0..mr {
            let src = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (p, &v) in src.iter().enumerate() {
                ap[p * MR + i] = v;
            }
        }
    }
}

/// The register-blocked microkernel: `MR`×`NR` accumulators seeded from
/// the destination tile, then one fused pass over `k` adding
/// `a[p][i]·b[p][j]` in ascending-`p` order (the naive kernels' float
/// order). Fixed loop bounds let LLVM unroll and vectorize the body.
#[inline]
fn microkernel(k: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    for p in 0..k {
        let av = &ap[p * MR..p * MR + MR];
        let bv = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            let aa = av[i];
            for (accv, &bb) in acc[i].iter_mut().zip(bv) {
                *accv += aa * bb;
            }
        }
    }
}

/// Tiled GEMM over `nrows` output rows starting at global row
/// `row_start`, against a pre-packed B. `c_chunk` holds exactly those
/// rows (chunk-local row 0 = global `row_start`). Each `MR`-row band
/// packs its A panel once and sweeps all B panels.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled_rows(
    ta: bool,
    a: &[f32],
    bp: &[f32],
    c_chunk: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    row_start: usize,
    nrows: usize,
) {
    debug_assert_eq!(c_chunk.len(), nrows * n);
    // Scratch: pack_a_panel zero-fills the panel before every band.
    let mut ap = crate::pool::take_scratch(k * MR);
    let mut band = 0;
    while band < nrows {
        let mr = MR.min(nrows - band);
        pack_a_panel(ta, a, m, k, row_start + band, mr, &mut ap);
        let mut col0 = 0;
        let mut jp = 0;
        while col0 < n {
            let nr = NR.min(n - col0);
            // Seed accumulators from the destination tile so the
            // accumulation order matches the naive sequential loops.
            let mut acc = [[0.0f32; NR]; MR];
            for (i, acci) in acc.iter_mut().enumerate().take(mr) {
                let crow = &c_chunk[(band + i) * n + col0..(band + i) * n + col0 + nr];
                acci[..nr].copy_from_slice(crow);
            }
            microkernel(k, &ap, &bp[jp * k * NR..(jp + 1) * k * NR], &mut acc);
            for (i, acci) in acc.iter().enumerate().take(mr) {
                let crow = &mut c_chunk[(band + i) * n + col0..(band + i) * n + col0 + nr];
                crow.copy_from_slice(&acci[..nr]);
            }
            col0 += NR;
            jp += 1;
        }
        band += MR;
    }
    crate::pool::recycle(ap);
}

/// Single-threaded tiled GEMM (`c += op(a)·op(b)`), any shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tiled(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm_with_threads(ta, tb, m, n, k, a, b, c, 1);
}

/// Tiled GEMM with the output rows partitioned across `threads` scoped
/// worker threads. Every worker runs the identical kernel over a
/// disjoint, contiguous row range of `c`, so the result is bit-identical
/// to `threads = 1` for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_threads(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let bp = pack_b(tb, b, k, n);
    // Row bands per thread, aligned to MR so no panel straddles workers.
    let bands = m.div_ceil(MR);
    let threads = threads.clamp(1, bands.max(1));
    if threads == 1 {
        gemm_tiled_rows(ta, a, &bp, c, m, n, k, 0, m);
        crate::pool::recycle(bp);
        return;
    }
    let bands_per = bands.div_ceil(threads);
    let rows_per = bands_per * MR;
    let bp_ref = &bp;
    std::thread::scope(|s| {
        let mut rest = c;
        let mut row0 = 0;
        while row0 < m {
            let take = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(take * n);
            rest = tail;
            let r0 = row0;
            s.spawn(move || {
                gemm_tiled_rows(ta, a, bp_ref, chunk, m, n, k, r0, take);
            });
            row0 += take;
        }
    });
    crate::pool::recycle(bp);
}

/// Split a shape into (batch dims, rows, cols) for matmul.
fn split_matrix(shape: &Shape) -> (&[usize], usize, usize) {
    let dims = shape.dims();
    assert!(
        dims.len() >= 2,
        "matmul operand must have rank >= 2, got {shape}"
    );
    let (batch, mat) = dims.split_at(dims.len() - 2);
    (batch, mat[0], mat[1])
}

/// Per-batch flat chunk offsets for both operands and the output.
struct BatchPlan {
    batch: Shape,
    a_offsets: Vec<usize>,
    b_offsets: Vec<usize>,
}

fn batch_plan(a_shape: &Shape, b_shape: &Shape) -> BatchPlan {
    let (ab, m, k) = split_matrix(a_shape);
    let (bb, _, n) = split_matrix(b_shape);
    let ab = Shape::new(ab);
    let bb = Shape::new(bb);
    let batch = ab
        .broadcast(&bb)
        // INVARIANT: non-broadcastable batch dims are an unrecoverable
        // caller bug; panicking with both shapes is the documented contract.
        .unwrap_or_else(|| panic!("matmul batch dims {ab} and {bb} do not broadcast"));
    // Batch strides measured in matrix chunks, then scaled to element offsets.
    let sa = ab.broadcast_strides(&batch);
    let sb = bb.broadcast_strides(&batch);
    let a_offsets: Vec<usize> = StridedIter::new(batch.dims(), &sa)
        .map(|o| o * m * k)
        .collect();
    let b_offsets: Vec<usize> = StridedIter::new(batch.dims(), &sb)
        .map(|o| o * k * n)
        .collect();
    BatchPlan {
        batch,
        a_offsets,
        b_offsets,
    }
}

/// Forward batched matmul into `out`. Large batched products fan the
/// *batch* axis across threads (each batch writes a disjoint `m·n`
/// chunk of `out`, and the per-batch kernel runs serially inside the
/// worker, so results are bit-identical to the serial loop).
fn batched_matmul_forward(
    plan: &BatchPlan,
    m: usize,
    n: usize,
    k: usize,
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
) {
    let nbatch = plan.a_offsets.len();
    let per_batch = |ao: usize, bo: usize, chunk: &mut [f32]| {
        gemm(
            false,
            false,
            m,
            n,
            k,
            &ad[ao..ao + m * k],
            &bd[bo..bo + k * n],
            chunk,
        );
    };
    let threads = available_threads();
    let parallel = gemm_kernel() == GemmKernel::Auto
        && threads > 1
        && nbatch > 1
        && nbatch * m * n * k >= THREADED_MIN_FLOPS;
    if !parallel {
        for (bi, (&ao, &bo)) in plan.a_offsets.iter().zip(&plan.b_offsets).enumerate() {
            per_batch(ao, bo, &mut out[bi * m * n..(bi + 1) * m * n]);
        }
        return;
    }
    let chunk_batches = nbatch.div_ceil(threads.min(nbatch));
    std::thread::scope(|s| {
        let mut rest = out;
        let mut b0 = 0;
        while b0 < nbatch {
            let take = chunk_batches.min(nbatch - b0);
            let (chunk, tail) = rest.split_at_mut(take * m * n);
            rest = tail;
            let aoffs = &plan.a_offsets[b0..b0 + take];
            let boffs = &plan.b_offsets[b0..b0 + take];
            s.spawn(move || {
                // Inside a worker, force the best serial kernel to
                // avoid nested thread spawns.
                let prev = set_gemm_kernel(serial_kernel());
                for (ci, (&ao, &bo)) in aoffs.iter().zip(boffs).enumerate() {
                    per_batch(ao, bo, &mut chunk[ci * m * n..(ci + 1) * m * n]);
                }
                set_gemm_kernel(prev);
            });
            b0 += take;
        }
    });
}

impl Tensor {
    /// Matrix product. Last two dims multiply `(…, m, k) · (…, k, n) ->
    /// (…, m, n)`; leading dims broadcast NumPy-style.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (_, m, k) = split_matrix(self.shape());
        let (_, k2, n) = split_matrix(other.shape());
        assert_eq!(
            k,
            k2,
            "matmul inner dims differ: {} vs {}",
            self.shape(),
            other.shape()
        );
        let plan = batch_plan(self.shape(), other.shape());
        let nbatch = plan.batch.numel();
        let mut out = crate::pool::take_zeroed(nbatch * m * n);
        {
            let ad = self.data();
            let bd = other.data();
            batched_matmul_forward(&plan, m, n, k, &ad, &bd, &mut out);
        }
        let mut out_dims = plan.batch.dims().to_vec();
        out_dims.push(m);
        out_dims.push(n);

        let a = self.clone();
        let b = other.clone();
        Tensor::from_op(
            out,
            Shape(out_dims),
            vec![self.clone(), other.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let plan = batch_plan(a.shape(), b.shape());
                let ad = a.data();
                let bd = b.data();
                // Both gradient GEMMs below go through `gemm()` and so
                // follow the thread's kernel selection (Auto → tiled /
                // threaded for large products); zeroed scratch because
                // broadcast batches accumulate at repeated offsets.
                //
                // Fast path: a gradient GEMM whose result would be discarded
                // (the parent doesn't require grad — e.g. frozen base weights
                // under LoRA) is skipped entirely. Skipping discarded work
                // cannot change any value that survives.
                let fast = crate::fastpath::op_fast_paths();
                let mut ga =
                    (!fast || a.requires_grad()).then(|| crate::pool::PooledBuf::zeroed(a.numel()));
                let mut gb =
                    (!fast || b.requires_grad()).then(|| crate::pool::PooledBuf::zeroed(b.numel()));
                for (bi, (&ao, &bo)) in plan.a_offsets.iter().zip(&plan.b_offsets).enumerate() {
                    let gchunk = &g[bi * m * n..(bi + 1) * m * n];
                    // dA = dY · Bᵀ  (broadcast batches accumulate at the
                    // same offset, which performs the required reduction).
                    if let Some(ga) = ga.as_mut() {
                        gemm(
                            false,
                            true,
                            m,
                            k,
                            n,
                            gchunk,
                            &bd[bo..bo + k * n],
                            &mut ga[ao..ao + m * k],
                        );
                    }
                    // dB = Aᵀ · dY
                    if let Some(gb) = gb.as_mut() {
                        gemm(
                            true,
                            false,
                            k,
                            n,
                            m,
                            &ad[ao..ao + m * k],
                            gchunk,
                            &mut gb[bo..bo + k * n],
                        );
                    }
                }
                drop(ad);
                drop(bd);
                if let (true, Some(ga)) = (a.requires_grad(), ga.as_ref()) {
                    a.accumulate_grad(ga);
                }
                if let (true, Some(gb)) = (b.requires_grad(), gb.as_ref()) {
                    b.accumulate_grad(gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_nn() {
        // (2,3)·(3,2)
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0; 4];
        gemm(false, false, 2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_transpose_variants_agree() {
        // Random-ish small matrices; all four variants must agree with NN.
        let m = 3;
        let n = 4;
        let k = 5;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut c_ref = vec![0.0; m * n];
        gemm(false, false, m, n, k, &a, &b, &mut c_ref);

        // Physically transpose a -> at (k,m) and b -> bt (n,k).
        let mut at = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut bt = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        for (ta, tb, pa, pb) in [
            (true, false, &at, &b),
            (false, true, &a, &bt),
            (true, true, &at, &bt),
        ] {
            let mut c = vec![0.0; m * n];
            gemm(ta, tb, m, n, k, pa, pb, &mut c);
            for (x, y) in c.iter().zip(&c_ref) {
                assert!((x - y).abs() < 1e-5, "({ta},{tb}) mismatch");
            }
        }
    }

    /// Deterministic pseudo-random matrix for kernel comparisons.
    fn mat(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn tiled_matches_naive_exactly_nn() {
        // (ta=false, *) and c = 0 cases are bit-exact by construction.
        for (m, n, k) in [(8, 8, 8), (16, 24, 32), (13, 7, 9), (1, 9, 4), (64, 64, 64)] {
            let a = mat(m as u64 ^ 1, m * k);
            let b = mat(n as u64 ^ 2, k * n);
            let mut c0 = vec![0.0; m * n];
            let mut c1 = vec![0.0; m * n];
            gemm_naive(false, false, m, n, k, &a, &b, &mut c0);
            gemm_tiled(false, false, m, n, k, &a, &b, &mut c1);
            assert_eq!(c0, c1, "({m},{n},{k}) tiled must be bit-exact vs naive");
        }
    }

    #[test]
    fn tiled_accumulates_into_nonzero_c() {
        // The sequential (ta=false/true, tb=false) naive loops add one
        // product at a time into c; the c-seeded accumulators reproduce
        // that order exactly even when c starts non-zero.
        let (m, n, k) = (10, 12, 5);
        let b = mat(4, k * n);
        let seed = mat(5, m * n);
        for ta in [false, true] {
            let a = mat(3, m * k);
            let mut c0 = seed.clone();
            let mut c1 = seed.clone();
            gemm_naive(ta, false, m, n, k, &a, &b, &mut c0);
            gemm_tiled(ta, false, m, n, k, &a, &b, &mut c1);
            assert_eq!(c0, c1, "ta={ta}: accumulation order must match naive");
        }
    }

    #[test]
    fn threaded_bit_identical_to_serial() {
        let (m, n, k) = (37, 29, 23);
        let a = mat(7, m * k);
        let b = mat(8, k * n);
        let mut c1 = vec![0.0; m * n];
        gemm_with_threads(false, false, m, n, k, &a, &b, &mut c1, 1);
        for threads in [2, 3, 5, 8] {
            let mut ct = vec![0.0; m * n];
            gemm_with_threads(false, false, m, n, k, &a, &b, &mut ct, threads);
            assert_eq!(c1, ct, "threads={threads} must be bit-identical");
        }
    }

    #[test]
    fn kernel_knob_round_trips() {
        // The thread default honors ZG_GEMM_KERNEL (CI forces kernels
        // through it), so compare against the resolved default rather
        // than a hard-coded Auto.
        let default = default_gemm_kernel();
        assert_eq!(gemm_kernel(), default);
        let prev = set_gemm_kernel(GemmKernel::Naive);
        assert_eq!(prev, default);
        assert_eq!(gemm_kernel(), GemmKernel::Naive);
        set_gemm_kernel(prev);
        assert_eq!(gemm_kernel(), default);
    }

    #[test]
    fn backward_grad_gemms_obey_kernel_and_match_naive_oracle() {
        // Audit: the dA/dB gradient GEMMs inside the matmul backward
        // closure dispatch through `gemm()` (so they obey the thread's
        // kernel selection) rather than hard-coding `gemm_naive`. Pin the
        // tiled kernel, use a product large enough to clear
        // TILED_MIN_FLOPS, and require bit-identical gradients vs the
        // naive oracle (dA is a c=0 (false,true) product, dB a c=0
        // (true,false) product — both bit-exact cases).
        let (m, k, n) = (24, 20, 24);
        let av = mat(11, m * k);
        let bv = mat(12, k * n);
        let run = |kernel: GemmKernel| -> (Vec<f32>, Vec<f32>) {
            let prev = set_gemm_kernel(kernel);
            let a = Tensor::param(av.clone(), [m, k]);
            let b = Tensor::param(bv.clone(), [k, n]);
            a.matmul(&b).sum().backward();
            set_gemm_kernel(prev);
            (a.grad().unwrap(), b.grad().unwrap())
        };
        let (ga_naive, gb_naive) = run(GemmKernel::Naive);
        let (ga_tiled, gb_tiled) = run(GemmKernel::Tiled);
        assert_eq!(
            ga_naive, ga_tiled,
            "dA must be bit-identical tiled vs naive"
        );
        assert_eq!(
            gb_naive, gb_tiled,
            "dB must be bit-identical tiled vs naive"
        );
    }

    #[test]
    fn matmul_2d_forward_backward() {
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::param(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
        c.sum().backward();
        // dA = 1·Bᵀ summed: rows of ones times Bᵀ
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_batched_equal_batches() {
        // (2,2,3)·(2,3,1)
        let a = Tensor::param((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::param(vec![1.0; 6], [2, 3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 1]);
        assert_eq!(c.to_vec(), vec![3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_broadcast_weight() {
        // (2,2,3)·(3,2): shared weight across the batch.
        let a = Tensor::param(vec![1.0; 12], [2, 2, 3]);
        let w = Tensor::param(vec![0.5; 6], [3, 2]);
        let c = a.matmul(&w);
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert!(c.to_vec().iter().all(|&v| (v - 1.5).abs() < 1e-6));
        c.sum().backward();
        // Each weight element sees all 4 rows of ones.
        assert_eq!(w.grad().unwrap(), vec![4.0; 6]);
    }

    #[test]
    fn matmul_gradcheck_numeric() {
        // Finite-difference check on a 2x3 · 3x2 product.
        let av: Vec<f32> = vec![0.3, -0.5, 0.8, 1.1, -0.2, 0.4];
        let bv: Vec<f32> = vec![0.7, 0.1, -0.3, 0.9, 0.2, -0.6];
        let f = |av: &[f32], bv: &[f32]| -> f32 {
            let a = Tensor::from_vec(av.to_vec(), [2, 3]);
            let b = Tensor::from_vec(bv.to_vec(), [3, 2]);
            a.matmul(&b).sum().item()
        };
        let a = Tensor::param(av.clone(), [2, 3]);
        let b = Tensor::param(bv.clone(), [3, 2]);
        a.matmul(&b).sum().backward();
        let ga = a.grad().unwrap();
        let h = 1e-2;
        for i in 0..av.len() {
            let mut ap = av.clone();
            ap[i] += h;
            let mut am = av.clone();
            am[i] -= h;
            let num = (f(&ap, &bv) - f(&am, &bv)) / (2.0 * h);
            assert!((ga[i] - num).abs() < 1e-2, "a[{i}]: {} vs {num}", ga[i]);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        a.matmul(&b);
    }
}
